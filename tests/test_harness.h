// Shared helpers for Panda end-to-end tests: cluster runners and
// deterministic data patterns keyed by global array coordinates, so a
// round trip through any pair of schemas can be verified byte-exactly.
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "panda/panda.h"

namespace panda {
namespace test {

// splitmix64-style mixer: the canonical value of element `global_offset`.
inline std::uint64_t PatternValue(std::uint64_t salt,
                                  std::uint64_t global_offset) {
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL * (global_offset + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::int64_t GlobalOffsetOf(const Shape& shape, const Index& idx) {
  std::int64_t off = 0;
  for (int d = 0; d < shape.rank(); ++d) off = off * shape[d] + idx[d];
  return off;
}

// Fills the bound array's local data with the canonical pattern.
inline void FillPattern(Array& array, std::uint64_t salt) {
  const Region& cell = array.local_region();
  if (cell.empty()) return;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::uint64_t v = PatternValue(
        salt, static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g)));
    std::memcpy(data.data() + n * elem, &v, std::min(elem, sizeof(v)));
    if (elem > sizeof(v)) {
      std::memset(data.data() + n * elem + sizeof(v), 0, elem - sizeof(v));
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
}

// Verifies the bound array's local data against the canonical pattern.
// Returns the number of mismatching elements (also EXPECTs zero).
inline std::int64_t VerifyPattern(const Array& array, std::uint64_t salt) {
  const Region& cell = array.local_region();
  if (cell.empty()) return 0;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  std::int64_t mismatches = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::uint64_t v = PatternValue(
        salt, static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g)));
    if (std::memcmp(data.data() + n * elem, &v, std::min(elem, sizeof(v))) !=
        0) {
      ++mismatches;
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
  EXPECT_EQ(mismatches, 0) << "array " << array.name() << " cell "
                           << cell.ToString();
  return mismatches;
}

// Runs a functional cluster: `app(client, client_index)` on every client
// (the master sends the shutdown afterwards), ServerMain on every server.
inline void RunCluster(Machine& machine,
                       const std::function<void(PandaClient&, int)>& app,
                       ServerOptions server_options = {}) {
  const World world{machine.num_clients(), machine.num_servers()};
  // Robustness accounting flows into the machine's counters unless the
  // caller supplied a sink of its own.
  if (server_options.robustness == nullptr) {
    server_options.robustness = &machine.robustness();
  }
  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, machine.params());
        client.set_robustness(&machine.robustness());
        app(client, client_index);
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params(), server_options);
      });
}

// Builds the expected byte image of one server's file segment for an
// array under `meta`: the concatenation, in plan order, of the server's
// chunks (each row-major within itself).
inline std::vector<std::byte> ExpectedSegment(const ArrayMeta& meta,
                                              int num_servers, int server,
                                              std::int64_t subchunk_bytes,
                                              std::uint64_t salt) {
  const IoPlan plan(meta, num_servers, subchunk_bytes);
  std::vector<std::byte> out(
      static_cast<size_t>(plan.SegmentBytes(server)));
  const auto elem = static_cast<size_t>(meta.elem_size);
  for (const int ci : plan.ChunksOfServer(server)) {
    const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
    Index off = Index::Zeros(cp.region.rank());
    Shape ext = cp.region.extent();
    size_t n = 0;
    do {
      Index g = cp.region.lo();
      for (int d = 0; d < cp.region.rank(); ++d) g[d] += off[d];
      const std::uint64_t v =
          PatternValue(salt, static_cast<std::uint64_t>(GlobalOffsetOf(
                                 meta.memory.array_shape(), g)));
      std::memcpy(out.data() + static_cast<size_t>(cp.file_offset) + n * elem,
                  &v, std::min(elem, sizeof(v)));
      ++n;
    } while (NextIndexRowMajor(ext, off));
  }
  return out;
}

}  // namespace test
}  // namespace panda
