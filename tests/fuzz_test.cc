// Decoder robustness fuzzing: any corruption of a valid wire message or
// metadata file must raise PandaError — never crash, hang, or silently
// decode garbage into a "valid" structure with out-of-range fields.
#include <gtest/gtest.h>

#include "panda/protocol.h"
#include "panda/schema_io.h"
#include "util/random.h"

namespace panda {
namespace {

ArrayMeta SampleMeta() {
  ArrayMeta meta;
  meta.name = "fuzzed";
  meta.elem_size = 8;
  meta.memory = Schema({64, 32, 16}, Mesh(Shape{2, 2}),
                       {DimDist::Block(), DimDist::Block(), DimDist::None()});
  meta.disk = Schema({64, 32, 16}, Mesh(Shape{4}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});
  return meta;
}

std::vector<std::byte> ValidRequestBytes() {
  CollectiveRequest req;
  req.op = IoOp::kWrite;
  req.purpose = Purpose::kTimestep;
  req.seq = 3;
  req.group = "grp";
  req.meta_file = "grp.schema";
  req.num_clients = 4;
  req.arrays.push_back(SampleMeta());
  return req.ToMessage().header;
}

TEST(FuzzTest, EveryTruncationOfARequestThrows) {
  const auto valid = ValidRequestBytes();
  // A decode of any strict prefix must throw (the encoding has no
  // optional trailing parts).
  for (size_t len = 0; len < valid.size(); ++len) {
    Message msg;
    msg.header.assign(valid.begin(),
                      valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(CollectiveRequest::FromMessage(msg), PandaError)
        << "prefix length " << len;
  }
  // The full message decodes.
  Message msg;
  msg.header = valid;
  const CollectiveRequest back = CollectiveRequest::FromMessage(msg);
  EXPECT_EQ(back.group, "grp");
}

TEST(FuzzTest, RandomByteFlipsNeverCrashRequestDecode) {
  const auto valid = ValidRequestBytes();
  Rng rng(0xF12E);
  int decoded_ok = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Message msg;
    msg.header = valid;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      const size_t at = rng.NextBelow(msg.header.size());
      msg.header[at] = static_cast<std::byte>(rng.Next());
    }
    try {
      const CollectiveRequest req = CollectiveRequest::FromMessage(msg);
      // If it decoded, the structural invariants must hold.
      for (const ArrayMeta& a : req.arrays) {
        EXPECT_GE(a.elem_size, 1);
        EXPECT_EQ(a.memory.array_shape(), a.disk.array_shape());
      }
      ++decoded_ok;
    } catch (const PandaError&) {
      // expected for most corruptions
    }
  }
  // Some flips hit don't-care bytes (string contents etc.) and still
  // decode; most must be caught.
  EXPECT_LT(decoded_ok, 1500);
}

TEST(FuzzTest, RandomByteFlipsNeverCrashMetadataDecode) {
  GroupMeta meta;
  meta.group = "sim";
  meta.timesteps = 7;
  meta.has_checkpoint = true;
  meta.checkpoint_seq = 5;
  meta.arrays.push_back(SampleMeta());
  const auto valid = meta.Encode();

  Rng rng(0xBEEF);
  for (int iter = 0; iter < 2000; ++iter) {
    auto bytes = valid;
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.NextBelow(bytes.size())] = static_cast<std::byte>(rng.Next());
    }
    try {
      const GroupMeta back = GroupMeta::Decode(bytes);
      EXPECT_GE(back.timesteps, 0);
    } catch (const PandaError&) {
    }
  }
}

TEST(FuzzTest, RandomGarbageNeverCrashesDecoders) {
  Rng rng(0xD00D);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.NextBelow(300);
    std::vector<std::byte> bytes(len);
    for (auto& b : bytes) b = static_cast<std::byte>(rng.Next());
    Message msg;
    msg.header = bytes;
    try {
      (void)CollectiveRequest::FromMessage(msg);
    } catch (const PandaError&) {
    }
    try {
      (void)GroupMeta::Decode(bytes);
    } catch (const PandaError&) {
    }
    try {
      Decoder dec(bytes);
      (void)Schema::Decode(dec);
    } catch (const PandaError&) {
    }
    try {
      Decoder dec(bytes);
      (void)PieceHeader::Decode(dec);
    } catch (const PandaError&) {
    }
  }
}

TEST(FuzzTest, PieceHeaderTruncationsThrow) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  PieceHeader{1, 2, 3, 4, Region({5, 6}, {7, 8})}.EncodeTo(enc);
  for (size_t len = 0; len < buf.size(); ++len) {
    Decoder dec({buf.data(), len});
    EXPECT_THROW((void)PieceHeader::Decode(dec), PandaError);
  }
}

}  // namespace
}  // namespace panda
