// Unit tests for src/util: errors, formatting, codec, RNG, options.
#include <gtest/gtest.h>

#include <cstring>

#include "util/codec.h"
#include "util/error.h"
#include "util/math.h"
#include "util/options.h"
#include "util/random.h"
#include "util/units.h"

namespace panda {
namespace {

TEST(StrFormatTest, FormatsArguments) {
  EXPECT_EQ(StrFormat("a=%d b=%s", 7, "x"), "a=7 b=x");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, EmptyResultForEmptyFormat) {
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(ErrorTest, RequireThrowsPandaError) {
  EXPECT_THROW(
      [] { PANDA_REQUIRE(false, "bad thing %d", 42); }(), PandaError);
  try {
    PANDA_REQUIRE(false, "bad thing %d", 42);
  } catch (const PandaError& e) {
    EXPECT_STREQ(e.what(), "bad thing 42");
  }
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(CeilDiv(4, 4), 1);
  EXPECT_EQ(CeilDiv(5, 4), 2);
  EXPECT_EQ(CeilDiv(512, 3), 171);
}

TEST(MathTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 8), 0);
  EXPECT_EQ(AlignUp(1, 8), 8);
  EXPECT_EQ(AlignUp(8, 8), 8);
  EXPECT_EQ(AlignUp(9, 8), 16);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(kKiB), "1.00 KB");
  EXPECT_EQ(FormatBytes(64 * kMiB), "64.00 MB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2.00 GB");
}

TEST(UnitsTest, FormatThroughputUsesMiB) {
  EXPECT_EQ(FormatThroughput(34.0 * kMiB), "34.00 MB/s");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(1.5), "1.500 s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(FormatSeconds(43e-6), "43.0 us");
}

TEST(CodecTest, RoundTripScalarsAndStrings) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  enc.Put<std::int32_t>(-7);
  enc.Put<std::int64_t>(1LL << 40);
  enc.Put<std::uint8_t>(255);
  enc.PutString("panda");
  enc.PutString("");

  Decoder dec(buf);
  EXPECT_EQ(dec.Get<std::int32_t>(), -7);
  EXPECT_EQ(dec.Get<std::int64_t>(), 1LL << 40);
  EXPECT_EQ(dec.Get<std::uint8_t>(), 255);
  EXPECT_EQ(dec.GetString(), "panda");
  EXPECT_EQ(dec.GetString(), "");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, DecodePastEndThrows) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  enc.Put<std::int32_t>(1);
  Decoder dec(buf);
  (void)dec.Get<std::int32_t>();
  EXPECT_THROW((void)dec.Get<std::int32_t>(), PandaError);
}

TEST(CodecTest, TruncatedStringThrows) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  enc.Put<std::uint32_t>(100);  // claims a 100-byte string; none follows
  Decoder dec(buf);
  EXPECT_THROW((void)dec.GetString(), PandaError);
}

TEST(CodecTest, BytesRoundTrip) {
  std::vector<std::byte> buf;
  Encoder enc(buf);
  const char raw[] = {1, 2, 3, 4};
  enc.PutBytes(std::as_bytes(std::span(raw)));
  Decoder dec(buf);
  auto view = dec.GetBytes(4);
  EXPECT_EQ(std::memcmp(view.data(), raw, 4), 0);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(OptionsTest, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--name=panda",
                        "--flag", "positional", "--rate=2.5"};
  Options opts(6, const_cast<char**>(argv));
  EXPECT_EQ(opts.GetInt("alpha", 0), 3);
  EXPECT_EQ(opts.GetString("name", ""), "panda");
  EXPECT_TRUE(opts.GetBool("flag", false));
  EXPECT_DOUBLE_EQ(opts.GetDouble("rate", 0.0), 2.5);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "positional");
  opts.CheckAllConsumed();
}

TEST(OptionsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts(1, const_cast<char**>(argv));
  EXPECT_EQ(opts.GetInt("missing", 42), 42);
  EXPECT_EQ(opts.GetString("missing", "d"), "d");
  EXPECT_FALSE(opts.GetBool("missing", false));
}

TEST(OptionsTest, UnknownOptionDetected) {
  const char* argv[] = {"prog", "--typo=1"};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_THROW(opts.CheckAllConsumed(), PandaError);
}

TEST(OptionsTest, MalformedNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc", "--x=1.2.3"};
  Options opts(3, const_cast<char**>(argv));
  EXPECT_THROW((void)opts.GetInt("n", 0), PandaError);
  EXPECT_THROW((void)opts.GetDouble("x", 0.0), PandaError);
}

}  // namespace
}  // namespace panda
