// Mixed workloads (paper §5): several applications sharing one set of
// Panda i/o nodes. Functional tests that two applications' collectives
// interleave safely and never corrupt each other's files.
#include <gtest/gtest.h>

#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::VerifyPattern;

// Layout: ranks 0..3 app A clients, 4..7 app B clients, 8..9 shared
// servers.
constexpr int kAClients = 4;
constexpr int kBClients = 4;
constexpr int kServers = 2;

World AppAWorld() {
  World w;
  w.num_clients = kAClients;
  w.num_servers = kServers;
  w.first_client = 0;
  w.first_server = kAClients + kBClients;
  return w;
}

World AppBWorld() {
  World w = AppAWorld();
  w.first_client = kAClients;
  w.num_clients = kBClients;
  return w;
}

TEST(MixedWorkloadTest, TwoApplicationsShareServers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  ThreadTransport transport(kAClients + kBClients + kServers, cfg);

  SimFileSystem::Options fs_opt;
  fs_opt.disk = DiskModel::Instant();
  std::vector<std::unique_ptr<SimFileSystem>> fs;
  for (int s = 0; s < kServers; ++s) {
    fs.push_back(std::make_unique<SimFileSystem>(fs_opt));
  }

  transport.Run([&](Endpoint& ep) {
    const World server_world = AppAWorld();  // server window is shared
    if (server_world.is_server_rank(ep.rank())) {
      ServerOptions options;
      options.num_applications = 2;
      ServerMain(ep, *fs[static_cast<size_t>(
                         server_world.server_index(ep.rank()))],
                 server_world, params, options);
      return;
    }

    const bool is_a = ep.rank() < kAClients;
    const World world = is_a ? AppAWorld() : AppBWorld();
    PandaClient client(ep, world, params);

    ArrayLayout memory("m", {2, 2});
    // Distinct array names keep the applications' files apart.
    Array a(is_a ? "appA" : "appB", {12, 8}, 4, memory, {BLOCK, BLOCK},
            memory, {BLOCK, BLOCK});
    a.BindClient(client.index());
    const std::uint64_t salt = is_a ? 111 : 222;

    // Several rounds of write/read per app, interleaving at the shared
    // servers in whatever order the masters' requests arrive.
    for (int round = 0; round < 3; ++round) {
      FillPattern(a, salt + static_cast<std::uint64_t>(round));
      client.WriteArray(a);
      std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
      client.ReadArray(a);
      VerifyPattern(a, salt + static_cast<std::uint64_t>(round));
    }
    client.Shutdown();  // masters of both apps send one shutdown each
  });
}

TEST(MixedWorkloadTest, DedicatedServersAlsoWork) {
  // The paper's alternative: each application gets its own i/o nodes.
  // Ranks 0..1 app A clients, 2..3 app B clients, 4 app A server,
  // 5 app B server.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  ThreadTransport::Config cfg;
  cfg.net = params.net;
  ThreadTransport transport(6, cfg);

  SimFileSystem::Options fs_opt;
  fs_opt.disk = DiskModel::Instant();
  SimFileSystem fs_a(fs_opt);
  SimFileSystem fs_b(fs_opt);

  World world_a;
  world_a.num_clients = 2;
  world_a.num_servers = 1;
  world_a.first_client = 0;
  world_a.first_server = 4;
  World world_b;
  world_b.num_clients = 2;
  world_b.num_servers = 1;
  world_b.first_client = 2;
  world_b.first_server = 5;

  transport.Run([&](Endpoint& ep) {
    if (ep.rank() == 4) {
      ServerMain(ep, fs_a, world_a, params);
      return;
    }
    if (ep.rank() == 5) {
      ServerMain(ep, fs_b, world_b, params);
      return;
    }
    const bool is_a = ep.rank() < 2;
    const World world = is_a ? world_a : world_b;
    PandaClient client(ep, world, params);
    ArrayLayout memory("m", {2});
    Array a("x", {16}, 8, memory, {BLOCK}, memory, {BLOCK});
    a.BindClient(client.index());
    FillPattern(a, is_a ? 5 : 6);
    client.WriteArray(a);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    client.ReadArray(a);
    VerifyPattern(a, is_a ? 5 : 6);
    client.Shutdown();
  });
  // Each dedicated server holds only its own application's file.
  EXPECT_TRUE(fs_a.Exists("x.dat.0"));
  EXPECT_TRUE(fs_b.Exists("x.dat.0"));
}

TEST(MixedWorkloadTest, WindowedWorldValidation) {
  World w;
  w.num_clients = 4;
  w.num_servers = 2;
  w.first_client = 0;
  w.first_server = 2;  // overlaps the client window
  EXPECT_THROW(w.Validate(), PandaError);

  w.first_server = 4;
  w.Validate();
  EXPECT_EQ(w.client_rank(3), 3);
  EXPECT_EQ(w.server_rank(1), 5);
  EXPECT_EQ(w.client_index(2), 2);
  EXPECT_EQ(w.server_index(5), 1);

  const World shifted = w.WithClients(10, 4);
  EXPECT_EQ(shifted.client_rank(0), 10);
  EXPECT_EQ(shifted.server_rank(0), 4);  // servers unchanged
}

}  // namespace
}  // namespace panda
