// Rank scheduler (src/sched/): unit tests and the cross-backend
// determinism contract.
//
// Three layers, matching docs/SCHEDULER.md:
//  1. Scheduler unit tests — backend selection, RunAll coverage, fiber
//     yield/park/deadline/probe mechanics, counters. Run in every build
//     (fiber cases skip where FiberSupported() is false: TSan,
//     PANDA_HB).
//  2. The cross-backend equivalence contract: the fig4-shaped seeded
//     lossy collective run under the thread backend and under the fiber
//     backend (across eight schedule seeds) must produce bit-identical
//     virtual clocks, message counts, byte counts and file bytes. This
//     is the same claim hb_race_test makes across schedule seeds,
//     extended across execution backends.
//  3. A failover soak on the fiber backend: a server crash-stops
//     mid-write at several different points and the survivors must
//     complete recovery with verified data — the fault machinery
//     (kill injector, heartbeat leases, TryRecv deadlines, rescue
//     hooks) all exercised through fiber parking instead of blocked OS
//     threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "panda/protocol.h"
#include "panda/report.h"
#include "sched/sched.h"
#include "sched/wait.h"
#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::VerifyPattern;

// ---- backend plumbing -------------------------------------------------

TEST(SchedBackend, NamesRoundTrip) {
  EXPECT_STREQ(sched::BackendName(sched::Backend::kThread), "thread");
  EXPECT_STREQ(sched::BackendName(sched::Backend::kFiber), "fiber");

  sched::Backend backend = sched::Backend::kFiber;
  EXPECT_TRUE(sched::BackendFromName("thread", backend));
  EXPECT_EQ(backend, sched::Backend::kThread);
  EXPECT_TRUE(sched::BackendFromName("fiber", backend));
  EXPECT_EQ(backend, sched::Backend::kFiber);
  EXPECT_FALSE(sched::BackendFromName("coroutine", backend));
}

TEST(SchedBackend, MakeSchedulerHonorsFallback) {
  sched::Config config;
  config.backend = sched::Backend::kThread;
  EXPECT_EQ(sched::MakeScheduler(config)->backend(), sched::Backend::kThread);

  config.backend = sched::Backend::kFiber;
  const auto fiber = sched::MakeScheduler(config);
  if (sched::FiberSupported()) {
    EXPECT_EQ(fiber->backend(), sched::Backend::kFiber);
  } else {
    // TSan / PANDA_HB builds pin the thread backend (docs/SCHEDULER.md).
    EXPECT_EQ(fiber->backend(), sched::Backend::kThread);
  }
}

TEST(SchedThread, RunAllRunsEveryRankOnce) {
  sched::Config config;
  config.backend = sched::Backend::kThread;
  const auto scheduler = sched::MakeScheduler(config);
  std::vector<std::atomic<int>> hits(8);
  scheduler->RunAll({3, 1, 4, 0, 5, 2, 7, 6},
                    [&](int index) { hits[static_cast<size_t>(index)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(scheduler->stats().ranks_run, 8);
}

TEST(SchedThread, SliceGuardBracketsEveryRank) {
  sched::Config config;
  config.backend = sched::Backend::kThread;
  const auto scheduler = sched::MakeScheduler(config);
  std::atomic<int> enters{0};
  std::atomic<int> exits{0};
  scheduler->SetSliceGuard([&](int, bool enter) {
    if (enter) {
      enters++;
    } else {
      exits++;
    }
  });
  scheduler->RunAll({0, 1, 2}, [](int) {});
  EXPECT_EQ(enters.load(), 3);
  EXPECT_EQ(exits.load(), 3);
}

// ---- fiber mechanics (skip where unsupported) -------------------------

#define PANDA_REQUIRE_FIBERS()                                       \
  do {                                                               \
    if (!sched::FiberSupported()) {                                  \
      GTEST_SKIP() << "fiber backend unsupported in this build "     \
                      "(TSan or PANDA_HB)";                          \
    }                                                                \
  } while (0)

TEST(SchedFiber, RunAllRunsEveryRankOnce) {
  PANDA_REQUIRE_FIBERS();
  sched::Config config;
  config.backend = sched::Backend::kFiber;
  config.workers = 3;
  const auto scheduler = sched::MakeScheduler(config);
  std::vector<std::atomic<int>> hits(32);
  std::vector<int> order(32);
  for (int i = 0; i < 32; ++i) order[static_cast<size_t>(i)] = i;
  scheduler->RunAll(order, [&](int index) {
    EXPECT_TRUE(sched::OnFiber());
    hits[static_cast<size_t>(index)]++;
  });
  EXPECT_FALSE(sched::OnFiber());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(scheduler->stats().ranks_run, 32);
  // One dispatch per fiber at minimum.
  EXPECT_GE(scheduler->stats().context_switches, 32);
}

TEST(SchedFiber, ManyMoreFibersThanCarriersAllYielding) {
  PANDA_REQUIRE_FIBERS();
  sched::Config config;
  config.backend = sched::Backend::kFiber;
  config.workers = 2;
  const auto scheduler = sched::MakeScheduler(config);
  std::atomic<int> ran{0};
  std::vector<int> order(256);
  for (int i = 0; i < 256; ++i) order[static_cast<size_t>(i)] = i;
  scheduler->RunAll(order, [&](int) {
    for (int k = 0; k < 4; ++k) sched::YieldNow();
    ran++;
  });
  EXPECT_EQ(ran.load(), 256);
  EXPECT_GE(scheduler->stats().yields, 256 * 4);
}

TEST(SchedFiber, ParkAndNotifyHandoff) {
  PANDA_REQUIRE_FIBERS();
  sched::Config config;
  config.backend = sched::Backend::kFiber;
  config.workers = 2;
  const auto scheduler = sched::MakeScheduler(config);
  std::mutex mu;
  sched::WaitCV cv;
  bool flag = false;
  bool consumer_saw_flag = false;
  scheduler->RunAll({0, 1}, [&](int index) {
    if (index == 0) {
      std::unique_lock<std::mutex> lock(mu);
      while (!flag) {
        // A signal wake means "re-check"; probe wakes also just loop.
        (void)cv.ParkFiber(lock, std::nullopt);
      }
      consumer_saw_flag = true;
    } else {
      // Some cooperative churn before producing, so the consumer
      // usually parks first.
      for (int k = 0; k < 8; ++k) sched::YieldNow();
      std::unique_lock<std::mutex> lock(mu);
      flag = true;
      // Exercising the WaitCV seam directly. panda-lint: allow(raw-send)
      cv.NotifyAll();  // under the mutex: the lost-wakeup contract
    }
  });
  EXPECT_TRUE(consumer_saw_flag);
  EXPECT_GE(scheduler->stats().parks, 0);
}

TEST(SchedFiber, DeadlineParkWakesByDeadline) {
  PANDA_REQUIRE_FIBERS();
  sched::Config config;
  config.backend = sched::Backend::kFiber;
  config.workers = 1;
  const auto scheduler = sched::MakeScheduler(config);
  std::mutex mu;
  sched::WaitCV cv;
  bool reached_deadline = false;
  scheduler->RunAll({0}, [&](int) {
    const auto deadline =
        // Park deadlines are wall-clock by contract. panda-lint: allow(wall-clock)
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    std::unique_lock<std::mutex> lock(mu);
    // Condition-wait discipline: probe wakes may arrive first (the
    // scheduler is quiescent — this is the only fiber); loop until the
    // wall deadline has truly passed.
    // panda-lint: allow(wall-clock)
    while (std::chrono::steady_clock::now() < deadline) {
      (void)cv.ParkFiber(lock, deadline);
    }
    reached_deadline = true;
  });
  EXPECT_TRUE(reached_deadline);
  // The waits above ended by timeout or probe, never by a signal.
  EXPECT_GE(scheduler->stats().parks, 1);
}

TEST(SchedFiber, YieldNowOffFiberIsSafe) {
  // Off-fiber YieldNow degrades to a plain OS yield (thread backend
  // ranks call the same perturbation path).
  EXPECT_FALSE(sched::OnFiber());
  sched::YieldNow();
}

// ---- shared workload (the fig4 smoke shape) ---------------------------

struct RunOutcome {
  std::vector<double> client_clock_s;
  std::vector<double> server_clock_s;
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::vector<std::vector<std::byte>> file_bytes;  // per server
};

std::vector<std::byte> FileBytes(Machine& machine, int server,
                                 const std::string& name) {
  FileSystem& fs = machine.server_fs(server);
  if (!fs.Exists(name)) return {};
  std::unique_ptr<File> file = fs.Open(name, OpenMode::kRead);
  std::vector<std::byte> out(static_cast<size_t>(file->Size()));
  file->ReadAt(0, out, static_cast<std::int64_t>(out.size()));
  return out;
}

// One seeded-lossy write+read collective (the fig4 smoke shape, the
// same workload hb_race_test perturbs across schedule seeds), run under
// the given backend.
RunOutcome RunSmoke(sched::Backend backend, std::uint64_t schedule_seed,
                    bool with_loss, int workers = 0) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  const int kClients = 4;
  const int kServers = 2;
  Machine machine = Machine::Simulated(kClients, kServers, params,
                                       /*store_data=*/true,
                                       /*timing_only=*/false);
  if (with_loss) {
    LossSpec loss;
    loss.seed = 7;
    loss.drop_prob = 0.05;
    loss.dup_prob = 0.05;
    machine.SetLoss(loss);
  }
  machine.SetScheduleSeed(schedule_seed);
  machine.SetSchedBackend(backend, workers);

  const World world{kClients, kServers};
  ArrayMeta meta;
  meta.name = "t";
  meta.elem_size = 4;
  const Shape shape{16, 12, 8};
  meta.memory = Schema(shape, Mesh(Shape{2, 2}),
                       {DimDist::Block(), DimDist::Block(), DimDist::None()});
  meta.disk = Schema(shape, Mesh(Shape{kServers}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 11);
        client.WriteArray(a);
        client.ReadArray(a);
        VerifyPattern(a, 11);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  RunOutcome out;
  const MachineReport report = Snapshot(machine);
  out.client_clock_s = report.client_clock_s;
  out.server_clock_s = report.server_clock_s;
  out.messages_sent = report.messages.messages_sent;
  out.bytes_sent = report.messages.bytes_sent;
  for (int s = 0; s < kServers; ++s) {
    out.file_bytes.push_back(FileBytes(
        machine, s, DataFileName("", meta.name, Purpose::kGeneral, s)));
  }
  return out;
}

void ExpectBitIdentical(const RunOutcome& run, const RunOutcome& base,
                        const std::string& label) {
  ASSERT_EQ(run.client_clock_s.size(), base.client_clock_s.size());
  for (size_t i = 0; i < base.client_clock_s.size(); ++i) {
    // Bit-identical, not nearly-equal: the virtual outcome is a
    // function of the protocol, never of the execution backend.
    EXPECT_EQ(run.client_clock_s[i], base.client_clock_s[i])
        << "client " << i << " diverged: " << label;
  }
  ASSERT_EQ(run.server_clock_s.size(), base.server_clock_s.size());
  for (size_t i = 0; i < base.server_clock_s.size(); ++i) {
    EXPECT_EQ(run.server_clock_s[i], base.server_clock_s[i])
        << "server " << i << " diverged: " << label;
  }
  EXPECT_EQ(run.messages_sent, base.messages_sent) << label;
  EXPECT_EQ(run.bytes_sent, base.bytes_sent) << label;
  ASSERT_EQ(run.file_bytes.size(), base.file_bytes.size());
  for (size_t s = 0; s < base.file_bytes.size(); ++s) {
    EXPECT_EQ(run.file_bytes[s], base.file_bytes[s])
        << "server " << s << " file bytes diverged: " << label;
  }
}

// ---- cross-backend equivalence (the tentpole contract) ----------------

TEST(SchedEquivalence, FiberMatchesThreadOnCleanRun) {
  PANDA_REQUIRE_FIBERS();
  const RunOutcome base =
      RunSmoke(sched::Backend::kThread, /*schedule_seed=*/0, false);
  ASSERT_EQ(base.file_bytes.size(), 2u);
  EXPECT_GT(base.file_bytes[0].size() + base.file_bytes[1].size(), 0u);
  const RunOutcome fiber =
      RunSmoke(sched::Backend::kFiber, /*schedule_seed=*/0, false);
  ExpectBitIdentical(fiber, base, "fiber vs thread, clean");
}

TEST(SchedEquivalence, FiberMatchesThreadUnderLoss) {
  PANDA_REQUIRE_FIBERS();
  const RunOutcome base =
      RunSmoke(sched::Backend::kThread, /*schedule_seed=*/0, true);
  const RunOutcome fiber =
      RunSmoke(sched::Backend::kFiber, /*schedule_seed=*/0, true);
  ExpectBitIdentical(fiber, base, "fiber vs thread, seeded loss");
}

TEST(SchedEquivalence, FiberPerturbedSeedsMatchThreadBaseline) {
  PANDA_REQUIRE_FIBERS();
  // The hb_race_test claim, extended across backends: eight schedule
  // seeds (shuffled launch order, per-rank jitter that becomes
  // cooperative yields on fibers) against the unperturbed THREAD
  // baseline, all bit-identical.
  const RunOutcome base =
      RunSmoke(sched::Backend::kThread, /*schedule_seed=*/0, true);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunOutcome run = RunSmoke(sched::Backend::kFiber, seed, true);
    ExpectBitIdentical(run, base,
                       "fiber schedule seed " + std::to_string(seed));
  }
}

TEST(SchedEquivalence, FewCarriersMatchMany) {
  PANDA_REQUIRE_FIBERS();
  // Carrier-pool width is a wall-clock knob, never a virtual one.
  const RunOutcome one =
      RunSmoke(sched::Backend::kFiber, /*schedule_seed=*/0, true,
               /*workers=*/1);
  const RunOutcome eight =
      RunSmoke(sched::Backend::kFiber, /*schedule_seed=*/0, true,
               /*workers=*/8);
  ExpectBitIdentical(eight, one, "8 carriers vs 1 carrier");
}

// ---- failover soak on the fiber backend -------------------------------

TEST(SchedFailover, KillMidWriteRecoversOnFibers) {
  PANDA_REQUIRE_FIBERS();
  // A server crash-stops mid-write at several send budgets; the
  // survivors detect it through heartbeat leases (TryRecv deadline
  // parks), re-plan, adopt the dead server's chunks, and the read-back
  // must verify. Every blocking point in the failover path runs as a
  // fiber park here. Budgets stay small so each kill lands inside the
  // WRITE collective: a death during the read aborts by design (the
  // dead disk's data is unrecoverable by re-planning, failover.h).
  for (const std::int64_t after_sends : {1, 2, 3}) {
    Sp2Params params = Sp2Params::Functional();
    params.subchunk_bytes = 256;
    Machine machine = Machine::Simulated(4, 3, params, /*store_data=*/true,
                                         /*timing_only=*/false);
    machine.SetSchedBackend(sched::Backend::kFiber);
    machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
    machine.KillServerAfterSends(/*server_index=*/1, after_sends);
    const World world{4, 3};
    ServerOptions options;
    options.failover = true;
    options.disk_checksums = true;
    options.journal = true;
    options.robustness = &machine.robustness();
    ArrayLayout memory("m", {2, 2});
    machine.Run(
        [&](Endpoint& ep, int idx) {
          PandaClient client(ep, world, params);
          client.set_robustness(&machine.robustness());
          client.set_failover(true);
          Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                  {BLOCK, BLOCK});
          a.BindClient(idx);
          FillPattern(a, 77);
          client.WriteArray(a);
          std::memset(a.local_data().data(), 0, a.local_data().size());
          client.ReadArray(a);
          VerifyPattern(a, 77);
          if (idx == 0) client.Shutdown();
        },
        [&](Endpoint& ep, int sidx) {
          ServerMain(ep, machine.server_fs(sidx), world, params, options);
        });

    EXPECT_GE(machine.robustness().Snapshot().failovers_completed, 1)
        << "kill after " << after_sends << " sends";
    EXPECT_GT(machine.sched_stats().parks, 0)
        << "fiber backend should actually have parked";
  }
}

// ---- transport-level counters -----------------------------------------

TEST(SchedStats, TransportAccumulatesFiberCounters) {
  PANDA_REQUIRE_FIBERS();
  Sp2Params params = Sp2Params::Functional();
  Machine machine =
      Machine::Simulated(2, 1, params, /*store_data=*/true, false);
  machine.SetSchedBackend(sched::Backend::kFiber);
  EXPECT_EQ(machine.sched_backend(), sched::Backend::kFiber);
  machine.Run([&](Endpoint&, int) {}, [&](Endpoint&, int) {});
  const sched::Stats& stats = machine.sched_stats();
  EXPECT_EQ(stats.ranks_run, 3);
  EXPECT_GE(stats.context_switches, 3);
}

}  // namespace
}  // namespace panda
