// Journal header + garbage-collection unit tests: the 48-byte "PJAL"
// header slot, header-aware record addressing, GcJournal's rewrite
// (tail preserved verbatim, torn bytes included), and the epoch check
// that lets panda_fsck flag a journal claiming a layout generation the
// committed metadata never recorded.
#include <gtest/gtest.h>

#include <vector>

#include "iosim/sim_fs.h"
#include "panda/journal.h"

namespace panda {
namespace {

SimFileSystem InstantFs() {
  SimFileSystem::Options opt;
  opt.disk = DiskModel::Instant();
  return SimFileSystem(opt);
}

JournalRecord MakeRecord(std::int64_t index) {
  JournalRecord rec;
  rec.array_index = 0;
  rec.chunk_id = static_cast<std::int32_t>(index);
  rec.sub_index = static_cast<std::int32_t>(index % 4);
  rec.seq = index / 4;
  rec.file_offset = index * 128;
  rec.bytes = 128;
  rec.data_crc = static_cast<std::uint32_t>(0xabc00000u + index);
  return rec;
}

void ExpectRecordEq(const JournalRecord& got, const JournalRecord& want) {
  EXPECT_EQ(got.chunk_id, want.chunk_id);
  EXPECT_EQ(got.sub_index, want.sub_index);
  EXPECT_EQ(got.seq, want.seq);
  EXPECT_EQ(got.file_offset, want.file_offset);
  EXPECT_EQ(got.bytes, want.bytes);
  EXPECT_EQ(got.data_crc, want.data_crc);
}

TEST(JournalGcTest, HeaderRoundTripsAndLegacyProbesAsNone) {
  SimFileSystem fs = InstantFs();
  {
    auto f = fs.Open("a.wal", OpenMode::kWrite);
    WriteJournalHeader(*f, JournalHeader{/*base_record=*/7, /*epoch=*/3});
  }
  {
    auto f = fs.Open("a.wal", OpenMode::kRead);
    const std::optional<JournalHeader> hdr = ReadJournalHeader(*f);
    ASSERT_TRUE(hdr.has_value());
    EXPECT_EQ(hdr->base_record, 7);
    EXPECT_EQ(hdr->epoch, 3);
  }
  // A legacy journal — records from slot 0, no header — must probe as
  // headerless: its first field is a small array index, not the magic.
  {
    auto f = fs.Open("legacy.wal", OpenMode::kWrite);
    WriteJournalRecord(*f, 0, MakeRecord(0));
  }
  {
    auto f = fs.Open("legacy.wal", OpenMode::kRead);
    EXPECT_FALSE(ReadJournalHeader(*f).has_value());
  }
}

TEST(JournalGcTest, RecordOffsetsHonorTheHeader) {
  EXPECT_EQ(JournalRecordOffset(std::nullopt, 0), 0);
  EXPECT_EQ(JournalRecordOffset(std::nullopt, 5), 5 * kJournalRecordBytes);
  const std::optional<JournalHeader> hdr = JournalHeader{/*base_record=*/4,
                                                         /*epoch=*/1};
  EXPECT_EQ(JournalRecordOffset(hdr, 4), kJournalHeaderBytes);
  EXPECT_EQ(JournalRecordOffset(hdr, 6),
            kJournalHeaderBytes + 2 * kJournalRecordBytes);
}

TEST(JournalGcTest, GcDropsRecordsBelowBaseAndKeepsTheTailReadable) {
  SimFileSystem fs = InstantFs();
  constexpr std::int64_t kRecords = 8;
  {
    auto f = fs.Open("t.wal", OpenMode::kWrite);
    for (std::int64_t i = 0; i < kRecords; ++i) {
      WriteJournalRecord(*f, i, MakeRecord(i));
    }
  }
  const JournalGcResult gc = GcJournal(fs, "t.wal", /*new_base=*/5,
                                       /*fallback_epoch=*/2);
  EXPECT_TRUE(gc.truncated);
  EXPECT_EQ(gc.records_dropped, 5);
  auto f = fs.Open("t.wal", OpenMode::kRead);
  const std::optional<JournalHeader> hdr = ReadJournalHeader(*f);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->base_record, 5);
  EXPECT_EQ(hdr->epoch, 2);
  // GC'd slots read as nullopt; survivors read back exactly.
  EXPECT_FALSE(ReadJournalRecord(*f, hdr, 0).has_value());
  EXPECT_FALSE(ReadJournalRecord(*f, hdr, 4).has_value());
  for (std::int64_t i = 5; i < kRecords; ++i) {
    const std::optional<JournalRecord> rec = ReadJournalRecord(*f, hdr, i);
    ASSERT_TRUE(rec.has_value()) << "record " << i;
    ExpectRecordEq(*rec, MakeRecord(i));
  }
  // The file holds exactly header + surviving tail.
  EXPECT_EQ(f->Size(), kJournalHeaderBytes + 3 * kJournalRecordBytes);
}

TEST(JournalGcTest, GcIsIdempotentAndMonotonic) {
  SimFileSystem fs = InstantFs();
  {
    auto f = fs.Open("t.wal", OpenMode::kWrite);
    for (std::int64_t i = 0; i < 6; ++i) {
      WriteJournalRecord(*f, i, MakeRecord(i));
    }
  }
  EXPECT_TRUE(GcJournal(fs, "t.wal", 2, 1).truncated);
  // Same base again: nothing left to drop.
  EXPECT_FALSE(GcJournal(fs, "t.wal", 2, 1).truncated);
  // A smaller base never resurrects anything.
  EXPECT_FALSE(GcJournal(fs, "t.wal", 1, 1).truncated);
  // A later GC advances the base and PRESERVES the original epoch (the
  // fallback only seeds a first-time header).
  const JournalGcResult gc = GcJournal(fs, "t.wal", 4, 9);
  EXPECT_TRUE(gc.truncated);
  EXPECT_EQ(gc.records_dropped, 2);
  auto f = fs.Open("t.wal", OpenMode::kRead);
  const std::optional<JournalHeader> hdr = ReadJournalHeader(*f);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->base_record, 4);
  EXPECT_EQ(hdr->epoch, 1);
}

TEST(JournalGcTest, GcPreservesATornTrailingRecordVerbatim) {
  SimFileSystem fs = InstantFs();
  {
    auto f = fs.Open("t.wal", OpenMode::kWrite);
    for (std::int64_t i = 0; i < 4; ++i) {
      WriteJournalRecord(*f, i, MakeRecord(i));
    }
    // Simulate a crash mid-append: half a record of garbage at the end.
    std::vector<std::byte> torn(kJournalRecordBytes / 2, std::byte{0x5a});
    f->WriteAt(4 * kJournalRecordBytes, torn,
               static_cast<std::int64_t>(torn.size()));
  }
  ASSERT_TRUE(GcJournal(fs, "t.wal", 3, 0).truncated);
  auto f = fs.Open("t.wal", OpenMode::kRead);
  const std::optional<JournalHeader> hdr = ReadJournalHeader(*f);
  ASSERT_TRUE(hdr.has_value());
  // The good survivor reads back; the torn bytes survived verbatim
  // (crash tolerance must not be laundered away by compaction).
  ASSERT_TRUE(ReadJournalRecord(*f, hdr, 3).has_value());
  EXPECT_EQ(f->Size(), kJournalHeaderBytes + kJournalRecordBytes +
                           kJournalRecordBytes / 2);
  std::vector<std::byte> tail(static_cast<size_t>(kJournalRecordBytes / 2));
  f->ReadAt(kJournalHeaderBytes + kJournalRecordBytes, tail,
            static_cast<std::int64_t>(tail.size()));
  for (const std::byte b : tail) EXPECT_EQ(b, std::byte{0x5a});
}

TEST(JournalGcTest, HeaderAwareWriteRefusesSlotsBelowTheBase) {
  SimFileSystem fs = InstantFs();
  {
    auto f = fs.Open("t.wal", OpenMode::kWrite);
    for (std::int64_t i = 0; i < 4; ++i) {
      WriteJournalRecord(*f, i, MakeRecord(i));
    }
  }
  ASSERT_TRUE(GcJournal(fs, "t.wal", 2, 0).truncated);
  auto f = fs.Open("t.wal", OpenMode::kReadWrite);
  const std::optional<JournalHeader> hdr = ReadJournalHeader(*f);
  ASSERT_TRUE(hdr.has_value());
  // Rewriting a live slot through the header works...
  WriteJournalRecord(*f, hdr, 2, MakeRecord(2));
  const std::optional<JournalRecord> rec = ReadJournalRecord(*f, hdr, 2);
  ASSERT_TRUE(rec.has_value());
  ExpectRecordEq(*rec, MakeRecord(2));
  // ...a GC'd slot is gone for good.
  EXPECT_DEATH(WriteJournalRecord(*f, hdr, 1, MakeRecord(1)), "base");
}

}  // namespace
}  // namespace panda
