// Tests for the baseline i/o strategies: functional correctness of
// two-phase and naive-gather writes (byte-compatible with Panda's file
// layout), and timing-mode behaviour of the caching baseline.
#include <gtest/gtest.h>

#include "baselines/naive_gather.h"
#include "baselines/traditional_caching.h"
#include "baselines/two_phase.h"
#include "test_harness.h"
#include "util/random.h"

namespace panda {
namespace {

using test::ExpectedSegment;
using test::FillPattern;
using test::VerifyPattern;

Machine SimMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

ArrayMeta TestMeta(int servers) {
  ArrayMeta meta;
  meta.name = "base";
  meta.elem_size = 4;
  meta.memory = Schema({12, 10, 8}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = Schema({12, 10, 8}, Mesh(Shape{servers}),
                     {BLOCK, NONE, NONE});
  return meta;
}

TEST(TwoPhaseTest, FilesMatchPandaLayout) {
  // A two-phase write must produce byte-identical files to Panda's
  // server-directed write (same chunk round-robin, same offsets).
  Machine machine = SimMachine(8, 3);
  const ArrayMeta meta = TestMeta(3);
  const World world{8, 3};
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 77);
        TwoPhaseWriteClient(ep, world, machine.params(), a);
      },
      [&](Endpoint& ep, int sidx) {
        TwoPhaseWriteServer(ep, machine.server_fs(sidx), world,
                            machine.params(), meta);
      });
  for (int s = 0; s < 3; ++s) {
    const auto expected =
        ExpectedSegment(meta, 3, s, machine.params().subchunk_bytes, 77);
    if (expected.empty()) continue;
    auto file = machine.server_fs(s).Open("base.dat." + std::to_string(s),
                                          OpenMode::kRead);
    ASSERT_EQ(file->Size(), static_cast<std::int64_t>(expected.size()));
    std::vector<std::byte> got(expected.size());
    file->ReadAt(0, {got.data(), got.size()},
                 static_cast<std::int64_t>(got.size()));
    EXPECT_EQ(got, expected) << "server " << s;
  }
}

TEST(TwoPhaseTest, PandaCanReadTwoPhaseOutput) {
  // Cross-strategy round trip: write with two-phase, read with Panda.
  Machine machine = SimMachine(4, 2);
  ArrayMeta meta;
  meta.name = "cross";
  meta.elem_size = 8;
  meta.memory = Schema({8, 12}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = Schema({8, 12}, Mesh(Shape{2}), {BLOCK, NONE});
  const World world{4, 2};
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 31);
        TwoPhaseWriteClient(ep, world, machine.params(), a);

        // Now read it back through Panda's server-directed read.
        std::fill(a.local_data().begin(), a.local_data().end(),
                  std::byte{0});
        PandaClient client(ep, world, machine.params());
        client.ReadArray(a);
        VerifyPattern(a, 31);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        TwoPhaseWriteServer(ep, machine.server_fs(sidx), world,
                            machine.params(), meta);
        ServerMain(ep, machine.server_fs(sidx), world, machine.params());
      });
}

TEST(NaiveGatherTest, ProducesTraditionalOrderFile) {
  Machine machine = SimMachine(4, 2);
  ArrayMeta meta;
  meta.name = "gathered";
  meta.elem_size = 4;
  meta.memory = Schema({8, 8}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = Schema({8, 8}, Mesh(Shape{1}), {BLOCK, NONE});
  const World world{4, 2};
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 13);
        NaiveGatherWriteClient(ep, world, machine.params(), a);
      },
      [&](Endpoint& ep, int sidx) {
        NaiveGatherWriteServer(ep, machine.server_fs(sidx), world,
                               machine.params(), meta);
      });
  // Server 0 holds the whole array in row-major order.
  auto file = machine.server_fs(0).Open("gathered.dat.0", OpenMode::kRead);
  const Shape shape{8, 8};
  ASSERT_EQ(file->Size(), shape.Volume() * 4);
  std::vector<std::byte> image(static_cast<size_t>(file->Size()));
  file->ReadAt(0, {image.data(), image.size()}, file->Size());
  for (std::int64_t i = 0; i < shape.Volume(); ++i) {
    const std::uint64_t v =
        test::PatternValue(13, static_cast<std::uint64_t>(i));
    EXPECT_EQ(std::memcmp(image.data() + i * 4, &v, 4), 0) << "elem " << i;
  }
}

TEST(TwoPhaseTest, ReadRoundTrip) {
  // Write with Panda, read back with two-phase: the strategies share
  // the file format, so cross-reads must round-trip byte-exactly.
  Machine machine = SimMachine(8, 3);
  const ArrayMeta meta = TestMeta(3);
  const World world{8, 3};
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 88);
        PandaClient client(ep, world, machine.params());
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();

        std::fill(a.local_data().begin(), a.local_data().end(),
                  std::byte{0});
        TwoPhaseReadClient(ep, world, machine.params(), a);
        VerifyPattern(a, 88);
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, machine.params());
        TwoPhaseReadServer(ep, machine.server_fs(sidx), world,
                           machine.params(), meta);
      });
}

TEST(NaiveGatherTest, ScatterReadRoundTrip) {
  Machine machine = SimMachine(4, 2);
  ArrayMeta meta;
  meta.name = "scat";
  meta.elem_size = 4;
  meta.memory = Schema({8, 8}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = Schema({8, 8}, Mesh(Shape{1}), {BLOCK, NONE});
  const World world{4, 2};
  machine.Run(
      [&](Endpoint& ep, int idx) {
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 21);
        NaiveGatherWriteClient(ep, world, machine.params(), a);
        std::fill(a.local_data().begin(), a.local_data().end(),
                  std::byte{0});
        NaiveScatterReadClient(ep, world, machine.params(), a);
        VerifyPattern(a, 21);
      },
      [&](Endpoint& ep, int sidx) {
        NaiveGatherWriteServer(ep, machine.server_fs(sidx), world,
                               machine.params(), meta);
        NaiveScatterReadServer(ep, machine.server_fs(sidx), world,
                               machine.params(), meta);
      });
}

TEST(TwoPhaseTest, RandomSchemasMatchPandaFilesProperty) {
  // Property: for random (memory, disk) schema pairs, two-phase and
  // server-directed writes produce byte-identical per-server files.
  Rng rng(9090);
  for (int iter = 0; iter < 6; ++iter) {
    const Shape shape{2 + static_cast<std::int64_t>(rng.NextBelow(10)),
                      2 + static_cast<std::int64_t>(rng.NextBelow(10)),
                      2 + static_cast<std::int64_t>(rng.NextBelow(10))};
    ArrayMeta meta;
    meta.name = "prop";
    meta.elem_size = 4;
    meta.memory = Schema(shape, Mesh(Shape{2, 2}),
                         {BLOCK, BLOCK, NONE});
    // Random disk decomposition over 1-3 dims.
    const int style = static_cast<int>(rng.NextBelow(3));
    meta.disk = style == 0 ? Schema(shape, Mesh(Shape{3}),
                                    {BLOCK, NONE, NONE})
                : style == 1
                    ? Schema(shape, Mesh(Shape{2, 2}), {NONE, BLOCK, BLOCK})
                    : meta.memory;
    const int servers = 2 + static_cast<int>(rng.NextBelow(2));
    const std::uint64_t salt = rng.Next();
    const World world{4, servers};

    Machine machine = SimMachine(4, servers);
    machine.Run(
        [&](Endpoint& ep, int idx) {
          Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
          a.BindClient(idx);
          FillPattern(a, salt);
          TwoPhaseWriteClient(ep, world, machine.params(), a);
        },
        [&](Endpoint& ep, int sidx) {
          TwoPhaseWriteServer(ep, machine.server_fs(sidx), world,
                              machine.params(), meta);
        });
    for (int s = 0; s < servers; ++s) {
      const auto expected = ExpectedSegment(
          meta, servers, s, machine.params().subchunk_bytes, salt);
      if (expected.empty()) continue;
      auto file = machine.server_fs(s).Open(
          "prop.dat." + std::to_string(s), OpenMode::kRead);
      std::vector<std::byte> got(expected.size());
      ASSERT_EQ(file->Size(), static_cast<std::int64_t>(expected.size()));
      file->ReadAt(0, {got.data(), got.size()},
                   static_cast<std::int64_t>(got.size()));
      EXPECT_EQ(got, expected) << "iter " << iter << " server " << s;
    }
  }
}

TEST(CachingBaselineTest, ReadTimingRunCompletes) {
  Sp2Params params = Sp2Params::Nas();
  Machine machine =
      Machine::Simulated(8, 2, params, /*store_data=*/false,
                         /*timing_only=*/true);
  ArrayMeta meta;
  meta.name = "cread";
  meta.elem_size = 4;
  meta.memory = Schema({16, 32, 32}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = meta.memory;
  const World world{8, 2};
  CachingOptions options;
  std::vector<double> elapsed(8, 0.0);
  machine.Run(
      [&](Endpoint& ep, int idx) {
        elapsed[static_cast<size_t>(idx)] =
            CachingReadClient(ep, world, params, meta, options);
      },
      [&](Endpoint& ep, int sidx) {
        CachingReadServer(ep, machine.server_fs(sidx), world, params, meta,
                          options);
      });
  std::int64_t read = 0;
  for (int s = 0; s < 2; ++s) read += machine.server_fs(s).stats().bytes_read;
  EXPECT_GE(read, meta.total_bytes() / 2);  // prefetch may over- or under-read
  for (const double t : elapsed) EXPECT_GT(t, 0.0);
}

TEST(CachingBaselineTest, TimingRunCompletesAndWritesAllBytes) {
  Sp2Params params = Sp2Params::Nas();
  Machine machine =
      Machine::Simulated(8, 2, params, /*store_data=*/false,
                         /*timing_only=*/true);
  ArrayMeta meta;
  meta.name = "cached";
  meta.elem_size = 4;
  meta.memory = Schema({16, 32, 32}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = meta.memory;  // unused by the caching baseline
  const World world{8, 2};
  CachingOptions options;
  std::vector<double> elapsed(8, 0.0);
  machine.Run(
      [&](Endpoint& ep, int idx) {
        elapsed[static_cast<size_t>(idx)] =
            CachingWriteClient(ep, world, params, meta, options);
      },
      [&](Endpoint& ep, int sidx) {
        CachingWriteServer(ep, machine.server_fs(sidx), world, params, meta,
                           options);
      });
  // Every byte of the array must reach a disk (block-granular: the cache
  // writes whole blocks, so written bytes can exceed the array size).
  std::int64_t written = 0;
  for (int s = 0; s < 2; ++s) {
    written += machine.server_fs(s).stats().bytes_written;
  }
  EXPECT_GE(written, meta.total_bytes());
  for (const double t : elapsed) EXPECT_GT(t, 0.0);
}

TEST(CachingBaselineTest, StridedPatternIsSlowerThanPanda) {
  // The motivating comparison: on the same workload, traditional caching
  // must be substantially slower than server-directed i/o.
  Sp2Params params = Sp2Params::Nas();
  ArrayMeta meta;
  meta.name = "cmp";
  meta.elem_size = 4;
  // 16 MB: larger than the i/o-node caches, as the paper's workloads
  // dwarf a mid-90s file cache.
  meta.memory = Schema({64, 256, 256}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = meta.memory;
  const World world{8, 2};
  CachingOptions options;
  options.cache_capacity_blocks = 256;  // 1 MB cache per i/o node

  double caching_elapsed = 0.0;
  {
    Machine machine = Machine::Simulated(8, 2, params, false, true);
    machine.Run(
        [&](Endpoint& ep, int idx) {
          const double t =
              CachingWriteClient(ep, world, params, meta, options);
          if (idx == 0) caching_elapsed = t;
        },
        [&](Endpoint& ep, int sidx) {
          CachingWriteServer(ep, machine.server_fs(sidx), world, params, meta,
                             options);
        });
  }

  double panda_elapsed = 0.0;
  {
    Machine machine = Machine::Simulated(8, 2, params, false, true);
    machine.Run(
        [&](Endpoint& ep, int idx) {
          PandaClient client(ep, world, params);
          Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
          a.BindClient(idx, false);
          const double t = client.WriteArray(a);
          if (idx == 0) {
            panda_elapsed = t;
            client.Shutdown();
          }
        },
        [&](Endpoint& ep, int sidx) {
          ServerMain(ep, machine.server_fs(sidx), world, params);
        });
  }
  EXPECT_GT(caching_elapsed, 1.5 * panda_elapsed)
      << "caching=" << caching_elapsed << " panda=" << panda_elapsed;
}

}  // namespace
}  // namespace panda
