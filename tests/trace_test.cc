// The observability layer's core guarantees: span nesting, bounded
// ring memory (drop-oldest + counter), histogram bucket semantics,
// deterministic cross-rank merges, and — the one that matters most —
// that tracing never perturbs the simulation: virtual clocks and byte
// counts are bit-identical with tracing off, compiled-in-but-disarmed,
// and fully armed.
#include <gtest/gtest.h>

#include <cmath>

#include "panda/report.h"
#include "test_harness.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace panda {
namespace {

using test::FillPattern;

// ---- TraceRecorder / SpanScope core ---------------------------------

TEST(TraceRecorder, RecordsSpansInOrder) {
  trace::TraceRecorder rec(0, 16);
  rec.Record(trace::SpanKind::kServerWrite, 1.0, 2.5, 100);
  rec.Record(trace::SpanKind::kServerRead, 3.0, 3.25, 50);

  const std::vector<trace::TraceSpan> spans = rec.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, trace::SpanKind::kServerWrite);
  EXPECT_DOUBLE_EQ(spans[0].begin_vs, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end_vs, 2.5);
  EXPECT_EQ(spans[0].arg, 100);
  EXPECT_EQ(spans[1].kind, trace::SpanKind::kServerRead);

  const trace::SpanAggregate& agg =
      rec.aggregate(trace::SpanKind::kServerWrite);
  EXPECT_EQ(agg.count, 1);
  EXPECT_DOUBLE_EQ(agg.total_s, 1.5);
  EXPECT_EQ(agg.total_arg, 100);
  EXPECT_EQ(rec.dropped(), 0);
}

TEST(TraceRecorder, NestedScopesCompleteInnerFirst) {
  trace::TraceRecorder rec(0, 16);
  VirtualClock clock;
  trace::ScopedRankContext ctx(&rec, &clock);

  {
    PANDA_SPAN(outer, trace::SpanKind::kClientCollective, 1);
    clock.Advance(1.0);
    {
      PANDA_SPAN(inner, trace::SpanKind::kServerWrite, 2);
      clock.Advance(0.5);
    }
    clock.Advance(1.0);
  }

#if PANDA_TRACE_ENABLED
  // The inner span is recorded first (its destructor runs first), fully
  // contained in the outer span's [0, 2.5] window.
  const std::vector<trace::TraceSpan> spans = rec.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, trace::SpanKind::kServerWrite);
  EXPECT_DOUBLE_EQ(spans[0].begin_vs, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].end_vs, 1.5);
  EXPECT_EQ(spans[1].kind, trace::SpanKind::kClientCollective);
  EXPECT_DOUBLE_EQ(spans[1].begin_vs, 0.0);
  EXPECT_DOUBLE_EQ(spans[1].end_vs, 2.5);
  EXPECT_LE(spans[1].begin_vs, spans[0].begin_vs);
  EXPECT_GE(spans[1].end_vs, spans[0].end_vs);
#else
  EXPECT_TRUE(rec.Spans().empty());
#endif
}

TEST(TraceRecorder, HelpersAreNoOpsWithoutContext) {
  // No ScopedRankContext installed: nothing to record against, nothing
  // crashes.
  EXPECT_FALSE(trace::Active());
  trace::RecordSpan(trace::SpanKind::kServerWrite, 0.0, 1.0, 8);
  trace::RecordInstant(trace::SpanKind::kTransportRetransmit, 8);
  trace::ObserveMetric(trace::MetricId::kSubchunkBytes, 4096.0);
  { PANDA_SPAN(span, trace::SpanKind::kServerPlan, 0); }
}

TEST(TraceRecorder, RingOverflowDropsOldestAndCounts) {
  trace::TraceRecorder rec(0, 4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(trace::SpanKind::kServerWrite, static_cast<double>(i),
               static_cast<double>(i) + 0.5, i);
  }

  // Ring keeps the newest 4 spans, oldest first.
  const std::vector<trace::TraceSpan> spans = rec.Spans();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(spans[static_cast<size_t>(i)].begin_vs, 6.0 + i);
    EXPECT_EQ(spans[static_cast<size_t>(i)].arg, 6 + i);
  }
  EXPECT_EQ(rec.dropped(), 6);

  // Aggregates are exact despite the drops.
  const trace::SpanAggregate& agg =
      rec.aggregate(trace::SpanKind::kServerWrite);
  EXPECT_EQ(agg.count, 10);
  EXPECT_DOUBLE_EQ(agg.total_s, 5.0);
  EXPECT_EQ(agg.total_arg, 45);
}

// ---- Histogram semantics --------------------------------------------

TEST(Histogram, BucketEdgesAreUpperBoundExclusive) {
  trace::Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 edges + overflow

  h.Observe(0.5);    // < 1.0          -> bucket 0
  h.Observe(1.0);    // >= 1.0, < 10   -> bucket 1 (edges exclusive above)
  h.Observe(9.999);  //                -> bucket 1
  h.Observe(10.0);   // >= 10, < 100   -> bucket 2
  h.Observe(100.0);  // >= last edge   -> overflow
  h.Observe(1e9);    //                -> overflow

  EXPECT_EQ(h.counts()[0], 1);
  EXPECT_EQ(h.counts()[1], 2);
  EXPECT_EQ(h.counts()[2], 1);
  EXPECT_EQ(h.counts()[3], 2);
  EXPECT_EQ(h.total_count(), 6);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 9.999 + 10.0 + 100.0 + 1e9, 1e-6);
}

TEST(Histogram, MergeRequiresSameEdgesAndAddsCounts) {
  trace::Histogram a({1.0, 2.0});
  trace::Histogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(0.7);
  b.Observe(5.0);
  a.Merge(b);
  EXPECT_EQ(a.counts()[0], 2);
  EXPECT_EQ(a.counts()[2], 1);
  EXPECT_EQ(a.total_count(), 3);
}

TEST(Histogram, ExponentialEdgesAscend) {
  const trace::Histogram h = trace::Histogram::Exponential(4096.0, 2.0, 8);
  ASSERT_EQ(h.edges().size(), 8u);
  EXPECT_DOUBLE_EQ(h.edges().front(), 4096.0);
  for (size_t i = 1; i < h.edges().size(); ++i) {
    EXPECT_DOUBLE_EQ(h.edges()[i], h.edges()[i - 1] * 2.0);
  }
}

// ---- Whole-machine runs ---------------------------------------------

struct RunOutcome {
  MachineReport report;
  std::vector<trace::Collector::RankSpan> merged;
  std::string chrome_json;
};

// One seeded lossy write+read workload; `traced` arms the collector.
RunOutcome RunWorkload(bool traced) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  const int kClients = 4;
  const int kServers = 2;
  Machine machine = Machine::Simulated(kClients, kServers, params,
                                       /*store_data=*/true, false);
  LossSpec loss;
  loss.seed = 7;
  loss.drop_prob = 0.05;
  loss.dup_prob = 0.05;
  machine.SetLoss(loss);
  if (traced) machine.EnableTrace();

  const World world{kClients, kServers};
  ArrayMeta meta;
  meta.name = "t";
  meta.elem_size = 4;
  const Shape shape{16, 12, 8};
  meta.memory = Schema(shape, Mesh(Shape{2, 2}),
                       {DimDist::Block(), DimDist::Block(), DimDist::None()});
  meta.disk = Schema(shape, Mesh(Shape{kServers}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 11);
        client.WriteArray(a);
        client.ReadArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  RunOutcome outcome;
  outcome.report = Snapshot(machine);
  if (const trace::Collector* collector = machine.trace_collector()) {
    outcome.merged = collector->MergedSpans();
    outcome.chrome_json = MachineTraceJson(machine);
  }
  return outcome;
}

// The load-bearing guarantee: arming tracing changes no virtual clock
// and no byte count. Spans only read the clocks.
TEST(TraceEquivalence, TracedRunClocksBitIdenticalToUntraced) {
  const RunOutcome off = RunWorkload(false);
  const RunOutcome on = RunWorkload(true);

  ASSERT_EQ(off.report.client_clock_s.size(), on.report.client_clock_s.size());
  for (size_t i = 0; i < off.report.client_clock_s.size(); ++i) {
    // Bit-identical, not nearly-equal.
    EXPECT_EQ(off.report.client_clock_s[i], on.report.client_clock_s[i]);
  }
  ASSERT_EQ(off.report.server_clock_s.size(), on.report.server_clock_s.size());
  for (size_t i = 0; i < off.report.server_clock_s.size(); ++i) {
    EXPECT_EQ(off.report.server_clock_s[i], on.report.server_clock_s[i]);
  }
  EXPECT_EQ(off.report.messages.messages_sent,
            on.report.messages.messages_sent);
  EXPECT_EQ(off.report.messages.bytes_sent, on.report.messages.bytes_sent);
  ASSERT_EQ(off.report.server_fs.size(), on.report.server_fs.size());
  for (size_t s = 0; s < off.report.server_fs.size(); ++s) {
    EXPECT_EQ(off.report.server_fs[s].bytes_written,
              on.report.server_fs[s].bytes_written);
    EXPECT_EQ(off.report.server_fs[s].bytes_read,
              on.report.server_fs[s].bytes_read);
    EXPECT_EQ(off.report.server_fs[s].writes, on.report.server_fs[s].writes);
  }
}

#if PANDA_TRACE_ENABLED

// Same seeded workload, same merged timeline: virtual clocks are
// deterministic, so the cross-rank merge is reproducible span for span.
TEST(TraceEquivalence, MergedSpansDeterministicUnderFixedSeed) {
  const RunOutcome a = RunWorkload(true);
  const RunOutcome b = RunWorkload(true);
  ASSERT_FALSE(a.merged.empty());
  ASSERT_EQ(a.merged.size(), b.merged.size());
  EXPECT_TRUE(a.merged == b.merged);
  EXPECT_EQ(a.chrome_json, b.chrome_json);
}

TEST(TraceEquivalence, MergedSpansAreSortedAndCoverTheProtocol) {
  const RunOutcome on = RunWorkload(true);
  ASSERT_FALSE(on.merged.empty());
  for (size_t i = 1; i < on.merged.size(); ++i) {
    EXPECT_LE(on.merged[i - 1].span.begin_vs, on.merged[i].span.begin_vs);
  }
  std::array<std::int64_t, trace::kNumSpanKinds> seen{};
  for (const trace::Collector::RankSpan& rs : on.merged) {
    ++seen[static_cast<size_t>(rs.span.kind)];
    EXPECT_GE(rs.span.end_vs, rs.span.begin_vs);
    EXPECT_GE(rs.rank, 0);
  }
  // A lossy write+read exercises every protocol stage we instrument.
  using SK = trace::SpanKind;
  for (const SK kind :
       {SK::kClientCollective, SK::kTransportSend, SK::kTransportRecv,
        SK::kTransportRetransmit, SK::kServerPlan, SK::kServerPull,
        SK::kServerWrite, SK::kServerRead}) {
    EXPECT_GT(seen[static_cast<size_t>(kind)], 0)
        << "missing span kind " << trace::SpanKindName(kind);
  }
}

TEST(TraceEquivalence, MetricsRegistryCarriesSpansAndHistograms) {
  const RunOutcome on = RunWorkload(true);
  const trace::MetricsSnapshot& m = on.report.metrics;
  // Imported report counters (single source of truth).
  EXPECT_EQ(m.counters.at("msg.messages_sent"),
            on.report.messages.messages_sent);
  EXPECT_EQ(m.counters.at("transport.drops_injected"),
            on.report.transport.drops_injected);
  EXPECT_EQ(m.counters.at("robustness.io_retries"),
            on.report.robustness.io_retries);
  // Span aggregates and histograms from the collector.
  EXPECT_GT(m.counters.at("span.server.write.count"), 0);
  EXPECT_GT(m.gauges.at("span.client.collective.total_s"), 0.0);
  const trace::MetricsSnapshot::Hist& sub =
      m.histograms.at("server.subchunk_bytes");
  EXPECT_GT(sub.total_count, 0);
  EXPECT_EQ(sub.counts.size(), sub.edges.size() + 1);
  EXPECT_TRUE(m.histograms.count("disk.op_seconds"));
  EXPECT_TRUE(m.histograms.count("mailbox.depth"));
  EXPECT_EQ(m.counters.at("trace.spans_dropped"), 0);
}

TEST(TraceExport, ChromeJsonIsWellFormedEnough) {
  const RunOutcome on = RunWorkload(true);
  const std::string& json = on.chrome_json;
  ASSERT_FALSE(json.empty());
  // Perfetto's minimum demands: a traceEvents array, per-rank
  // thread_name metadata, X events with ts/dur, balanced braces.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"client 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ion 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  std::int64_t depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::int64_t brackets = 0;
  for (const char c : json) {
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(brackets, 0);
}

#endif  // PANDA_TRACE_ENABLED

TEST(TraceExport, JsonDoubleRoundTrips) {
  for (const double v : {0.0, 1.0 / 3.0, 1e-300, 123456.789012345678,
                         6.25e-2}) {
    const std::string s = trace::JsonDouble(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  // Non-finite values must not leak into JSON.
  EXPECT_EQ(trace::JsonDouble(std::nan("")), "0");
}

}  // namespace
}  // namespace panda
