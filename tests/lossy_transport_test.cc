// Lossy-transport property tests: under any seeded schedule of drops,
// duplicates, reorders and delays, the reliable-delivery layer must
// present exactly-once, per-(src,dst,tag)-ordered delivery to the
// protocol above — and must be perfectly free (identical timing, zero
// counters) when nothing goes wrong. Also covers the deadline receive
// (TryRecv) and the crash-stop/lease failure-detection path the
// failover protocol builds on.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "msg/transport.h"
#include "util/codec.h"
#include "util/error.h"

namespace panda {
namespace {

ThreadTransport::Config InstantConfig() {
  ThreadTransport::Config cfg;
  cfg.net = NetModel::Instant();
  return cfg;
}

Message SeqMessage(int value) {
  Message msg;
  Encoder enc(msg.header);
  enc.Put<std::int32_t>(value);
  return msg;
}

int SeqOf(const Message& msg) {
  Decoder dec(msg.header);
  return dec.Get<std::int32_t>();
}

// ---------------------------------------------------------------------
// Exactly-once, per-pair-ordered delivery under a hostile adversary

TEST(LossyTransportTest, ExactlyOnceInOrderAcrossManySeeds) {
  // Every rank streams numbered messages to every other rank on two
  // tags; every receiver demands them back in order. Any lost message
  // hangs the test (caught by the harness timeout), any duplicate or
  // reordering breaks the sequence check.
  constexpr int kRanks = 4;
  constexpr int kPerPair = 20;
  constexpr int kTags[] = {kTagApp, kTagApp + 1};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ThreadTransport tt(kRanks, InstantConfig());
    LossSpec loss;
    loss.seed = seed;
    loss.drop_prob = 0.15;
    loss.dup_prob = 0.10;
    loss.reorder_prob = 0.10;
    loss.delay_prob = 0.10;
    tt.SetLoss(loss);
    tt.Run([&](Endpoint& ep) {
      for (int dst = 0; dst < kRanks; ++dst) {
        if (dst == ep.rank()) continue;
        for (int i = 0; i < kPerPair; ++i) {
          for (const int tag : kTags) ep.Send(dst, tag, SeqMessage(i));
        }
      }
      for (int src = 0; src < kRanks; ++src) {
        if (src == ep.rank()) continue;
        for (const int tag : kTags) {
          for (int i = 0; i < kPerPair; ++i) {
            const Message m = ep.Recv(src, tag);
            ASSERT_EQ(SeqOf(m), i)
                << "seed " << seed << " src " << src << " tag " << tag;
          }
        }
      }
    });
    const MsgStats stats = tt.TotalStats();
    const std::int64_t logical =
        static_cast<std::int64_t>(kRanks) * (kRanks - 1) * kPerPair * 2;
    EXPECT_EQ(stats.messages_sent, logical) << "seed " << seed;
    EXPECT_EQ(stats.messages_received, logical) << "seed " << seed;

    const TransportFaultCounters faults = tt.fault_stats().Snapshot();
    EXPECT_GT(faults.drops_injected + faults.dups_injected +
                  faults.reorders_injected + faults.delays_injected,
              0)
        << "seed " << seed << ": the adversary never fired";
    // Receiver-driven recovery is exact: one retransmit per drop, one
    // suppression per duplicate.
    EXPECT_EQ(faults.retransmits, faults.drops_injected) << "seed " << seed;
    EXPECT_EQ(faults.dups_suppressed, faults.dups_injected) << "seed " << seed;
  }
}

TEST(LossyTransportTest, BoundedAdversaryHonorsTotalCap) {
  ThreadTransport tt(2, InstantConfig());
  LossSpec loss;
  loss.seed = 7;
  loss.drop_prob = 1.0;  // would drop everything...
  loss.max_consecutive_faults = 1000;
  loss.min_clean_after_fault = 0;
  loss.max_faults_total = 3;  // ...but the cap stops it
  tt.SetLoss(loss);
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      for (int i = 0; i < 50; ++i) ep.Send(1, kTagApp, SeqMessage(i));
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(SeqOf(ep.Recv(0, kTagApp)), i);
    }
  });
  EXPECT_EQ(tt.fault_stats().Snapshot().drops_injected, 3);
}

// ---------------------------------------------------------------------
// Arming the reliable layer with zero faults must change nothing

TEST(LossyTransportTest, ReliableLayerIsFreeWhenNoFaultsInjected) {
  // Same workload, realistic (non-instant) network model, with and
  // without the reliable layer armed: clocks and wire bytes must be
  // bit-identical, fault counters all zero.
  auto run = [](bool armed) {
    ThreadTransport::Config cfg;  // default NetModel: SP2 latencies
    ThreadTransport tt(3, cfg);
    if (armed) {
      LossSpec loss;
      loss.always_reliable = true;
      tt.SetLoss(loss);
    }
    tt.Run([](Endpoint& ep) {
      // A little triangle of request/response traffic with payloads.
      const int next = (ep.rank() + 1) % 3;
      const int prev = (ep.rank() + 2) % 3;
      Message m = SeqMessage(ep.rank());
      m.SetPayload(std::vector<std::byte>(4096));
      ep.Send(next, kTagApp, std::move(m));
      const Message got = ep.Recv(prev, kTagApp);
      EXPECT_EQ(SeqOf(got), prev);
      ep.Send(prev, kTagApp + 1, SeqMessage(100 + ep.rank()));
      (void)ep.Recv(next, kTagApp + 1);
    });
    std::vector<double> clocks;
    for (int r = 0; r < 3; ++r) clocks.push_back(tt.endpoint(r).clock().Now());
    return std::make_pair(clocks, tt.TotalStats());
  };
  const auto [clocks_plain, stats_plain] = run(false);
  const auto [clocks_armed, stats_armed] = run(true);
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(clocks_armed[static_cast<size_t>(r)],
                     clocks_plain[static_cast<size_t>(r)])
        << "rank " << r;
  }
  EXPECT_EQ(stats_armed.bytes_sent, stats_plain.bytes_sent);
  EXPECT_EQ(stats_armed.messages_sent, stats_plain.messages_sent);
}

// ---------------------------------------------------------------------
// Deadline receive

TEST(LossyTransportTest, TryRecvReturnsAvailableMessage) {
  ThreadTransport tt(2, InstantConfig());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 1) {
      ep.Send(0, kTagApp, SeqMessage(7));       // data, sent first
      ep.Send(0, kTagApp + 1, SeqMessage(0));   // "ready" flag
    } else {
      (void)ep.Recv(1, kTagApp + 1);  // after this, the data message
                                      // is certainly deposited
      const std::optional<Message> m = ep.TryRecv(1, kTagApp, 1.0);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(SeqOf(*m), 7);
    }
  });
}

TEST(LossyTransportTest, TryRecvTimesOutInVirtualTime) {
  ThreadTransport tt(2, InstantConfig());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      const double before = ep.clock().Now();
      const std::optional<Message> m = ep.TryRecv(1, kTagApp, 5.0e-3);
      EXPECT_FALSE(m.has_value());
      EXPECT_GE(ep.clock().Now() - before, 5.0e-3);  // waiting was charged
    }
    // Rank 1 sends nothing and exits.
  });
}

// ---------------------------------------------------------------------
// Crash-stop injection + lease-based detection

TEST(LossyTransportTest, RecvFromKilledRankThrowsPeerDeadAfterLease) {
  ThreadTransport tt(3, InstantConfig());
  HeartbeatConfig hb;
  hb.enabled = true;
  hb.interval_s = 1.0e-2;
  hb.misses = 3;
  tt.SetHeartbeat(hb);
  tt.ScheduleKill(/*rank=*/1, /*after_more_sends=*/1);
  tt.Run([&](Endpoint& ep) {
    if (ep.rank() == 1) {
      ep.Send(2, kTagApp, SeqMessage(1));  // within budget: delivered
      ep.Send(2, kTagApp, SeqMessage(2));  // kill fires: silent unwind
      FAIL() << "the kill injector must not return";
    } else if (ep.rank() == 2) {
      // The message sent before death stays deliverable...
      EXPECT_EQ(SeqOf(ep.Recv(1, kTagApp)), 1);
      // ...the one that never left does not: bounded-time detection.
      EXPECT_FALSE(ep.peer_alive(1));
      EXPECT_THROW((void)ep.Recv(1, kTagApp), PeerDeadError);
      EXPECT_GE(ep.clock().Now(), hb.lease_s());  // charged to the lease
    } else {
      // A rank that never met the victim also observes death promptly.
      const std::optional<Message> m = ep.TryRecv(1, kTagApp, 1.0e-1);
      EXPECT_FALSE(m.has_value());
    }
  });
  EXPECT_EQ(tt.fault_stats().Snapshot().ranks_killed, 1);
  EXPECT_GE(tt.fault_stats().Snapshot().peers_declared_dead, 1);
  EXPECT_FALSE(tt.alive(1));
  EXPECT_TRUE(tt.alive(0));
  EXPECT_TRUE(tt.alive(2));
}

// ---------------------------------------------------------------------
// Revival + incarnation fencing

TEST(LossyTransportTest, ReviveFencesZombieTrafficAndBumpsIncarnation) {
  // Rank 1 deposits a message into rank 2's mailbox and dies before
  // rank 2 reads it. Reviving rank 1 must fence that zombie — the new
  // incarnation's first message, not the old one's leftover, is what
  // rank 2 receives next — and the fence must be visible in the
  // stale_incarnation_dropped counter.
  ThreadTransport tt(3, InstantConfig());
  HeartbeatConfig hb;
  hb.enabled = true;
  hb.interval_s = 1.0e-2;
  hb.misses = 3;
  tt.SetHeartbeat(hb);
  tt.ScheduleKill(/*rank=*/1, /*after_more_sends=*/1);
  tt.Run([&](Endpoint& ep) {
    if (ep.rank() == 1) {
      EXPECT_EQ(ep.incarnation(), 1);
      ep.Send(2, kTagApp, SeqMessage(7));  // delivered, never received
      ep.Send(2, kTagApp, SeqMessage(8));  // kill fires: silent unwind
      FAIL() << "the kill injector must not return";
    } else if (ep.rank() == 2) {
      // Park on a different tag long enough for the zombie to land in
      // this mailbox and for the death to be detected; take nothing.
      const std::optional<Message> m = ep.TryRecv(1, kTagApp + 1, 1.0e-1);
      EXPECT_FALSE(m.has_value());
      EXPECT_FALSE(ep.peer_alive(1));
    }
  });
  ASSERT_FALSE(tt.alive(1));

  tt.Revive(1);
  EXPECT_TRUE(tt.alive(1));
  EXPECT_EQ(tt.incarnation(1), 2);
  const TransportFaultCounters after = tt.fault_stats().Snapshot();
  EXPECT_EQ(after.ranks_revived, 1);
  EXPECT_GE(after.stale_incarnation_dropped, 1);  // the queued zombie

  tt.Run([&](Endpoint& ep) {
    if (ep.rank() == 1) {
      EXPECT_EQ(ep.incarnation(), 2);
      ep.Send(2, kTagApp, SeqMessage(42));
    } else if (ep.rank() == 2) {
      // The fenced message 7 is gone; the new life's stream starts
      // fresh at sequence zero and delivers cleanly.
      EXPECT_EQ(SeqOf(ep.Recv(1, kTagApp)), 42);
    }
  });
}

TEST(LossyTransportTest, DetectionWorksUnderLossToo) {
  // Drops + a crash-stop together: the survivor still gets everything
  // sent before death (retransmits included) and then a clean
  // PeerDeadError, not a hang.
  ThreadTransport tt(2, InstantConfig());
  LossSpec loss;
  loss.seed = 3;
  loss.drop_prob = 0.3;
  tt.SetLoss(loss);
  HeartbeatConfig hb;
  hb.enabled = true;
  tt.SetHeartbeat(hb);
  tt.ScheduleKill(/*rank=*/1, /*after_more_sends=*/10);
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 1) {
      for (int i = 0; i < 20; ++i) ep.Send(0, kTagApp, SeqMessage(i));
      FAIL() << "rank 1 must die on its 11th send";
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(SeqOf(ep.Recv(1, kTagApp)), i);
      EXPECT_THROW((void)ep.Recv(1, kTagApp), PeerDeadError);
    }
  });
  EXPECT_EQ(tt.fault_stats().Snapshot().ranks_killed, 1);
}

}  // namespace
}  // namespace panda
