// Virtual-time model tests: the LogGP accounting rules, receiver-link
// serialization, and the responder primitives that keep the model
// insensitive to host thread scheduling.
#include <gtest/gtest.h>

#include "msg/collectives.h"
#include "msg/transport.h"

namespace panda {
namespace {

ThreadTransport::Config TestNet() {
  ThreadTransport::Config cfg;
  cfg.net.latency_s = 1e-3;
  cfg.net.bandwidth_Bps = 1e6;          // 1 MB/s: 1 byte = 1 us
  cfg.net.per_message_overhead_s = 1e-2;
  return cfg;
}

TEST(TimingModelTest, ReceiverLinkSerializesConcurrentSenders) {
  // Two senders each push 1 MB to rank 2 "at the same time": the
  // receiver's inbound link must deliver them back to back, so the
  // second message completes ~2 wire-times after the start — N senders
  // cannot exceed one link's bandwidth.
  ThreadTransport tt(3, TestNet());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() < 2) {
      Message m;
      m.SetVirtualPayload(1'000'000);  // 1 second of wire time
      ep.Send(2, kTagApp, std::move(m));
      return;
    }
    (void)ep.Recv(0, kTagApp);
    const double after_first = ep.clock().Now();
    (void)ep.Recv(1, kTagApp);
    const double after_second = ep.clock().Now();
    // First: o(send) + L + T + o(recv) ~ 1.021 s.
    EXPECT_NEAR(after_first, 1e-2 + 1e-3 + 1.0 + 1e-2, 1e-6);
    // Second: queued behind the first on the inbound link: +1 s (its
    // receive overhead overlaps the tail of its own wire time, since
    // the first message's processing already advanced the clock).
    EXPECT_NEAR(after_second, after_first + 1.0, 1e-6);
  });
}

TEST(TimingModelTest, ResponderTimingIndependentOfServiceOrder) {
  // Two requesters at very different virtual times send to a responder.
  // Whichever wall-clock order the responder serves them in, each reply
  // must be timed from its own request's arrival — the far-future
  // requester must not delay the near-past one.
  for (int trial = 0; trial < 2; ++trial) {
    ThreadTransport tt(3, TestNet());
    tt.Run([trial](Endpoint& ep) {
      if (ep.rank() == 0) {
        ep.AdvanceCompute(100.0);  // far in the virtual future
        ep.Send(2, kTagApp, Message{});
        Message reply = ep.Recv(2, kTagApp + 1);
        EXPECT_GT(ep.clock().Now(), 100.0);
        return;
      }
      if (ep.rank() == 1) {
        // Near the virtual origin.
        if (trial == 1) {
          // Delay in *wall clock* (not virtual time) so arrival order
          // at the responder flips between trials.
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        ep.Send(2, kTagApp, Message{});
        Message reply = ep.Recv(2, kTagApp + 1);
        // Reply timing must derive from this request (~ a few o+L),
        // never from rank 0's +100 s clock.
        EXPECT_LT(ep.clock().Now(), 1.0);
        return;
      }
      // Responder: serve both, in arrival order.
      for (int i = 0; i < 2; ++i) {
        Endpoint::Delivery d = ep.RecvAnyDelivery(kTagApp);
        ep.SendResponse(d.ready_time, d.msg.src, kTagApp + 1, Message{});
      }
    });
  }
}

TEST(TimingModelTest, SendResponseChargesOverheadAndWire) {
  ThreadTransport tt(2, TestNet());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.Send(1, kTagApp, Message{});
      Message reply = ep.Recv(1, kTagApp + 1);
      // request: o + L (tiny) ; responder o ; reply o + L + T + o(recv).
      // T = 1000 bytes = 1 ms.
      const double expect = /*send o*/ 1e-2 + /*L*/ 1e-3 +
                            /*resp recv o*/ 1e-2 + /*resp send o*/ 1e-2 +
                            /*L*/ 1e-3 + /*T*/ 1e-3 + /*recv o*/ 1e-2;
      EXPECT_NEAR(ep.clock().Now(), expect, 1e-9);
    } else {
      Endpoint::Delivery d = ep.RecvAnyDelivery(kTagApp);
      Message reply;
      reply.SetVirtualPayload(1000);
      ep.SendResponse(d.ready_time, 0, kTagApp + 1, std::move(reply));
    }
  });
}

TEST(TimingModelTest, GatherSyncCostsLessThanBarrier) {
  ThreadTransport::Config cfg = TestNet();
  ThreadTransport t1(8, cfg);
  t1.Run([](Endpoint& ep) {
    Barrier(ep, Group::Consecutive(0, 8, ep.rank()));
  });
  double barrier_max = 0;
  for (int r = 0; r < 8; ++r) {
    barrier_max = std::max(barrier_max, t1.endpoint(r).clock().Now());
  }
  ThreadTransport t2(8, cfg);
  t2.Run([](Endpoint& ep) {
    GatherSync(ep, Group::Consecutive(0, 8, ep.rank()));
  });
  // The root's gather completion is cheaper than the full barrier.
  EXPECT_LT(t2.endpoint(0).clock().Now(), barrier_max);
}

TEST(TimingModelTest, DeterministicAcrossRuns) {
  // The same protocol must produce bit-identical virtual times on
  // repeated runs despite arbitrary thread interleavings.
  auto run_once = [] {
    ThreadTransport tt(6, TestNet());
    tt.Run([](Endpoint& ep) {
      const Group all = Group::Consecutive(0, 6, ep.rank());
      for (int round = 0; round < 5; ++round) {
        if (ep.rank() > 0) {
          Message m;
          m.SetVirtualPayload(10'000 * ep.rank());
          ep.Send(0, kTagApp, std::move(m));
        } else {
          for (int src = 1; src < 6; ++src) {
            (void)ep.Recv(src, kTagApp);
          }
        }
        Barrier(ep, all);
      }
    });
    return tt.endpoint(0).clock().Now();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace panda
