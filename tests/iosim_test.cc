// Unit tests for src/iosim: disk model calibration, POSIX and simulated
// file systems, and the block cache used by the caching baseline.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "iosim/block_cache.h"
#include "iosim/disk_model.h"
#include "iosim/posix_fs.h"
#include "iosim/sim_fs.h"
#include "msg/virtual_clock.h"
#include "util/error.h"
#include "util/units.h"

namespace panda {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(DiskModelTest, CalibratedToTable1Peaks) {
  // 1 MB requests must deliver exactly the measured AIX peaks.
  const DiskModel disk = DiskModel::NasSp2Aix();
  EXPECT_NEAR(disk.ReadThroughput(1 * kMiB) / kMiB, 2.85, 0.01);
  EXPECT_NEAR(disk.WriteThroughput(1 * kMiB) / kMiB, 2.23, 0.01);
}

TEST(DiskModelTest, ThroughputDeclinesForSmallRequests) {
  // The paper: "the underlying AIX file system throughput declines when
  // writing ... with write size less than 1 MB".
  const DiskModel disk = DiskModel::NasSp2Aix();
  double prev = 0.0;
  for (const std::int64_t size : {64 * kKiB, 256 * kKiB, 512 * kKiB, 1 * kMiB}) {
    const double thr = disk.WriteThroughput(size);
    EXPECT_GT(thr, prev);
    prev = thr;
  }
  EXPECT_LT(disk.WriteThroughput(64 * kKiB), 0.5 * disk.WriteThroughput(kMiB));
}

TEST(DiskModelTest, SeekAddsCost) {
  const DiskModel disk = DiskModel::NasSp2Aix();
  EXPECT_GT(disk.ReadSeconds(4096, false), disk.ReadSeconds(4096, true));
  EXPECT_NEAR(disk.ReadSeconds(4096, false) - disk.ReadSeconds(4096, true),
              disk.seek_s, 1e-12);
}

TEST(DiskModelTest, InstantDiskIsFree) {
  const DiskModel disk = DiskModel::Instant();
  EXPECT_LT(disk.WriteSeconds(1 * kGiB, false), 1e-6);
  EXPECT_LT(disk.ReadSeconds(1 * kGiB, false), 1e-6);
}

class PosixFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("panda_posixfs_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::filesystem::path root_;
};

TEST_F(PosixFsTest, WriteReadRoundTrip) {
  PosixFileSystem fs(root_.string());
  {
    auto f = fs.Open("a.dat", OpenMode::kWrite);
    auto data = Bytes({1, 2, 3, 4, 5});
    f->WriteAt(0, {data.data(), data.size()}, 5);
    f->Sync();
    EXPECT_EQ(f->Size(), 5);
  }
  EXPECT_TRUE(fs.Exists("a.dat"));
  {
    auto f = fs.Open("a.dat", OpenMode::kRead);
    std::vector<std::byte> out(3);
    f->ReadAt(1, {out.data(), out.size()}, 3);
    EXPECT_EQ(out, Bytes({2, 3, 4}));
  }
  EXPECT_EQ(fs.stats().writes, 1);
  EXPECT_EQ(fs.stats().reads, 1);
  EXPECT_EQ(fs.stats().bytes_written, 5);
}

TEST_F(PosixFsTest, WriteAtOffsetExtendsFile) {
  PosixFileSystem fs(root_.string());
  auto f = fs.Open("b.dat", OpenMode::kWrite);
  auto data = Bytes({9});
  f->WriteAt(100, {data.data(), data.size()}, 1);
  EXPECT_EQ(f->Size(), 101);
}

TEST_F(PosixFsTest, TruncateOnWriteMode) {
  PosixFileSystem fs(root_.string());
  {
    auto f = fs.Open("c.dat", OpenMode::kWrite);
    auto data = Bytes({1, 2, 3});
    f->WriteAt(0, {data.data(), data.size()}, 3);
  }
  {
    auto f = fs.Open("c.dat", OpenMode::kWrite);  // truncates
    EXPECT_EQ(f->Size(), 0);
  }
  {
    auto f = fs.Open("c.dat", OpenMode::kReadWrite);  // preserves
    EXPECT_EQ(f->Size(), 0);
  }
}

TEST_F(PosixFsTest, RemoveAndExists) {
  PosixFileSystem fs(root_.string());
  { fs.Open("d.dat", OpenMode::kWrite); }
  EXPECT_TRUE(fs.Exists("d.dat"));
  fs.Remove("d.dat");
  EXPECT_FALSE(fs.Exists("d.dat"));
}

TEST_F(PosixFsTest, RejectsEscapingPaths) {
  PosixFileSystem fs(root_.string());
  EXPECT_THROW(fs.Open("../evil", OpenMode::kWrite), PandaError);
  EXPECT_THROW(fs.Open("/abs", OpenMode::kWrite), PandaError);
}

TEST_F(PosixFsTest, MissingFileReadThrows) {
  PosixFileSystem fs(root_.string());
  EXPECT_THROW(fs.Open("nope.dat", OpenMode::kRead), PandaError);
}

TEST(SimFsTest, StoreDataRoundTrip) {
  SimFileSystem::Options opt;
  opt.disk = DiskModel::Instant();
  SimFileSystem fs(opt);
  {
    auto f = fs.Open("x", OpenMode::kWrite);
    auto data = Bytes({7, 8, 9});
    f->WriteAt(0, {data.data(), data.size()}, 3);
  }
  {
    auto f = fs.Open("x", OpenMode::kRead);
    std::vector<std::byte> out(2);
    f->ReadAt(1, {out.data(), out.size()}, 2);
    EXPECT_EQ(out, Bytes({8, 9}));
  }
}

TEST(SimFsTest, ReadPastEofThrows) {
  SimFileSystem::Options opt;
  SimFileSystem fs(opt);
  auto f = fs.Open("x", OpenMode::kWrite);
  auto data = Bytes({1});
  f->WriteAt(0, {data.data(), data.size()}, 1);
  std::vector<std::byte> out(2);
  EXPECT_THROW(f->ReadAt(0, {out.data(), out.size()}, 2), PandaError);
}

TEST(SimFsTest, ChargesClockPerDiskModel) {
  VirtualClock clock;
  SimFileSystem::Options opt;
  opt.disk = DiskModel::NasSp2Aix();
  opt.store_data = false;
  opt.clock = &clock;
  SimFileSystem fs(opt);
  auto f = fs.Open("x", OpenMode::kWrite);
  f->WriteAt(0, {}, 1 * kMiB);  // first access: seek + write
  const double expected = opt.disk.WriteSeconds(1 * kMiB, false);
  EXPECT_NEAR(clock.Now(), expected, 1e-12);
  // Sequential continuation: no seek.
  f->WriteAt(1 * kMiB, {}, 1 * kMiB);
  EXPECT_NEAR(clock.Now(), expected + opt.disk.WriteSeconds(1 * kMiB, true),
              1e-12);
  EXPECT_EQ(fs.stats().seeks, 1);
  EXPECT_NEAR(fs.stats().busy_seconds, clock.Now(), 1e-12);
}

TEST(SimFsTest, SequentialDetectionAcrossFiles) {
  SimFileSystem::Options opt;
  opt.store_data = false;
  SimFileSystem fs(opt);
  auto a = fs.Open("a", OpenMode::kWrite);
  auto b = fs.Open("b", OpenMode::kWrite);
  a->WriteAt(0, {}, 100);    // seek (first access)
  a->WriteAt(100, {}, 100);  // sequential
  b->WriteAt(0, {}, 100);    // different file: seek
  a->WriteAt(200, {}, 100);  // back to a: seek
  EXPECT_EQ(fs.stats().seeks, 3);
}

TEST(SimFsTest, TimestepAppendPatternIsSequential) {
  // Panda's timestep output appends; the device must see one initial
  // seek then pure sequential writes.
  SimFileSystem::Options opt;
  opt.store_data = false;
  SimFileSystem fs(opt);
  auto f = fs.Open("ts", OpenMode::kReadWrite);
  std::int64_t offset = 0;
  for (int t = 0; t < 10; ++t) {
    f->WriteAt(offset, {}, 64 * kKiB);
    offset += 64 * kKiB;
  }
  EXPECT_EQ(fs.stats().seeks, 1);
}

TEST(SimFsTest, OpenTruncateResetsContents) {
  SimFileSystem::Options opt;
  SimFileSystem fs(opt);
  {
    auto f = fs.Open("x", OpenMode::kWrite);
    auto data = Bytes({1, 2, 3});
    f->WriteAt(0, {data.data(), data.size()}, 3);
  }
  auto f = fs.Open("x", OpenMode::kWrite);
  EXPECT_EQ(f->Size(), 0);
}

TEST(SimFsTest, RemoveDeletes) {
  SimFileSystem::Options opt;
  SimFileSystem fs(opt);
  fs.Open("x", OpenMode::kWrite);
  EXPECT_TRUE(fs.Exists("x"));
  fs.Remove("x");
  EXPECT_FALSE(fs.Exists("x"));
}

// --- Block cache (timing layer over a simulated file) ---

struct CacheFixture {
  CacheFixture() {
    SimFileSystem::Options opt;
    opt.disk = DiskModel::NasSp2Aix();
    opt.store_data = false;
    opt.clock = &clock;
    fs = std::make_unique<SimFileSystem>(opt);
    file = fs->Open("striped", OpenMode::kReadWrite);
  }
  VirtualClock clock;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<File> file;
};

TEST(BlockCacheTest, AbsorbsSmallWritesUntilFlush) {
  CacheFixture fx;
  BlockCache cache(fx.file.get(), {});
  // 4 KB-aligned small writes: fully-covering, so no read-modify-write.
  for (int i = 0; i < 16; ++i) {
    cache.WriteAt(i * 4096, {}, 4096);
  }
  EXPECT_EQ(fx.fs->stats().writes, 0);  // all absorbed
  cache.Flush();
  // Adjacent dirty blocks coalesce into one 64 KB write.
  EXPECT_EQ(fx.fs->stats().writes, 1);
  EXPECT_EQ(fx.fs->stats().bytes_written, 16 * 4096);
}

TEST(BlockCacheTest, StridedWritesCoalescePartially) {
  CacheFixture fx;
  BlockCache cache(fx.file.get(), {});
  // Two interleaved strided streams: blocks 0,2,4,... and 1,3,5,...
  for (int i = 0; i < 8; ++i) cache.WriteAt(2 * i * 4096, {}, 4096);
  cache.Flush();
  const auto after_even = fx.fs->stats().writes;
  EXPECT_EQ(after_even, 8);  // even blocks cannot coalesce
  for (int i = 0; i < 8; ++i) cache.WriteAt((2 * i + 1) * 4096, {}, 4096);
  cache.Flush();
  // Odd blocks also flush separately: the cache cannot recover what the
  // access pattern destroyed.
  EXPECT_EQ(fx.fs->stats().writes, 16);
}

TEST(BlockCacheTest, PartialBlockWriteTriggersReadModifyWrite) {
  CacheFixture fx;
  // Give the base file some length so the fetch has something to read.
  fx.file->WriteAt(0, {}, 64 * 1024);
  const auto reads_before = fx.fs->stats().reads;
  BlockCache cache(fx.file.get(), {});
  cache.WriteAt(100, {}, 50);  // partial cover of block 0
  EXPECT_EQ(fx.fs->stats().reads, reads_before + 1);
  cache.WriteAt(4096, {}, 4096);  // full cover: no fetch
  EXPECT_EQ(fx.fs->stats().reads, reads_before + 1);
}

TEST(BlockCacheTest, SequentialReadPrefetches) {
  CacheFixture fx;
  fx.file->WriteAt(0, {}, 1024 * 1024);
  BlockCache::Options opt;
  opt.prefetch_blocks = 8;
  BlockCache cache(fx.file.get(), opt);
  cache.ReadAt(0, {}, 4096);      // miss, not yet sequential
  cache.ReadAt(4096, {}, 4096);   // sequential: prefetch window
  const auto reads = fx.fs->stats().reads;
  cache.ReadAt(8192, {}, 4096);   // covered by the prefetch
  cache.ReadAt(12288, {}, 4096);  // covered
  EXPECT_EQ(fx.fs->stats().reads, reads);
  EXPECT_GT(cache.hits(), 0);
}

TEST(BlockCacheTest, EvictionWritesBackDirtyBlocks) {
  CacheFixture fx;
  BlockCache::Options opt;
  opt.capacity_blocks = 4;
  BlockCache cache(fx.file.get(), opt);
  for (int i = 0; i < 12; ++i) {
    cache.WriteAt(i * 4096, {}, 4096);
  }
  // Capacity 4: most blocks must have been written back already.
  EXPECT_GE(fx.fs->stats().writes, 2);
  cache.Flush();
  EXPECT_EQ(fx.fs->stats().bytes_written, 12 * 4096);
}

}  // namespace
}  // namespace panda
