// Tests for the plan memoization cache.
#include <gtest/gtest.h>

#include "panda/plan_cache.h"

namespace panda {
namespace {

ArrayMeta MetaOf(const char* name, Shape shape = {16, 16}) {
  ArrayMeta meta;
  meta.name = name;
  meta.elem_size = 4;
  meta.memory = Schema(shape, Mesh(Shape{2, 2}),
                       {DimDist::Block(), DimDist::Block()});
  meta.disk = meta.memory;
  return meta;
}

TEST(PlanCacheTest, HitsOnIdenticalInputs) {
  PlanCache cache;
  const ArrayMeta meta = MetaOf("a");
  auto p1 = cache.Get(meta, 2, 1024);
  auto p2 = cache.Get(meta, 2, 1024);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(PlanCacheTest, DistinguishesEveryInput) {
  PlanCache cache;
  const ArrayMeta meta = MetaOf("a");
  auto base = cache.Get(meta, 2, 1024);
  // Different server count.
  EXPECT_NE(base.get(), cache.Get(meta, 3, 1024).get());
  // Different sub-chunk size.
  EXPECT_NE(base.get(), cache.Get(meta, 2, 2048).get());
  // Different array name (same geometry) — still a different key: the
  // name is part of the meta and thus of file naming.
  EXPECT_NE(base.get(), cache.Get(MetaOf("b"), 2, 1024).get());
  // Subarray clip.
  const Region clip({0, 0}, {4, 16});
  EXPECT_NE(base.get(), cache.Get(meta, 2, 1024, &clip).get());
  EXPECT_EQ(cache.hits(), 0);
}

TEST(PlanCacheTest, SubarrayRegionsKeyedExactly) {
  PlanCache cache;
  const ArrayMeta meta = MetaOf("a");
  const Region r1({0, 0}, {4, 16});
  const Region r2({0, 0}, {5, 16});
  auto p1 = cache.Get(meta, 2, 1024, &r1);
  auto p2 = cache.Get(meta, 2, 1024, &r2);
  auto p1_again = cache.Get(meta, 2, 1024, &r1);
  EXPECT_NE(p1.get(), p2.get());
  EXPECT_EQ(p1.get(), p1_again.get());
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(/*capacity=*/2);
  const ArrayMeta a = MetaOf("a");
  const ArrayMeta b = MetaOf("b");
  const ArrayMeta c = MetaOf("c");
  auto pa = cache.Get(a, 2, 1024);
  auto pb = cache.Get(b, 2, 1024);
  (void)cache.Get(a, 2, 1024);  // a is now most recent
  auto pc = cache.Get(c, 2, 1024);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(a, 2, 1024).get(), pa.get());  // hit
  EXPECT_NE(cache.Get(b, 2, 1024).get(), pb.get());  // rebuilt
}

TEST(PlanCacheTest, EvictedPlansRemainValid) {
  PlanCache cache(1);
  const ArrayMeta a = MetaOf("a");
  auto pa = cache.Get(a, 2, 1024);
  (void)cache.Get(MetaOf("b"), 2, 1024);  // evicts a's entry
  // The shared_ptr keeps the old plan alive and intact.
  EXPECT_EQ(pa->chunks().size(), 4u);
  EXPECT_EQ(pa->TotalPieces(), 4);
}

TEST(PlanCacheTest, CachedPlanMatchesFreshPlan) {
  PlanCache cache;
  const ArrayMeta meta = MetaOf("a", {24, 18});
  auto cached = cache.Get(meta, 3, 512);
  const IoPlan fresh(meta, 3, 512);
  ASSERT_EQ(cached->chunks().size(), fresh.chunks().size());
  for (size_t i = 0; i < fresh.chunks().size(); ++i) {
    EXPECT_EQ(cached->chunks()[i].region, fresh.chunks()[i].region);
    EXPECT_EQ(cached->chunks()[i].server, fresh.chunks()[i].server);
    EXPECT_EQ(cached->chunks()[i].file_offset, fresh.chunks()[i].file_offset);
  }
}

}  // namespace
}  // namespace panda
