// Sub-chunk codec tests (src/codec/ + the wire/disk integration):
//
//  1. Registry + property round trips: every codec over random regions
//     (16 seeds x several element sizes x compressible / incompressible
//     / constant contents, including empty and 1-byte inputs).
//  2. Frame layer: wire frames, disk sub-chunk frames, stored-raw
//     fallback, self-describing probe, and loud failure on torn or
//     corrupted frames.
//  3. End-to-end collectives: round trips under every codec, the
//     codec=none bit-identity guarantee, byte savings on compressible
//     data, frame-directory verification (panda_fsck --verify_frames),
//     checkpoint/restart and timesteps on encoded files.
//  4. Fault soak: a forged frame-directory record heals via the probe
//     (counted), a corrupted frame surfaces as a structured abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::GlobalOffsetOf;
using test::RunCluster;
using test::VerifyPattern;

// ---------------------------------------------------------------------
// Registry

TEST(CodecRegistry, NamesRoundTrip) {
  for (const CodecId id : AllCodecIds()) {
    EXPECT_TRUE(IsValidCodecId(static_cast<std::uint8_t>(id)));
    CodecId parsed = CodecId::kNone;
    ASSERT_TRUE(CodecFromName(CodecName(id), parsed)) << CodecName(id);
    EXPECT_EQ(parsed, id);
    EXPECT_EQ(GetCodec(id).id(), id);
    EXPECT_STREQ(GetCodec(id).name(), CodecName(id));
  }
  CodecId id = CodecId::kRle;
  EXPECT_FALSE(CodecFromName("no-such-codec", id));
  EXPECT_EQ(id, CodecId::kRle);  // left alone on failure
  EXPECT_FALSE(IsValidCodecId(kNumCodecIds));
}

// ---------------------------------------------------------------------
// Property: encode/decode round trips

// Deterministic content generators.
std::vector<std::byte> RandomBytes(std::mt19937_64& rng, size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

std::vector<std::byte> SmoothBytes(std::mt19937_64& rng, size_t n,
                                   std::int64_t elem) {
  // Slowly-varying little-endian integers: the shuffle+rle sweet spot.
  std::vector<std::byte> out(n);
  std::uint64_t v = rng();
  for (size_t i = 0; i < n; ++i) {
    if (elem > 0 && i % static_cast<size_t>(elem) == 0) v += 3;
    out[i] = static_cast<std::byte>(
        (v >> (8 * (i % static_cast<size_t>(std::max<std::int64_t>(
                            elem, 1))))) &
        0xFF);
  }
  return out;
}

TEST(CodecProperty, RoundTripRandomRegions) {
  std::mt19937_64 rng(0xC0DEC5EEDULL);
  const std::int64_t elem_sizes[] = {1, 2, 4, 8};
  for (const CodecId id : AllCodecIds()) {
    const Codec& codec = GetCodec(id);
    for (int seed = 0; seed < 16; ++seed) {
      for (const std::int64_t elem : elem_sizes) {
        // Edge sizes plus a random one; odd lengths exercise the
        // shorter-than-one-element tails.
        const size_t sizes[] = {0, 1, static_cast<size_t>(elem),
                                static_cast<size_t>(elem) * 7 + 1,
                                1 + rng() % 8192};
        for (const size_t n : sizes) {
          for (int style = 0; style < 3; ++style) {
            std::vector<std::byte> raw =
                style == 0   ? RandomBytes(rng, n)
                : style == 1 ? SmoothBytes(rng, n, elem)
                             : std::vector<std::byte>(n, std::byte{0x5A});
            std::vector<std::byte> enc;
            codec.Encode(raw, elem, enc);
            std::vector<std::byte> dec(raw.size());
            codec.Decode(enc, elem, dec);
            ASSERT_EQ(dec, raw)
                << CodecName(id) << " elem=" << elem << " n=" << n
                << " style=" << style << " seed=" << seed;
          }
        }
      }
    }
  }
}

TEST(CodecProperty, ShuffleRleShrinksSmoothData) {
  std::mt19937_64 rng(7);
  const std::vector<std::byte> raw = SmoothBytes(rng, 64 * 1024, 8);
  const std::int64_t enc = EncodedSize(CodecId::kShuffleRle, raw, 8);
  EXPECT_LT(enc, static_cast<std::int64_t>(raw.size()) / 2);
}

// ---------------------------------------------------------------------
// Frames

TEST(CodecFrame, WireFrameRoundTripsEveryCodec) {
  std::mt19937_64 rng(11);
  for (const CodecId id : AllCodecIds()) {
    for (const bool compressible : {true, false}) {
      const std::vector<std::byte> raw = compressible
                                             ? SmoothBytes(rng, 4096, 4)
                                             : RandomBytes(rng, 4096);
      CodecId used = CodecId::kNone;
      const std::vector<std::byte> framed = EncodeWireFrame(id, raw, 4, &used);
      // The header is always present; incompressible payloads fall back
      // to the stored representation.
      ASSERT_GE(static_cast<std::int64_t>(framed.size()), kFrameHeaderBytes);
      CodecId decoded_with = CodecId::kRle;
      const std::vector<std::byte> back =
          DecodeWireFrame(framed, static_cast<std::int64_t>(raw.size()), 4,
                          &decoded_with);
      EXPECT_EQ(back, raw) << CodecName(id);
      EXPECT_EQ(decoded_with, used);
    }
  }
}

TEST(CodecFrame, WireFrameFailsLoudOnCorruption) {
  std::mt19937_64 rng(13);
  const std::vector<std::byte> raw = SmoothBytes(rng, 2048, 4);
  std::vector<std::byte> framed =
      EncodeWireFrame(CodecId::kShuffleRle, raw, 4, nullptr);

  // Truncated frame.
  const std::vector<std::byte> torn(framed.begin(),
                                    framed.begin() + framed.size() / 2);
  EXPECT_THROW(DecodeWireFrame(torn, 2048, 4), PandaError);
  // Wrong expected length (plans diverged).
  EXPECT_THROW(DecodeWireFrame(framed, 2047, 4), PandaError);
  // Header bit flip: the header CRC catches it.
  framed[1] ^= std::byte{0x01};
  EXPECT_THROW(DecodeWireFrame(framed, 2048, 4), PandaError);
}

TEST(CodecFrame, SubchunkFrameFitsSlotOrStoresRaw) {
  std::mt19937_64 rng(17);
  const std::vector<std::byte> smooth = SmoothBytes(rng, 4096, 8);
  const SubchunkFrame enc = EncodeSubchunkFrame(CodecId::kShuffleRle, smooth, 8);
  ASSERT_NE(enc.codec, CodecId::kNone);
  ASSERT_LE(enc.frame_bytes(4096), 4096);  // must fit the plan slot
  EXPECT_EQ(DecodeSubchunkFrame(enc.bytes, enc.codec, 4096, 8), smooth);
  // The probe finds the self-describing header on its own.
  CodecId used = CodecId::kNone;
  EXPECT_EQ(ProbeDecodeSubchunk(enc.bytes, 4096, 8, &used), smooth);
  EXPECT_EQ(used, enc.codec);

  // Incompressible: stored raw, no header — exactly the codec=none bytes.
  const std::vector<std::byte> noise = RandomBytes(rng, 4096);
  const SubchunkFrame stored = EncodeSubchunkFrame(CodecId::kShuffleRle, noise, 8);
  EXPECT_EQ(stored.codec, CodecId::kNone);
  EXPECT_TRUE(stored.bytes.empty());
  EXPECT_EQ(stored.frame_bytes(4096), 4096);
  used = CodecId::kRle;
  EXPECT_EQ(ProbeDecodeSubchunk(noise, 4096, 8, &used), noise);
  EXPECT_EQ(used, CodecId::kNone);
}

TEST(CodecFrame, ProbeRejectsSlotThatIsNeitherFrameNorRaw) {
  // Shorter than the raw size and not a valid frame: unrecoverable.
  std::vector<std::byte> garbage(100, std::byte{0x42});
  EXPECT_THROW(ProbeDecodeSubchunk(garbage, 4096, 8), PandaError);
}

// ---------------------------------------------------------------------
// End-to-end collectives

Machine SimMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

// Compressible analog of FillPattern: element value = its global
// offset (little-endian), a smooth ramp keyed by coordinates so any
// schema round trip stays byte-verifiable.
void FillRamp(Array& array) {
  const Region& cell = array.local_region();
  if (cell.empty()) return;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::uint64_t v =
        static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g));
    std::memcpy(data.data() + n * elem, &v, std::min(elem, sizeof(v)));
    if (elem > sizeof(v)) {
      std::memset(data.data() + n * elem + sizeof(v), 0, elem - sizeof(v));
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
}

std::int64_t VerifyRamp(const Array& array) {
  const Region& cell = array.local_region();
  if (cell.empty()) return 0;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  std::int64_t mismatches = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::uint64_t v =
        static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g));
    if (std::memcmp(data.data() + n * elem, &v, std::min(elem, sizeof(v))) !=
        0) {
      ++mismatches;
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
  EXPECT_EQ(mismatches, 0) << array.name();
  return mismatches;
}

Array MakeArray(CodecId codec) {
  ArrayLayout memory("m", {2, 2});
  ArrayLayout disk("d", {2});
  Array a("field", {16, 16}, 8, memory, {BLOCK, BLOCK}, disk, {BLOCK, NONE});
  a.set_codec(codec);
  return a;
}

TEST(CodecEndToEnd, RoundTripEveryCodecCompressibleAndNot) {
  for (const CodecId codec : AllCodecIds()) {
    for (const bool compressible : {true, false}) {
      Machine machine = SimMachine(4, 2);
      RunCluster(machine, [&](PandaClient& client, int idx) {
        Array a = MakeArray(codec);
        a.BindClient(idx);
        if (compressible) {
          FillRamp(a);
        } else {
          FillPattern(a, 42);  // splitmix noise: stored-raw everywhere
        }
        client.WriteArray(a);
        std::fill(a.local_data().begin(), a.local_data().end(),
                  std::byte{0});
        client.ReadArray(a);
        if (compressible) {
          EXPECT_EQ(VerifyRamp(a), 0) << CodecName(codec);
        } else {
          EXPECT_EQ(VerifyPattern(a, 42), 0) << CodecName(codec);
        }
      });
      EXPECT_TRUE(machine.robustness().Snapshot().AllZero())
          << CodecName(codec);
    }
  }
}

struct RunOutcome {
  std::vector<double> client_clock_s;
  std::vector<double> server_clock_s;
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t disk_bytes_written = 0;
  std::vector<std::vector<std::byte>> file_bytes;
};

RunOutcome RunWithCodec(CodecId codec, bool explicit_none) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a = MakeArray(codec);
    if (!explicit_none && codec == CodecId::kNone) {
      // Leave the default untouched: this run must be bit-identical to
      // one that set codec=none explicitly.
      a = Array("field", {16, 16}, 8, ArrayLayout("m", {2, 2}),
                {BLOCK, BLOCK}, ArrayLayout("d", {2}), {BLOCK, NONE});
    }
    a.BindClient(idx);
    FillRamp(a);
    client.WriteArray(a);
    client.ReadArray(a);
    VerifyRamp(a);
  });
  RunOutcome out;
  const MachineReport report = Snapshot(machine);
  out.client_clock_s = report.client_clock_s;
  out.server_clock_s = report.server_clock_s;
  out.messages_sent = report.messages.messages_sent;
  out.bytes_sent = report.messages.bytes_sent;
  for (int s = 0; s < 2; ++s) {
    out.disk_bytes_written += machine.server_fs(s).stats().bytes_written;
    const std::string name = DataFileName("", "field", Purpose::kGeneral, s);
    FileSystem& fs = machine.server_fs(s);
    std::vector<std::byte> bytes;
    if (fs.Exists(name)) {
      auto f = fs.Open(name, OpenMode::kRead);
      bytes.resize(static_cast<size_t>(f->Size()));
      f->ReadAt(0, bytes, static_cast<std::int64_t>(bytes.size()));
    }
    out.file_bytes.push_back(std::move(bytes));
  }
  return out;
}

TEST(CodecEndToEnd, ExplicitNoneIsBitIdenticalToDefault) {
  // codec=none must be inert: same virtual clocks, same message and
  // byte counts, same on-disk bytes as an array that never heard of
  // codecs. (The pre-PR goldens in reproduction_test pin the default
  // path itself.)
  const RunOutcome def = RunWithCodec(CodecId::kNone, /*explicit_none=*/false);
  const RunOutcome none = RunWithCodec(CodecId::kNone, /*explicit_none=*/true);
  EXPECT_EQ(none.client_clock_s, def.client_clock_s);
  EXPECT_EQ(none.server_clock_s, def.server_clock_s);
  EXPECT_EQ(none.messages_sent, def.messages_sent);
  EXPECT_EQ(none.bytes_sent, def.bytes_sent);
  EXPECT_EQ(none.disk_bytes_written, def.disk_bytes_written);
  EXPECT_EQ(none.file_bytes, def.file_bytes);
}

TEST(CodecEndToEnd, CompressibleDataShrinksWireAndDisk) {
  const RunOutcome none = RunWithCodec(CodecId::kNone, true);
  const RunOutcome rle = RunWithCodec(CodecId::kShuffleRle, true);
  // The ramp compresses well: both planes must move fewer bytes.
  EXPECT_LT(rle.bytes_sent, none.bytes_sent);
  EXPECT_LT(rle.disk_bytes_written, none.disk_bytes_written);
  EXPECT_EQ(rle.messages_sent, none.messages_sent);  // same protocol shape
}

TEST(CodecEndToEnd, TimingOnlyRunsIgnoreCodecs) {
  // Timing-only mode elides payloads; framing must be completely inert
  // so virtual clocks stay bit-identical with and without a codec.
  auto run = [](CodecId codec) {
    Sp2Params params = Sp2Params::Functional();
    params.subchunk_bytes = 1024;
    Machine machine = Machine::Simulated(4, 2, params, /*store_data=*/false,
                                         /*timing_only=*/true);
    RunCluster(machine, [&](PandaClient& client, int idx) {
      Array a = MakeArray(codec);
      a.BindClient(idx);
      client.WriteArray(a);
      client.ReadArray(a);
    });
    const MachineReport report = Snapshot(machine);
    return std::make_pair(report.client_clock_s, report.server_clock_s);
  };
  EXPECT_EQ(run(CodecId::kShuffleRle), run(CodecId::kNone));
}

TEST(CodecEndToEnd, FrameDirectoryVerifies) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a = MakeArray(CodecId::kShuffleRle);
    a.BindClient(idx);
    FillRamp(a);
    client.WriteArray(a);
  });

  ArrayMeta meta = MakeArray(CodecId::kShuffleRle).meta();
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1)};
  std::string log;
  const FrameReport report = VerifyArrayFrames(
      fs, meta, 1024, Purpose::kGeneral, 1, "", &log);
  EXPECT_TRUE(report.Clean()) << log;
  EXPECT_EQ(report.files_checked, 2);
  EXPECT_GT(report.subchunks_checked, 0);
  EXPECT_GT(report.frames_encoded, 0);  // the ramp actually compressed
  EXPECT_EQ(report.torn_records, 0);
  EXPECT_EQ(report.decode_failures, 0);
}

TEST(CodecEndToEnd, CheckpointRestartOnEncodedArrays) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a = MakeArray(CodecId::kShuffleRle);
    a.BindClient(idx);
    ArrayGroup group("ckpt", "ckpt.schema");
    group.Include(&a);

    FillRamp(a);
    group.Checkpoint(client);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0xFF});
    group.Restart(client);
    EXPECT_EQ(VerifyRamp(a), 0);
  });
  EXPECT_TRUE(machine.robustness().Snapshot().AllZero());
}

TEST(CodecEndToEnd, TimestepsAppendEncodedAndReadBack) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a = MakeArray(CodecId::kDelta);
    a.BindClient(idx);
    ArrayGroup group("sim", "sim.schema");
    group.Include(&a);
    for (int t = 0; t < 2; ++t) {
      FillPattern(a, 100 + static_cast<std::uint64_t>(t));
      group.Timestep(client);
    }
    for (int t = 0; t < 2; ++t) {
      std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
      group.ReadTimestep(client, t);
      VerifyPattern(a, 100 + static_cast<std::uint64_t>(t));
    }
  });
  EXPECT_TRUE(machine.robustness().Snapshot().AllZero());
}

// ---------------------------------------------------------------------
// Fault soak: torn/forged directories and corrupted frames

// First frame-directory record of server 0's data file, plus handles.
struct FirstRecord {
  std::string data_name;
  std::string dir_name;
  FrameDirRecord rec;
};

FirstRecord ReadFirstRecord(Machine& machine) {
  FirstRecord out;
  out.data_name = DataFileName("", "field", Purpose::kGeneral, 0);
  out.dir_name = FrameDirFileName(out.data_name);
  auto dir = machine.server_fs(0).Open(out.dir_name, OpenMode::kRead);
  auto rec = ReadFrameDirRecord(*dir, 0);
  EXPECT_TRUE(rec.has_value());
  out.rec = *rec;
  return out;
}

void WriteEncoded(Machine& machine) {
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a = MakeArray(CodecId::kShuffleRle);
    a.BindClient(idx);
    FillRamp(a);
    client.WriteArray(a);
  });
}

void ReadBackAndVerify(Machine& machine) {
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a = MakeArray(CodecId::kShuffleRle);
    a.BindClient(idx);
    client.ReadArray(a);
    EXPECT_EQ(VerifyRamp(a), 0);
  });
}

TEST(CodecFault, TornFrameDirectoryHealsByProbe) {
  Machine machine = SimMachine(4, 2);
  WriteEncoded(machine);

  // Flip a byte inside record 0: its CRC fails, the reader treats it as
  // torn and probes the slot's self-describing header instead.
  const FirstRecord fr = ReadFirstRecord(machine);
  {
    auto dir = machine.server_fs(0).Open(fr.dir_name, OpenMode::kReadWrite);
    std::vector<std::byte> b(1);
    dir->ReadAt(4, b, 1);
    b[0] ^= std::byte{0x10};
    dir->WriteAt(4, b, 1);
  }
  ReadBackAndVerify(machine);
  // A torn record probing successfully is silent, like the journal's
  // torn-tail tolerance: no decode failures, no abort.
  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_EQ(counters.frame_decode_failures, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
}

TEST(CodecFault, ForgedDirectoryRecordHealsByReRead) {
  Machine machine = SimMachine(4, 2);
  WriteEncoded(machine);

  // Forge record 0: valid CRC, plan-consistent offset/raw, but a bogus
  // representation. The directory-directed decode fails; the probe
  // re-read finds the real header and heals, and the heal is counted.
  FirstRecord fr = ReadFirstRecord(machine);
  ASSERT_NE(fr.rec.codec, CodecId::kNone);  // the ramp compressed
  {
    auto dir = machine.server_fs(0).Open(fr.dir_name, OpenMode::kReadWrite);
    FrameDirRecord forged = fr.rec;
    forged.frame_bytes = std::max<std::int64_t>(1, fr.rec.frame_bytes / 2);
    WriteFrameDirRecord(*dir, 0, forged);
  }
  ReadBackAndVerify(machine);
  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GE(counters.frame_rereads, 1);
  EXPECT_EQ(counters.frame_decode_failures, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
}

TEST(CodecFault, CorruptedFrameAbortsTheCollective) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ServerOptions options;
  options.disk_checksums = true;  // sidecars armed: corruption is fatal
  options.robustness = &machine.robustness();

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a = MakeArray(CodecId::kShuffleRle);
        a.BindClient(idx);
        FillRamp(a);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });

  // Scribble over the first frame's header AND its directory record:
  // the directory says "torn", the probe finds garbage, the sidecar
  // CRC (over decoded bytes) cannot match — the collective must abort
  // rather than hand the application scrambled data.
  const FirstRecord fr = ReadFirstRecord(machine);
  {
    auto data = machine.server_fs(0).Open(fr.data_name, OpenMode::kReadWrite);
    std::vector<std::byte> junk(static_cast<size_t>(kFrameHeaderBytes),
                                std::byte{0x69});
    data->WriteAt(fr.rec.file_offset, junk,
                  static_cast<std::int64_t>(junk.size()));
    auto dir = machine.server_fs(0).Open(fr.dir_name, OpenMode::kReadWrite);
    std::vector<std::byte> b(1);
    dir->ReadAt(4, b, 1);
    b[0] ^= std::byte{0x10};
    dir->WriteAt(4, b, 1);
  }

  EXPECT_THROW(
      machine.Run(
          [&](Endpoint& ep, int idx) {
            PandaClient client(ep, world, params);
            client.set_robustness(&machine.robustness());
            Array a = MakeArray(CodecId::kShuffleRle);
            a.BindClient(idx);
            client.ReadArray(a);
            if (idx == 0) client.Shutdown();
          },
          [&](Endpoint& ep, int sidx) {
            ServerMain(ep, machine.server_fs(sidx), world, params, options);
          }),
      PandaAbortError);
  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GE(counters.collectives_aborted, 1);

  // Offline, --verify_frames sees the same corruption.
  ArrayMeta meta = MakeArray(CodecId::kShuffleRle).meta();
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1)};
  std::string log;
  const FrameReport report = VerifyArrayFrames(
      fs, meta, 1024, Purpose::kGeneral, 1, "", &log);
  EXPECT_FALSE(report.Clean()) << log;
  EXPECT_FALSE(log.empty());
}

// ---------------------------------------------------------------------
// Failover on an encoded array

// Mirrors FailoverTest.KilledServerMidWriteFailsOverAndReadsBackExact
// with the array negotiated to shuffle+rle: the survivors must adopt
// the dead server's chunks *encoded* (frames plus directory records at
// the degraded offsets), the degraded read must decode them back
// bit-exactly, and the offline frame sweep must verify under the
// recorded dead-server set.
TEST(CodecFailover, KilledServerMidWriteFailsOverOnEncodedArray) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;  // enough sends that the kill lands mid-write
  Machine machine = Machine::Simulated(4, 3, params, /*store_data=*/true,
                                       /*timing_only=*/false);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  // Server 1 crash-stops at its 4th send: mid-gather of its first chunk.
  machine.KillServerAfterSends(/*server_index=*/1, /*after_more_sends=*/3);

  const World world{4, 3};
  ServerOptions options;
  options.failover = true;
  options.disk_checksums = true;
  options.journal = true;
  options.robustness = &machine.robustness();

  ArrayLayout memory("m", {2, 2});
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        client.set_robustness(&machine.robustness());
        client.set_failover(true);
        Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                {BLOCK, BLOCK});
        a.set_codec(CodecId::kShuffleRle);
        a.BindClient(idx);
        FillRamp(a);
        client.WriteArray(a);
        // The dead set is now {1}: the degraded read reassembles the
        // array from the survivors, decoding adopted frames included.
        std::fill(a.local_data().begin(), a.local_data().end(),
                  std::byte{0});
        client.ReadArray(a);
        EXPECT_EQ(VerifyRamp(a), 0);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });

  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GE(counters.failovers_completed, 1);
  EXPECT_GT(counters.chunks_adopted, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
  EXPECT_EQ(counters.frame_decode_failures, 0);
  EXPECT_EQ(machine.fault_stats().Snapshot().ranks_killed, 1);

  // Offline: the survivors' frame directories (adopted slots included)
  // verify under the degraded layout, and the sidecars — CRCs over the
  // *decoded* bytes — agree with what the frames decode to.
  ArrayMeta meta;
  meta.name = "field";
  meta.elem_size = 8;
  meta.memory = Schema({32, 32}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  meta.codec = CodecId::kShuffleRle;
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1),
                      &machine.server_fs(2)};
  std::string log;
  const FrameReport frames =
      VerifyArrayFrames(fs, meta, 256, Purpose::kGeneral, 1, "", &log,
                        /*dead_servers=*/{1});
  EXPECT_TRUE(frames.Clean()) << log;
  EXPECT_GT(frames.subchunks_checked, 0);
  EXPECT_GT(frames.frames_encoded, 0);
  log.clear();
  const IntegrityReport crcs =
      VerifyArrayChecksums(fs, meta, 256, Purpose::kGeneral, 1, "", &log,
                           /*dead_servers=*/{1});
  EXPECT_TRUE(crcs.Clean()) << log;
  EXPECT_GT(crcs.subchunks_checked, 0);
}

// ---------------------------------------------------------------------
// Schema metadata round trip

TEST(CodecSchema, GroupMetadataRoundTripsCodec) {
  Machine machine = SimMachine(2, 1);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2});
    Array a("u", {32}, 4, memory, {BLOCK}, memory, {BLOCK});
    a.set_codec(CodecId::kShuffleRle);
    a.BindClient(idx);
    ArrayGroup group("g", "g.schema");
    group.Include(&a);
    FillRamp(a);
    group.Timestep(client);
  });
  const GroupMeta meta = ReadGroupMeta(machine.server_fs(0), "g.schema");
  ASSERT_EQ(meta.arrays.size(), 1u);
  EXPECT_EQ(meta.arrays[0].codec, CodecId::kShuffleRle);
}

}  // namespace
}  // namespace panda
