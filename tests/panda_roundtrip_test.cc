// End-to-end functional tests: full Panda collectives over the thread
// transport with real data movement, verified byte-exactly — including
// a parameterized sweep over schema pairs (the paper's rearrangement
// facility) and on-disk layout checks (traditional-order concatenation).
#include <gtest/gtest.h>

#include <filesystem>

#include "test_harness.h"

namespace panda {
namespace {

using test::ExpectedSegment;
using test::FillPattern;
using test::RunCluster;
using test::VerifyPattern;

Machine SimMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 2048;  // small sub-chunks: exercise splitting
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

// --- basic write/read round trip, natural chunking ---

TEST(RoundTripTest, NaturalChunkingWriteRead) {
  Machine machine = SimMachine(8, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2, 2});
    Array a("temp", {16, 12, 10}, sizeof(double), memory,
            {BLOCK, BLOCK, BLOCK}, memory, {BLOCK, BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 42);
    client.WriteArray(a);
    // Clobber, then read back.
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0xAA});
    client.ReadArray(a);
    VerifyPattern(a, 42);
  });
}

TEST(RoundTripTest, ReorganizationWriteRead) {
  // BLOCK,BLOCK,BLOCK memory -> BLOCK,*,* disk (traditional order).
  Machine machine = SimMachine(8, 3);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2, 2});
    ArrayLayout disk("d", {3});
    Array a("rho", {12, 8, 6}, sizeof(float), memory, {BLOCK, BLOCK, BLOCK},
            disk, {BLOCK, NONE, NONE});
    a.BindClient(idx);
    FillPattern(a, 7);
    client.WriteArray(a);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    client.ReadArray(a);
    VerifyPattern(a, 7);
  });
}

// --- parameterized sweep over schema pairs ---

struct SchemaCase {
  const char* name;
  Shape shape;
  std::int64_t elem;
  Shape mem_mesh;
  std::vector<DimDist> mem_dists;
  Shape disk_mesh;
  std::vector<DimDist> disk_dists;
  int servers;
};

class SchemaSweepTest : public ::testing::TestWithParam<SchemaCase> {};

TEST_P(SchemaSweepTest, WriteReadRoundTrip) {
  const SchemaCase& sc = GetParam();
  const int clients = static_cast<int>(Mesh(sc.mem_mesh).size());
  Machine machine = SimMachine(clients, sc.servers);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a("x", sc.elem,
            Schema(sc.shape, Mesh(sc.mem_mesh), sc.mem_dists),
            Schema(sc.shape, Mesh(sc.disk_mesh), sc.disk_dists));
    a.BindClient(idx);
    FillPattern(a, 1234);
    client.WriteArray(a);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0xCC});
    client.ReadArray(a);
    VerifyPattern(a, 1234);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemas, SchemaSweepTest,
    ::testing::Values(
        // Natural chunking, varying ranks and element sizes.
        SchemaCase{"nat1d", {64}, 4, {4}, {BLOCK}, {4}, {BLOCK}, 2},
        SchemaCase{"nat2d", {16, 24}, 8, {2, 2}, {BLOCK, BLOCK},
                   {2, 2}, {BLOCK, BLOCK}, 3},
        SchemaCase{"nat3d", {8, 12, 16}, 4, {2, 2, 2},
                   {BLOCK, BLOCK, BLOCK}, {2, 2, 2}, {BLOCK, BLOCK, BLOCK}, 2},
        // Traditional order on disk.
        SchemaCase{"trad3d", {12, 10, 8}, 4, {2, 2, 2},
                   {BLOCK, BLOCK, BLOCK}, {4}, {BLOCK, NONE, NONE}, 4},
        SchemaCase{"trad3d_uneven", {10, 6, 4}, 8, {2, 2},
                   {BLOCK, NONE, BLOCK}, {3}, {BLOCK, NONE, NONE}, 2},
        // Disk schema rotates which dimension is distributed.
        SchemaCase{"rotate", {12, 12}, 4, {3}, {BLOCK, NONE},
                   {3}, {NONE, BLOCK}, 3},
        // Radically different decompositions (the Figure 2 scenario:
        // 2-D memory mesh, 1-D traditional-order disk layout).
        SchemaCase{"fig2", {16, 16, 4}, 8, {4, 2}, {BLOCK, BLOCK, NONE},
                   {4}, {BLOCK, NONE, NONE}, 4},
        // Uneven divisions with empty cells (2 rows over 4 parts).
        SchemaCase{"empty_cells", {2, 16}, 4, {4}, {BLOCK, NONE},
                   {2}, {BLOCK, NONE}, 2},
        // More servers than disk chunks: some servers idle.
        SchemaCase{"idle_servers", {8, 8}, 4, {2}, {BLOCK, NONE},
                   {2}, {BLOCK, NONE}, 4},
        // CYCLIC disk schema (extension).
        SchemaCase{"cyclic_disk", {48}, 4, {4}, {BLOCK}, {2},
                   {DimDist::Cyclic(8)}, 3},
        SchemaCase{"cyclic2d", {24, 8}, 4, {2, 2}, {BLOCK, BLOCK},
                   {2}, {DimDist::Cyclic(4), NONE}, 2}),
    [](const ::testing::TestParamInfo<SchemaCase>& info) {
      return info.param.name;
    });

// --- on-disk layout: traditional order concatenates ---

TEST(DiskLayoutTest, TraditionalOrderConcatenatesToRowMajor) {
  // BLOCK,*,* over 4 servers: concatenating the per-server files must
  // give the full array in row-major order (the paper's migration path).
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("panda_layout_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  Machine machine = Machine::WithPosixFs(8, 4, params, root);

  const Shape shape{8, 8, 8};
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2, 2});
    ArrayLayout disk("d", {4});
    Array a("vol", shape, 4, memory, {BLOCK, BLOCK, BLOCK}, disk,
            {BLOCK, NONE, NONE});
    a.BindClient(idx);
    FillPattern(a, 99);
    client.WriteArray(a);
  });

  // Concatenate the per-server files and verify global row-major order.
  std::vector<std::byte> image;
  for (int s = 0; s < 4; ++s) {
    auto file = machine.server_fs(s).Open("vol.dat." + std::to_string(s),
                                          OpenMode::kRead);
    const std::int64_t size = file->Size();
    std::vector<std::byte> part(static_cast<size_t>(size));
    file->ReadAt(0, {part.data(), part.size()}, size);
    image.insert(image.end(), part.begin(), part.end());
  }
  ASSERT_EQ(image.size(), static_cast<size_t>(shape.Volume()) * 4);
  for (std::int64_t i = 0; i < shape.Volume(); ++i) {
    const std::uint64_t v = test::PatternValue(99, static_cast<std::uint64_t>(i));
    EXPECT_EQ(std::memcmp(image.data() + i * 4, &v, 4), 0) << "elem " << i;
  }
  std::filesystem::remove_all(root);
}

TEST(DiskLayoutTest, NaturalChunkingSegmentsMatchPlan) {
  // Each server's file must equal the plan-predicted concatenation of
  // its round-robin chunks.
  Machine machine = SimMachine(4, 3);
  ArrayLayout memory("m", {2, 2});
  const Shape shape{12, 10};
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a("grid", shape, 4, memory, {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 5);
    client.WriteArray(a);
  });
  ArrayMeta meta;
  meta.name = "grid";
  meta.elem_size = 4;
  meta.memory = Schema(shape, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  for (int s = 0; s < 3; ++s) {
    const auto expected =
        ExpectedSegment(meta, 3, s, machine.params().subchunk_bytes, 5);
    auto file = machine.server_fs(s).Open("grid.dat." + std::to_string(s),
                                          OpenMode::kRead);
    ASSERT_EQ(file->Size(), static_cast<std::int64_t>(expected.size()));
    std::vector<std::byte> got(expected.size());
    file->ReadAt(0, {got.data(), got.size()},
                 static_cast<std::int64_t>(got.size()));
    EXPECT_EQ(got, expected) << "server " << s;
  }
}

// --- multiple arrays in one collective ---

TEST(MultiArrayTest, GroupWriteReadRoundTrip) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    ArrayLayout disk("d", {2});
    Array t("temperature", {8, 8}, 4, memory, {BLOCK, BLOCK}, disk,
            {BLOCK, NONE});
    Array p("pressure", {12, 6}, 8, memory, {BLOCK, BLOCK}, disk,
            {BLOCK, NONE});
    Array rho("density", {6, 10}, 4, memory, {BLOCK, BLOCK}, memory,
              {BLOCK, BLOCK});
    t.BindClient(idx);
    p.BindClient(idx);
    rho.BindClient(idx);
    FillPattern(t, 1);
    FillPattern(p, 2);
    FillPattern(rho, 3);

    ArrayGroup group("Sim2");
    group.Include(&t);
    group.Include(&p);
    group.Include(&rho);
    group.Write(client);

    for (Array* a : {&t, &p, &rho}) {
      std::fill(a->local_data().begin(), a->local_data().end(),
                std::byte{0xDD});
    }
    group.Read(client);
    VerifyPattern(t, 1);
    VerifyPattern(p, 2);
    VerifyPattern(rho, 3);
  });
}

// --- non-blocking server options (overlap, request pipelining) ---

class ServerOptionsTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(ServerOptionsTest, RoundTripWithNonBlockingOptions) {
  const auto [overlap, pipeline] = GetParam();
  Machine machine = SimMachine(8, 3);
  ServerOptions options;
  options.overlap_io = overlap;
  options.pipeline_requests = pipeline;
  RunCluster(
      machine,
      [&](PandaClient& client, int idx) {
        ArrayLayout memory("m", {2, 2, 2});
        ArrayLayout disk("d", {3});
        Array a("nb", {12, 10, 8}, 4, memory, {BLOCK, BLOCK, BLOCK}, disk,
                {BLOCK, NONE, NONE});
        a.BindClient(idx);
        FillPattern(a, 64);
        client.WriteArray(a);
        std::fill(a.local_data().begin(), a.local_data().end(),
                  std::byte{0});
        client.ReadArray(a);
        VerifyPattern(a, 64);

        // And a multi-array group through the same options.
        Array b("nb2", 8,
                Schema({16, 6}, Mesh(Shape{4, 2}), {BLOCK, BLOCK}),
                Schema({16, 6}, Mesh(Shape{3}),
                       {BLOCK, DimDist::None()}));
        b.BindClient(idx);
        FillPattern(b, 65);
        ArrayGroup group("nbg");
        group.Include(&a);
        group.Include(&b);
        group.Write(client);
        std::fill(b.local_data().begin(), b.local_data().end(),
                  std::byte{0});
        group.Read(client);
        VerifyPattern(b, 65);
      },
      options);
}

INSTANTIATE_TEST_SUITE_P(
    Options, ServerOptionsTest,
    ::testing::Values(std::tuple(true, false), std::tuple(false, true),
                      std::tuple(true, true)),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      return std::string(std::get<0>(info.param) ? "overlap" : "noovl") +
             "_" + (std::get<1>(info.param) ? "pipe" : "nopipe");
    });

// --- varying node counts (paper's sweep dimensions), small data ---

class NodeCountTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NodeCountTest, RoundTripAcrossNodeCounts) {
  const auto [clients, servers] = GetParam();
  Machine machine = SimMachine(clients, servers);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a("x", 4, Schema({64, 8}, Mesh(Shape{clients}), {BLOCK, NONE}),
            Schema({64, 8}, Mesh(Shape{servers}), {BLOCK, NONE}));
    a.BindClient(idx);
    FillPattern(a, 11);
    client.WriteArray(a);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    client.ReadArray(a);
    VerifyPattern(a, 11);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NodeCountTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1, 2, 3, 8)));

}  // namespace
}  // namespace panda
