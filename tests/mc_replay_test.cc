// Replays the checked-in counter-schedule corpus (tests/schedules/).
//
// Each .mctrace is a minimized decision trace that once witnessed an
// interesting terminal state — a protocol hole the explorer found, a
// degraded-but-safe failover, a fault pattern absorbed below the
// collective layer. Replaying them pins those outcomes: a protocol
// change that shifts any of them fails here with the exact decision
// schedule that exposes it, long before a full exploration would. After
// an *intentional* behavior change, refresh a trace's expect lines with
// `panda_mc --replay=FILE --update`.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/trace.h"

namespace panda::mc {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(PANDA_SCHEDULES_DIR)) {
    if (entry.path().extension() == ".mctrace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(McReplayTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(McReplayTest, EveryScheduleReplaysToItsRecordedOutcome) {
  for (const auto& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const McTrace trace = DecodeMcTrace(ReadFile(path));
    // A corpus entry without expectations pins nothing — reject it.
    EXPECT_FALSE(trace.expect.empty());
    std::string why;
    EXPECT_TRUE(ReplayTrace(trace, &why)) << why;
  }
}

}  // namespace
}  // namespace panda::mc
