// Unit tests for src/mdarray: index/region algebra, strided copies,
// meshes, distributions, schemas and the sub-chunker.
#include <gtest/gtest.h>

#include <numeric>

#include "mdarray/distribution.h"
#include "mdarray/mesh.h"
#include "mdarray/region.h"
#include "mdarray/schema.h"
#include "mdarray/strided_copy.h"
#include "util/units.h"

namespace panda {
namespace {

TEST(IndexTest, BasicsAndVolume) {
  Index idx{2, 3, 4};
  EXPECT_EQ(idx.rank(), 3);
  EXPECT_EQ(idx[0], 2);
  EXPECT_EQ(idx[2], 4);
  EXPECT_EQ(idx.Volume(), 24);
  EXPECT_EQ(idx.ToString(), "(2, 3, 4)");
}

TEST(IndexTest, FilledAndZeros) {
  EXPECT_EQ(Index::Filled(2, 5).Volume(), 25);
  EXPECT_EQ(Index::Zeros(3).Volume(), 0);
}

TEST(IndexTest, Equality) {
  EXPECT_EQ((Index{1, 2}), (Index{1, 2}));
  EXPECT_NE((Index{1, 2}), (Index{2, 1}));
  EXPECT_NE((Index{1, 2}), (Index{1, 2, 3}));
}

TEST(IndexTest, RowMajorIteration) {
  Shape shape{2, 3};
  Index idx = Index::Zeros(2);
  std::vector<std::pair<std::int64_t, std::int64_t>> seen;
  do {
    seen.emplace_back(idx[0], idx[1]);
  } while (NextIndexRowMajor(shape, idx));
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(seen[1], (std::pair<std::int64_t, std::int64_t>{0, 1}));
  EXPECT_EQ(seen.back(), (std::pair<std::int64_t, std::int64_t>{1, 2}));
}

TEST(RegionTest, VolumeAndContains) {
  Region r({1, 2}, {3, 4});
  EXPECT_EQ(r.Volume(), 12);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.Contains(Index{1, 2}));
  EXPECT_TRUE(r.Contains(Index{3, 5}));
  EXPECT_FALSE(r.Contains(Index{4, 2}));
  EXPECT_FALSE(r.Contains(Index{0, 2}));
  EXPECT_EQ(r.hi(), (Index{4, 6}));
}

TEST(RegionTest, EmptyRegion) {
  Region r({0, 0}, {0, 5});
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Volume(), 0);
  EXPECT_FALSE(r.Contains(Index{0, 0}));
}

TEST(RegionTest, ContainsRegion) {
  Region outer({0, 0}, {10, 10});
  EXPECT_TRUE(outer.Contains(Region({2, 3}, {4, 5})));
  EXPECT_FALSE(outer.Contains(Region({8, 8}, {4, 4})));
  EXPECT_TRUE(outer.Contains(Region({0, 0}, {0, 0})));  // empty
}

TEST(RegionTest, Intersect) {
  Region a({0, 0}, {5, 5});
  Region b({3, 3}, {5, 5});
  const Region i = Intersect(a, b);
  EXPECT_EQ(i, Region({3, 3}, {2, 2}));
  const Region disjoint = Intersect(a, Region({6, 6}, {2, 2}));
  EXPECT_TRUE(disjoint.empty());
}

TEST(RegionTest, IntersectIsCommutative) {
  Region a({1, 0, 2}, {4, 6, 3});
  Region b({0, 3, 0}, {3, 9, 4});
  EXPECT_EQ(Intersect(a, b), Intersect(b, a));
}

TEST(RegionTest, LinearOffsetWithin) {
  Region box({2, 3}, {4, 5});
  EXPECT_EQ(LinearOffsetWithin(box, Index{2, 3}), 0);
  EXPECT_EQ(LinearOffsetWithin(box, Index{2, 4}), 1);
  EXPECT_EQ(LinearOffsetWithin(box, Index{3, 3}), 5);
  EXPECT_EQ(LinearOffsetWithin(box, Index{5, 7}), 19);
}

TEST(ContiguityTest, FullRegionIsContiguous) {
  Region outer({0, 0}, {4, 4});
  EXPECT_TRUE(IsContiguousWithin(outer, outer));
}

TEST(ContiguityTest, RowPrefixIsContiguous) {
  Region outer({0, 0}, {4, 8});
  // Whole rows: contiguous.
  EXPECT_TRUE(IsContiguousWithin(outer, Region({1, 0}, {2, 8})));
  // Partial row with extent-1 outer dims: contiguous.
  EXPECT_TRUE(IsContiguousWithin(outer, Region({1, 2}, {1, 4})));
  // Partial columns across multiple rows: strided.
  EXPECT_FALSE(IsContiguousWithin(outer, Region({0, 2}, {2, 4})));
}

TEST(ContiguityTest, Rank3Cases) {
  Region outer({0, 0, 0}, {4, 4, 4});
  EXPECT_TRUE(IsContiguousWithin(outer, Region({2, 0, 0}, {2, 4, 4})));
  EXPECT_TRUE(IsContiguousWithin(outer, Region({2, 1, 0}, {1, 2, 4})));
  EXPECT_FALSE(IsContiguousWithin(outer, Region({2, 1, 0}, {2, 2, 4})));
  EXPECT_FALSE(IsContiguousWithin(outer, Region({0, 0, 1}, {4, 4, 2})));
}

// Fills a buffer over `box` so element at global index i has a unique
// value derived from its coordinates.
std::vector<std::byte> MakePattern(const Region& box) {
  std::vector<std::byte> buf(static_cast<size_t>(box.Volume()) *
                             sizeof(std::int64_t));
  auto* p = reinterpret_cast<std::int64_t*>(buf.data());
  Index idx = box.lo();
  Shape ext = box.extent();
  Index off = Index::Zeros(box.rank());
  std::int64_t n = 0;
  do {
    std::int64_t key = 0;
    for (int d = 0; d < box.rank(); ++d) {
      key = key * 1000 + (box.lo()[d] + off[d]);
    }
    p[n++] = key;
  } while (NextIndexRowMajor(ext, off));
  (void)idx;
  return buf;
}

TEST(StridedCopyTest, CopyRegionMovesExactlyTheRegion) {
  const Region src_box({0, 0}, {6, 8});
  const Region dst_box({2, 3}, {5, 6});
  const Region region({3, 4}, {2, 3});

  auto src = MakePattern(src_box);
  std::vector<std::byte> dst(static_cast<size_t>(dst_box.Volume()) *
                             sizeof(std::int64_t));
  std::fill(dst.begin(), dst.end(), std::byte{0xEE});

  CopyRegion({dst.data(), dst.size()}, dst_box, {src.data(), src.size()},
             src_box, region, sizeof(std::int64_t));

  const auto* d = reinterpret_cast<const std::int64_t*>(dst.data());
  Index off = Index::Zeros(2);
  Shape ext = dst_box.extent();
  do {
    Index g{dst_box.lo()[0] + off[0], dst_box.lo()[1] + off[1]};
    const std::int64_t got = d[LinearOffsetWithin(dst_box, g)];
    if (region.Contains(g)) {
      EXPECT_EQ(got, g[0] * 1000 + g[1]) << g.ToString();
    } else {
      // Outside the region: untouched filler.
      std::int64_t filler;
      std::memset(&filler, 0xEE, sizeof(filler));
      EXPECT_EQ(got, filler) << g.ToString();
    }
  } while (NextIndexRowMajor(ext, off));
}

TEST(StridedCopyTest, PackUnpackRoundTrip3D) {
  const Region box({1, 2, 3}, {4, 5, 6});
  const Region piece({2, 3, 4}, {2, 3, 2});
  auto src = MakePattern(box);

  std::vector<std::byte> packed(static_cast<size_t>(piece.Volume()) *
                                sizeof(std::int64_t));
  PackRegion({packed.data(), packed.size()}, {src.data(), src.size()}, box,
             piece, sizeof(std::int64_t));

  // Packed buffer is row-major over the piece.
  const auto* p = reinterpret_cast<const std::int64_t*>(packed.data());
  Index off = Index::Zeros(3);
  std::int64_t n = 0;
  Shape pext = piece.extent();
  do {
    Index g{piece.lo()[0] + off[0], piece.lo()[1] + off[1],
            piece.lo()[2] + off[2]};
    EXPECT_EQ(p[n++], (g[0] * 1000 + g[1]) * 1000 + g[2]);
  } while (NextIndexRowMajor(pext, off));

  // Unpack into a fresh buffer and compare against the source region.
  std::vector<std::byte> dst(src.size());
  std::fill(dst.begin(), dst.end(), std::byte{0});
  UnpackRegion({dst.data(), dst.size()}, box, {packed.data(), packed.size()},
               piece, sizeof(std::int64_t));
  const auto* s = reinterpret_cast<const std::int64_t*>(src.data());
  const auto* d = reinterpret_cast<const std::int64_t*>(dst.data());
  Index goff = Index::Zeros(3);
  Shape bext = box.extent();
  std::int64_t i = 0;
  do {
    Index g{box.lo()[0] + goff[0], box.lo()[1] + goff[1],
            box.lo()[2] + goff[2]};
    if (piece.Contains(g)) {
      EXPECT_EQ(d[i], s[i]);
    }
    ++i;
  } while (NextIndexRowMajor(bext, goff));
}

TEST(StridedCopyTest, Rank1Copy) {
  const Region src_box({0}, {10});
  const Region dst_box({3}, {7});
  const Region region({4}, {3});
  auto src = MakePattern(src_box);
  std::vector<std::byte> dst(static_cast<size_t>(dst_box.Volume()) *
                             sizeof(std::int64_t));
  CopyRegion({dst.data(), dst.size()}, dst_box, {src.data(), src.size()},
             src_box, region, sizeof(std::int64_t));
  const auto* d = reinterpret_cast<const std::int64_t*>(dst.data());
  EXPECT_EQ(d[1], 4);
  EXPECT_EQ(d[3], 6);
}

TEST(MeshTest, CoordsRoundTrip) {
  Mesh mesh(Shape{4, 2, 2});
  EXPECT_EQ(mesh.size(), 16);
  for (int pos = 0; pos < mesh.size(); ++pos) {
    EXPECT_EQ(mesh.PositionOf(mesh.Coords(pos)), pos);
  }
  EXPECT_EQ(mesh.Coords(0), (Index{0, 0, 0}));
  EXPECT_EQ(mesh.Coords(1), (Index{0, 0, 1}));
  EXPECT_EQ(mesh.Coords(15), (Index{3, 1, 1}));
}

TEST(DistributionTest, BlockIntervalEvenAndUneven) {
  // Even: 512 over 4 -> 128 each.
  for (int p = 0; p < 4; ++p) {
    const Interval iv = BlockInterval(512, p, 4);
    EXPECT_EQ(iv.lo, 128 * p);
    EXPECT_EQ(iv.extent, 128);
  }
  // Uneven: 10 over 4 -> 3,3,3,1 (HPF block = ceil).
  EXPECT_EQ(BlockInterval(10, 0, 4).extent, 3);
  EXPECT_EQ(BlockInterval(10, 2, 4).extent, 3);
  EXPECT_EQ(BlockInterval(10, 3, 4).extent, 1);
  // Degenerate: 2 over 4 -> 1,1,0,0.
  EXPECT_EQ(BlockInterval(2, 1, 4).extent, 1);
  EXPECT_EQ(BlockInterval(2, 2, 4).extent, 0);
  EXPECT_EQ(BlockInterval(2, 3, 4).extent, 0);
}

TEST(DistributionTest, BlockIntervalsPartition) {
  for (const std::int64_t n : {1, 7, 16, 100, 513}) {
    for (const std::int64_t parts : {1, 2, 3, 5, 8}) {
      std::int64_t total = 0;
      std::int64_t expected_lo = 0;
      for (std::int64_t p = 0; p < parts; ++p) {
        const Interval iv = BlockInterval(n, p, parts);
        if (iv.extent > 0) {
          EXPECT_EQ(iv.lo, expected_lo);
          expected_lo = iv.lo + iv.extent;
        }
        total += iv.extent;
      }
      EXPECT_EQ(total, n) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(DistributionTest, CyclicOwnedIntervals) {
  // CYCLIC(2) of extent 10 over 2 parts:
  //   part 0: [0,2) [4,6) [8,10) ; part 1: [2,4) [6,8)
  const auto p0 = OwnedIntervals(DimDist::Cyclic(2), 10, 0, 2);
  ASSERT_EQ(p0.size(), 3u);
  EXPECT_EQ(p0[0], (Interval{0, 2}));
  EXPECT_EQ(p0[2], (Interval{8, 2}));
  const auto p1 = OwnedIntervals(DimDist::Cyclic(2), 10, 1, 2);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_EQ(p1[0], (Interval{2, 2}));
  // Ragged tail: CYCLIC(4) of extent 10 over 2: part 0 gets [0,4),[8,10).
  const auto r0 = OwnedIntervals(DimDist::Cyclic(4), 10, 0, 2);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[1], (Interval{8, 2}));
}

TEST(SchemaTest, NaturalBlock3D) {
  // The paper's canonical case: 512^3 as BLOCK,BLOCK,BLOCK over 4x4x2.
  Schema schema(Shape{512, 512, 512}, Mesh(Shape{4, 4, 2}),
                {DimDist::Block(), DimDist::Block(), DimDist::Block()});
  EXPECT_EQ(schema.chunks().size(), 32u);
  const Region cell0 = schema.CellRegion(0);
  EXPECT_EQ(cell0, Region({0, 0, 0}, {128, 128, 256}));
  const Region cell31 = schema.CellRegion(31);
  EXPECT_EQ(cell31, Region({384, 384, 256}, {128, 128, 256}));
  // Chunks partition the array.
  std::int64_t total = 0;
  for (const auto& c : schema.chunks()) total += c.region.Volume();
  EXPECT_EQ(total, 512LL * 512 * 512);
}

TEST(SchemaTest, TraditionalOrderBlockStarStar) {
  // BLOCK,*,* over an 8-node logical i/o mesh: 8 slabs of 64 planes.
  Schema schema(Shape{512, 512, 512}, Mesh(Shape{8}),
                {DimDist::Block(), DimDist::None(), DimDist::None()});
  ASSERT_EQ(schema.chunks().size(), 8u);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(schema.chunks()[s].region,
              Region({64 * s, 0, 0}, {64, 512, 512}));
    EXPECT_EQ(schema.chunks()[s].owner_pos, s);
  }
}

TEST(SchemaTest, DistributedDimCountMustMatchMeshRank) {
  EXPECT_THROW(Schema(Shape{8, 8}, Mesh(Shape{2, 2}),
                      {DimDist::Block(), DimDist::None()}),
               PandaError);
  EXPECT_THROW(
      Schema(Shape{8}, Mesh(Shape{2, 2}), {DimDist::Block()}), PandaError);
}

TEST(SchemaTest, UnevenDivisionProducesEmptyCells) {
  // 2 rows over 4 parts: positions 2,3 own nothing.
  Schema schema(Shape{2, 8}, Mesh(Shape{4}),
                {DimDist::Block(), DimDist::None()});
  EXPECT_EQ(schema.chunks().size(), 2u);
  EXPECT_TRUE(schema.CellRegion(3).empty());
  EXPECT_FALSE(schema.CellRegion(1).empty());
}

TEST(SchemaTest, CyclicChunksEnumerated) {
  Schema schema(Shape{12}, Mesh(Shape{2}), {DimDist::Cyclic(2)});
  EXPECT_TRUE(schema.has_cyclic());
  // Position 0: [0,2) [4,6) [8,10); position 1: [2,4) [6,8) [10,12).
  EXPECT_EQ(schema.chunks().size(), 6u);
  std::int64_t total = 0;
  for (const auto& c : schema.chunks()) total += c.region.Volume();
  EXPECT_EQ(total, 12);
  EXPECT_EQ(schema.ChunksOf(0).size(), 3u);
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema schema(Shape{100, 200, 300}, Mesh(Shape{2, 3}),
                {DimDist::Block(), DimDist::Cyclic(7), DimDist::None()});
  std::vector<std::byte> buf;
  Encoder enc(buf);
  schema.EncodeTo(enc);
  Decoder dec(buf);
  const Schema back = Schema::Decode(dec);
  EXPECT_EQ(back, schema);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SubchunkTest, SmallChunkIsSingleSubchunk) {
  const Region chunk({0, 0}, {10, 10});
  const auto subs = SplitIntoSubchunks(chunk, 8, 1024);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], chunk);
}

TEST(SubchunkTest, SplitsAlongOuterDimension) {
  // 64 rows x 32 elems x 8B = 16 KB; max 4 KB -> 16 rows per sub-chunk.
  const Region chunk({0, 0}, {64, 32});
  const auto subs = SplitIntoSubchunks(chunk, 8, 4096);
  ASSERT_EQ(subs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(subs[static_cast<size_t>(i)],
              Region({16 * i, 0}, {16, 32}));
  }
}

TEST(SubchunkTest, RecursesWhenRowsTooLarge) {
  // One row = 1024*8 = 8 KB > max 4 KB: split within rows.
  const Region chunk({0, 0}, {4, 1024});
  const auto subs = SplitIntoSubchunks(chunk, 8, 4096);
  ASSERT_EQ(subs.size(), 8u);
  EXPECT_EQ(subs[0], Region({0, 0}, {1, 512}));
  EXPECT_EQ(subs[1], Region({0, 512}, {1, 512}));
  EXPECT_EQ(subs[7], Region({3, 512}, {1, 512}));
}

TEST(SubchunkTest, PartitionIsExactAndContiguous) {
  // Property: sub-chunks partition the chunk, appear in row-major order,
  // and each is a contiguous range of the chunk's linearization.
  const Region chunk({3, 5, 7}, {9, 11, 13});
  for (const std::int64_t max_bytes : {64, 256, 1000, 4096, 1 << 20}) {
    const auto subs = SplitIntoSubchunks(chunk, 4, max_bytes);
    std::int64_t covered = 0;
    std::int64_t expected_offset = 0;
    for (const Region& sub : subs) {
      EXPECT_TRUE(chunk.Contains(sub));
      EXPECT_TRUE(IsContiguousWithin(chunk, sub));
      EXPECT_LE(sub.Volume() * 4, max_bytes);
      // Contiguous ranges in order: each starts where the previous ended.
      EXPECT_EQ(LinearOffsetWithin(chunk, sub.lo()), expected_offset);
      expected_offset += sub.Volume();
      covered += sub.Volume();
    }
    EXPECT_EQ(covered, chunk.Volume()) << "max_bytes=" << max_bytes;
  }
}

TEST(SubchunkTest, PaperConfiguration1MBSubchunks) {
  // 512 MB array over 8 i/o nodes as BLOCK,*,*: 64 MB chunks ->
  // 64 sub-chunks of exactly 1 MB (one 512x512 plane each, 4B elems).
  const Region chunk({0, 0, 0}, {64, 512, 512});
  const auto subs = SplitIntoSubchunks(chunk, 4, 1 * kMiB);
  ASSERT_EQ(subs.size(), 64u);
  for (const auto& sub : subs) EXPECT_EQ(sub.Volume() * 4, 1 * kMiB);
}

TEST(SchemaChunksOfServerRoundRobin, ChunkIdsAreDense) {
  Schema schema(Shape{16, 16}, Mesh(Shape{4, 2}),
                {DimDist::Block(), DimDist::Block()});
  const auto& chunks = schema.chunks();
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].id, static_cast<int>(i));
  }
}

}  // namespace
}  // namespace panda
