// Collective subarray reads: correctness (only the requested region is
// filled, everything else untouched), disk-access economy (servers skip
// sub-chunks outside the region), and randomized region sweeps.
#include <gtest/gtest.h>

#include "test_harness.h"
#include "util/random.h"

namespace panda {
namespace {

using test::FillPattern;
using test::GlobalOffsetOf;
using test::PatternValue;
using test::RunCluster;

Machine SimMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

// Verifies that `array`'s local data matches the write pattern (salt)
// inside `region` and equals `filler` outside it.
void VerifySubarray(const Array& array, const Region& region,
                    std::uint64_t salt, std::byte filler) {
  const Region& cell = array.local_region();
  if (cell.empty()) return;
  auto data = array.local_data();
  const auto elem = static_cast<size_t>(array.elem_size());
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const std::byte* at = data.data() + n * elem;
    if (region.Contains(g)) {
      const std::uint64_t v = PatternValue(
          salt, static_cast<std::uint64_t>(GlobalOffsetOf(array.shape(), g)));
      EXPECT_EQ(std::memcmp(at, &v, std::min(elem, sizeof(v))), 0)
          << g.ToString();
    } else {
      for (size_t k = 0; k < elem; ++k) {
        ASSERT_EQ(at[k], filler) << g.ToString();
      }
    }
    ++n;
  } while (NextIndexRowMajor(ext, off));
}

TEST(SubarrayTest, SliceReadFillsOnlyTheSlice) {
  Machine machine = SimMachine(8, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2, 2});
    Array a("vol", {16, 12, 10}, 8, memory, {BLOCK, BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 77);
    client.WriteArray(a);

    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0xAB});
    const Region slice({5, 0, 0}, {3, 12, 10});  // planes 5..7
    client.ReadSubarray(a, slice);
    VerifySubarray(a, slice, 77, std::byte{0xAB});
  });
}

TEST(SubarrayTest, WholeArrayRegionEqualsFullRead) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    Array a("x", {12, 12}, 4, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 9);
    client.WriteArray(a);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    client.ReadSubarray(a, Region::Whole(a.shape()));
    test::VerifyPattern(a, 9);
  });
}

TEST(SubarrayTest, RandomRegionsRoundTrip) {
  Machine machine = SimMachine(4, 3);
  Rng rng(2468);
  // Pre-draw regions so all ranks agree.
  const Shape shape{14, 10};
  std::vector<Region> regions;
  for (int i = 0; i < 12; ++i) {
    Index lo{static_cast<std::int64_t>(rng.NextBelow(13)),
             static_cast<std::int64_t>(rng.NextBelow(9))};
    Shape ext{1 + static_cast<std::int64_t>(
                      rng.NextBelow(static_cast<std::uint64_t>(14 - lo[0]))),
              1 + static_cast<std::int64_t>(
                      rng.NextBelow(static_cast<std::uint64_t>(10 - lo[1])))};
    regions.push_back(Region(lo, ext));
  }
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    ArrayLayout disk("d", {3});
    Array a("r", shape, 8, memory, {BLOCK, BLOCK}, disk, {BLOCK, NONE});
    a.BindClient(idx);
    FillPattern(a, 555);
    client.WriteArray(a);
    for (const Region& region : regions) {
      std::fill(a.local_data().begin(), a.local_data().end(),
                std::byte{0x5C});
      client.ReadSubarray(a, region);
      VerifySubarray(a, region, 555, std::byte{0x5C});
    }
  });
}

TEST(SubarrayTest, ServersSkipDiskOutsideTheRegion) {
  // A one-plane slice of a 16-plane array over 2 servers: only the
  // server holding the plane touches its disk, and reads only what the
  // slice needs.
  Sp2Params params = Sp2Params::Nas();
  Machine machine = Machine::Simulated(8, 2, params, false, true);
  const World world{8, 2};
  const ArrayMeta meta = [&] {
    ArrayMeta m;
    m.name = "skip";
    m.elem_size = 4;
    m.memory = Schema({16, 512, 512}, Mesh(Shape{2, 2, 2}),
                      {BLOCK, BLOCK, BLOCK});
    m.disk = Schema({16, 512, 512}, Mesh(Shape{2}), {BLOCK, NONE, NONE});
    return m;
  }();

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        client.WriteArray(a);
        // Reset... (stats measured by delta below)
        const Region plane({12, 0, 0}, {1, 512, 512});  // server 1's slab
        client.ReadSubarray(a, plane);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  // Server 0's slab (planes 0..7) is outside the slice: zero reads.
  EXPECT_EQ(machine.server_fs(0).stats().reads, 0);
  // Server 1 reads exactly the 1 MB sub-chunk holding plane 12.
  EXPECT_EQ(machine.server_fs(1).stats().reads, 1);
  EXPECT_EQ(machine.server_fs(1).stats().bytes_read, 1 * kMiB);
}

TEST(SubarrayTest, SubarrayWriteRejected) {
  Machine machine = SimMachine(2, 1);
  EXPECT_THROW(
      RunCluster(machine,
                 [&](PandaClient& client, int idx) {
                   ArrayLayout memory("m", {2});
                   Array a("w", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
                   a.BindClient(idx);
                   CollectiveRequest req;
                   req.op = IoOp::kWrite;
                   req.has_subarray = true;
                   req.subarray = Region({0}, {4});
                   Array* arrays[] = {&a};
                   client.Execute(std::move(req), arrays);
                 }),
      PandaError);
}

TEST(SubarrayTest, RegionOutsideArrayRejected) {
  Machine machine = SimMachine(2, 1);
  EXPECT_THROW(
      RunCluster(machine,
                 [&](PandaClient& client, int idx) {
                   ArrayLayout memory("m", {2});
                   Array a("w", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
                   a.BindClient(idx);
                   client.ReadSubarray(a, Region({10}, {10}));
                 }),
      PandaError);
}

}  // namespace
}  // namespace panda
