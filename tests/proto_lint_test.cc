// panda_proto (tools/analyze) unit tests: the wire-spec parser, the
// symbol layer / call graph it builds on, and each cross-TU analysis
// exercised against small fixture corpora — one seeded violation per
// rule (unknown tag, wrong-direction send, escaping PeerDeadError,
// deadline-less recv, lock-order cycle) with rule id, relative path and
// line asserted — plus the suppression contract and a real-tree run
// (the same gate tools/ci.sh enforces).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analyze/proto_rules.h"
#include "analyze/protocol_spec.h"
#include "analyze/symbols.h"

namespace panda {
namespace lint {
namespace {

// A fixture spec wide enough for every analysis: one failure-capable
// phase, one quiet one, role-restricted tags, an app tag, an aux tag,
// and one escape boundary.
const char kSpecText[] =
    "phase request failure-capable\n"
    "phase data\n"
    "phase failover failure-capable\n"
    "message kTagCollectiveRequest phase=request integrity=header-checked "
    "send=client recv=server\n"
    "message kTagPieceData phase=data integrity=wire-crc "
    "send=client,server recv=client,server\n"
    "message kTagFailover phase=failover integrity=header-checked "
    "send=server recv=client,server\n"
    "message kTagApp phase=data integrity=unchecked send=app recv=app\n"
    "boundary ServerLoop\n";

ProtocolSpec Spec(const std::string& text = kSpecText) {
  ProtocolSpec spec;
  std::string error;
  EXPECT_TRUE(ParseProtocolSpec(text, &spec, &error)) << error;
  return spec;
}

// For fixtures that do not define ServerLoop: the vacuous-boundary
// finding (tested under ProtoEscape) would otherwise ride along.
ProtocolSpec SpecNoBoundary() {
  ProtocolSpec spec = Spec();
  spec.boundaries.clear();
  return spec;
}

std::vector<Diagnostic> Check(
    const std::vector<std::pair<std::string, std::string>>& fixture,
    const ProtocolSpec& spec, LintConfig config = {}) {
  std::vector<SourceFile> files;
  for (const auto& [rel, content] : fixture) {
    files.push_back(Tokenize(rel, content));
  }
  return CheckProtoFiles(files, spec, config);
}

std::vector<Diagnostic> OfRule(const std::vector<Diagnostic>& diags,
                               const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

// ---- spec parser ------------------------------------------------------

TEST(ProtoSpec, ParsesFullGrammar) {
  const ProtocolSpec spec = Spec();
  ASSERT_EQ(spec.phases.size(), 3u);
  EXPECT_TRUE(spec.FailureCapable("request"));
  EXPECT_FALSE(spec.FailureCapable("data"));
  const MessageSpec* req = spec.Find("kTagCollectiveRequest");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->integrity, "header-checked");
  EXPECT_EQ(req->send_roles.count("client"), 1u);
  EXPECT_EQ(req->recv_roles.count("server"), 1u);
  const MessageSpec* data = spec.Find("kTagPieceData");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->send_roles.size(), 2u);  // client,server list
  ASSERT_EQ(spec.boundaries.size(), 1u);
  EXPECT_EQ(spec.boundaries[0].function, "ServerLoop");
  EXPECT_EQ(spec.boundaries[0].line, 8);
}

TEST(ProtoSpec, ParsesAuxFlag) {
  const ProtocolSpec spec = Spec(
      "phase app\n"
      "message kTagIoReply phase=app integrity=unchecked send=app "
      "recv=app aux\n");
  const MessageSpec* m = spec.Find("kTagIoReply");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->aux);
}

TEST(ProtoSpec, RejectsMalformedInputWithLineNumbers) {
  ProtocolSpec spec;
  std::string error;
  EXPECT_FALSE(ParseProtocolSpec("frobnicate x\n", &spec, &error));
  EXPECT_NE(error.find("protocol.spec:1"), std::string::npos);

  EXPECT_FALSE(ParseProtocolSpec(
      "message kTagX phase=ghost integrity=control send=any recv=any\n",
      &spec, &error));
  EXPECT_NE(error.find("undeclared phase"), std::string::npos);

  EXPECT_FALSE(ParseProtocolSpec(
      "phase p\n"
      "message kTagX phase=p integrity=pinky-swear send=any recv=any\n",
      &spec, &error));
  EXPECT_NE(error.find("integrity"), std::string::npos);

  EXPECT_FALSE(ParseProtocolSpec(
      "phase p\n"
      "message kTagX phase=p integrity=control send=any recv=any\n"
      "message kTagX phase=p integrity=control send=any recv=any\n",
      &spec, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  EXPECT_FALSE(ParseProtocolSpec("# only comments\n", &spec, &error));
  EXPECT_NE(error.find("no messages"), std::string::npos);
}

TEST(ProtoSpec, DotExportRendersEdgesAndFailureColor) {
  const std::string dot = ProtocolDot(Spec());
  EXPECT_NE(dot.find("digraph panda_protocol"), std::string::npos);
  EXPECT_NE(dot.find("\"client\" -> \"server\""), std::string::npos);
  EXPECT_NE(dot.find("kTagCollectiveRequest"), std::string::npos);
  // Failure-capable phases draw red; the quiet data phase does not.
  EXPECT_NE(dot.find("(request, header-checked)\", color=\"#b22222\""),
            std::string::npos);
  EXPECT_EQ(dot.find("(data, wire-crc)\", color"), std::string::npos);
}

// ---- symbol layer / call graph ----------------------------------------

TEST(ProtoSymbols, ExtractsFunctionsCallsAndTries) {
  const SourceFile f = Tokenize(
      "src/x/a.cc",
      "void Helper(int v) { Use(v); }\n"
      "void Outer() {\n"
      "  try {\n"
      "    Helper(1);\n"
      "  } catch (const PandaError& e) {\n"
      "  }\n"
      "  Helper(2);\n"
      "}\n");
  const FileSymbols syms = AnalyzeFile(f);
  ASSERT_EQ(syms.functions.size(), 2u);
  EXPECT_EQ(syms.functions[0].name, "Helper");
  EXPECT_EQ(syms.functions[1].name, "Outer");
  const FunctionDef& outer = syms.functions[1];
  ASSERT_EQ(outer.calls.size(), 2u);
  ASSERT_EQ(outer.tries.size(), 1u);
  EXPECT_EQ(outer.tries[0].caught.count("PandaError"), 1u);
  // First call guarded, second not.
  EXPECT_TRUE(GuardedBy(outer, outer.calls[0].tok, {"PandaError"}));
  EXPECT_FALSE(GuardedBy(outer, outer.calls[1].tok, {"PandaError"}));
}

TEST(ProtoSymbols, RecursionTerminatesInEscapeFixpoint) {
  // Self-recursion must not loop the leak fixpoint or the witness walk.
  const ProtocolSpec spec = Spec(
      "phase failover failure-capable\n"
      "message kTagFailover phase=failover integrity=header-checked "
      "send=server recv=server\n"
      "boundary Loop\n");
  const auto diags = OfRule(
      Check({{"src/panda/a.cc",
              "void Loop(Endpoint& ep) {\n"
              "  Loop(ep);\n"
              "  ep.Recv(0, kTagFailover);\n"
              "}\n"}},
            spec),
      "proto-escape");
  ASSERT_FALSE(diags.empty());
  bool saw_direct = false;
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file, "src/panda/a.cc");
    if (d.line == 3) saw_direct = true;
  }
  EXPECT_TRUE(saw_direct);
}

TEST(ProtoSymbols, FunctionPointerCallsDegradeGracefully) {
  // A call through a std::function / pointer value has no resolvable
  // callee definition: no edge, no finding, no crash.
  const ProtocolSpec spec = Spec(
      "phase data\n"
      "message kTagApp phase=data integrity=unchecked send=app recv=app\n"
      "boundary Drive\n");
  EXPECT_TRUE(Check({{"src/panda/a.cc",
                      "void Drive(std::function<void()> cb) {\n"
                      "  cb();\n"
                      "  (*handler_)();\n"
                      "}\n"}},
                    spec)
                  .empty());
}

// ---- proto-tag --------------------------------------------------------

TEST(ProtoTag, UnknownTagFlagged) {
  const auto diags =
      Check({{"src/panda/server.cc",
              "void f(Endpoint& ep) {\n"
              "  ep.Send(0, kTagMystery, Message{});\n"
              "}\n"}},
            SpecNoBoundary());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-tag");
  EXPECT_EQ(diags[0].file, "src/panda/server.cc");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("kTagMystery"), std::string::npos);
}

TEST(ProtoTag, WrongDirectionSendFlagged) {
  // kTagCollectiveRequest is send=client; a server-subsystem send is
  // protocol drift.
  const auto diags =
      Check({{"src/panda/server.cc",
              "void f(Endpoint& ep) {\n"
              "  ep.Send(0, kTagCollectiveRequest, Message{});\n"
              "}\n"}},
            SpecNoBoundary());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-tag");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("server"), std::string::npos);
  EXPECT_NE(diags[0].message.find("send=client"), std::string::npos);
}

TEST(ProtoTag, MatchingRolesAndAnyAreClean) {
  EXPECT_TRUE(
      Check({{"src/panda/client.cc",
              "void f(Endpoint& ep) {\n"
              "  ep.Send(0, kTagCollectiveRequest, Message{});\n"
              "}\n"},
             {"tests/x_test.cc",
              "void g(Endpoint& ep) { ep.Send(1, kTagApp, Message{}); }\n"}},
            SpecNoBoundary())
          .empty());
}

TEST(ProtoTag, TransportLayerExemptFromRoleChecksButNotUnknownTags) {
  // src/msg speaks every side of the protocol: direction roles don't
  // apply. Unknown tags still do.
  EXPECT_TRUE(Check({{"src/msg/transport.cc",
                      "void f(Endpoint& ep) {\n"
                      "  ep.Send(0, kTagCollectiveRequest, Message{});\n"
                      "}\n"}},
                    SpecNoBoundary())
                  .empty());
  const auto diags = Check({{"src/msg/transport.cc",
                             "void f(Endpoint& ep) {\n"
                             "  ep.Send(0, kTagBogus, Message{});\n"
                             "}\n"}},
                           SpecNoBoundary());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-tag");
}

TEST(ProtoTag, VariableTagsAreSkipped) {
  EXPECT_TRUE(Check({{"src/panda/server.cc",
                      "void f(Endpoint& ep, int tag) {\n"
                      "  ep.Send(0, tag, Message{});\n"
                      "}\n"}},
                    SpecNoBoundary())
                  .empty());
}

TEST(ProtoTag, DriftGuardFlagsEnumTagMissingFromSpec) {
  // A spec covering exactly the declared enum minus kTagOrphan: the
  // one missing entry is the only finding.
  const ProtocolSpec spec = Spec(
      "phase request failure-capable\n"
      "message kTagCollectiveRequest phase=request "
      "integrity=header-checked send=client recv=server\n");
  const auto diags = Check({{"src/msg/message.h",
                             "#pragma once\n"
                             "enum MsgTag : int {\n"
                             "  kTagCollectiveRequest = 1,\n"
                             "  kTagOrphan = 2,\n"
                             "};\n"}},
                           spec);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-tag");
  EXPECT_EQ(diags[0].file, "src/msg/message.h");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("kTagOrphan"), std::string::npos);
}

TEST(ProtoTag, DriftGuardFlagsStaleSpecEntries) {
  // kTagPieceData / kTagFailover / kTagApp are in the spec but not this
  // enum — each is a stale non-aux entry once the enum has been seen.
  const auto diags = Check({{"src/msg/message.h",
                             "#pragma once\n"
                             "enum MsgTag : int {\n"
                             "  kTagCollectiveRequest = 1,\n"
                             "};\n"}},
                           SpecNoBoundary());
  EXPECT_EQ(diags.size(), 3u);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "proto-tag");
    EXPECT_EQ(d.file, "src/msg/message.h");
    EXPECT_NE(d.message.find("stale"), std::string::npos);
  }
}

TEST(ProtoTag, DriftGuardFlagsAuxTagNobodyMentions) {
  const ProtocolSpec spec = Spec(
      "phase app\n"
      "message kTagCollectiveRequest phase=app integrity=control "
      "send=any recv=any\n"
      "message kTagGhost phase=app integrity=unchecked send=app recv=app "
      "aux\n");
  const auto diags = Check({{"src/msg/message.h",
                             "#pragma once\n"
                             "enum MsgTag : int {\n"
                             "  kTagCollectiveRequest = 1,\n"
                             "};\n"}},
                           spec);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("kTagGhost"), std::string::npos);
}

TEST(ProtoTag, DriftGuardSkippedWhenEnumNotInCorpus) {
  // Fixture corpora without src/msg/message.h must not drown in stale
  // warnings for every spec entry.
  EXPECT_TRUE(Check({{"src/panda/x.cc", "void f() {}\n"}}, SpecNoBoundary()).empty());
}

// ---- proto-escape -----------------------------------------------------

TEST(ProtoEscape, EscapingRecvThroughHelperFlagged) {
  const auto diags = Check(
      {{"src/msg/coll.cc",
        "Message Pull(Endpoint& ep) {\n"
        "  return ep.Recv(0, kTagFailover);\n"
        "}\n"},
       {"src/panda/loop.cc",
        "void ServerLoop(Endpoint& ep) {\n"
        "  Pull(ep);\n"
        "}\n"}},
      Spec());
  // The deadline rule fires inside Pull too; the escape finding anchors
  // at the boundary's unguarded call.
  const auto escapes = OfRule(diags, "proto-escape");
  ASSERT_EQ(escapes.size(), 1u);
  EXPECT_EQ(escapes[0].file, "src/panda/loop.cc");
  EXPECT_EQ(escapes[0].line, 2);
  EXPECT_NE(escapes[0].message.find("ServerLoop -> Pull -> Recv"),
            std::string::npos);
  EXPECT_NE(escapes[0].message.find("src/msg/coll.cc:2"), std::string::npos);
}

TEST(ProtoEscape, BoundaryWithConvertingCatchIsClean) {
  EXPECT_TRUE(OfRule(Check({{"src/panda/loop.cc",
                             "void ServerLoop(Endpoint& ep) {\n"
                             "  try {\n"
                             "    ep.Recv(0, kTagFailover);\n"
                             "  } catch (const PandaError& e) {\n"
                             "    Convert(e);\n"
                             "  }\n"
                             "}\n"}},
                           Spec()),
                     "proto-escape")
                  .empty());
}

TEST(ProtoEscape, CatchingOnlyAbortErrorDoesNotCover) {
  // PeerDeadError derives from PandaError, not PandaAbortError: a
  // dispatch that only handles aborts still leaks peer deaths.
  const auto diags = OfRule(Check({{"src/panda/loop.cc",
                                    "void ServerLoop(Endpoint& ep) {\n"
                                    "  try {\n"
                                    "    ep.Recv(0, kTagFailover);\n"
                                    "  } catch (const PandaAbortError& a) {\n"
                                    "  }\n"
                                    "}\n"}},
                                  Spec()),
                            "proto-escape");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(ProtoEscape, RegressionMasterKillBcastShape) {
  // The exact shape panda_mc caught dynamically in
  // tests/schedules/master-kill-abort.mctrace and PR 6 fixed: the
  // server dispatch loop forwarding a request through Bcast with no
  // converting catch on the path. src/panda/server.cc now wraps the
  // non-failover Bcast; this pins the pre-fix shape as a finding so the
  // class cannot quietly return.
  const auto diags = OfRule(
      Check({{"src/msg/collectives.cc",
              "Message TreeBcast(Endpoint& ep, int root, Message m) {\n"
              "  return ep.Recv(root, kTagFailover);\n"
              "}\n"
              "Message Bcast(Endpoint& ep, int root, Message m) {\n"
              "  return TreeBcast(ep, root, std::move(m));\n"
              "}\n"},
             {"src/panda/server.cc",
              "void ServerLoop(Endpoint& ep) {\n"
              "  Message request_msg;\n"
              "  request_msg = Bcast(ep, 0, std::move(request_msg));\n"
              "}\n"}},
            Spec()),
      "proto-escape");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/panda/server.cc");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("Bcast -> TreeBcast -> Recv"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("master-kill-abort.mctrace"),
            std::string::npos);
}

TEST(ProtoEscape, BoundaryWithNoDefinitionFlagged) {
  // A renamed boundary silently turns the analysis vacuous — that drift
  // is itself a finding, anchored in the spec.
  const auto diags = OfRule(
      Check({{"src/panda/x.cc", "void NotTheLoop() {}\n"}}, Spec()),
      "proto-escape");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "tools/analyze/protocol.spec");
  EXPECT_EQ(diags[0].line, 8);
  EXPECT_NE(diags[0].message.find("ServerLoop"), std::string::npos);
}

TEST(ProtoEscape, AppHarnessCodeStaysOutOfTheGraph) {
  // An examples/ helper sharing a name with a library function must not
  // taint the src/ graph with its raw Recv.
  EXPECT_TRUE(OfRule(Check({{"examples/demo.cc",
                             "void Run(Endpoint& ep) {\n"
                             "  ep.Recv(0, kTagApp);\n"
                             "}\n"},
                            {"src/panda/loop.cc",
                             "void ServerLoop(Retry& retry) {\n"
                             "  retry.Run([] {});\n"
                             "}\n"}},
                           Spec()),
                     "proto-escape")
                  .empty());
}

// ---- proto-deadline ---------------------------------------------------

TEST(ProtoDeadline, BlockingRecvInFailureCapablePhaseFlagged) {
  const auto diags = Check({{"src/panda/failover.cc",
                             "void Wait(Endpoint& ep) {\n"
                             "  ep.Recv(0, kTagFailover);\n"
                             "}\n"}},
                           SpecNoBoundary());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-deadline");
  EXPECT_EQ(diags[0].file, "src/panda/failover.cc");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("failover"), std::string::npos);
}

TEST(ProtoDeadline, GuardedQuietPhaseAndTryRecvAreClean) {
  // A converting catch, a non-failure-capable phase, a TryRecv deadline
  // variant, and the implementing layer itself: all quiet.
  EXPECT_TRUE(
      Check({{"src/panda/a.cc",
              "void f(Endpoint& ep) {\n"
              "  try { ep.Recv(0, kTagFailover); }\n"
              "  catch (const PeerDeadError& e) {}\n"
              "}\n"},
             {"src/panda/b.cc",
              "void g(Endpoint& ep) { ep.Recv(0, kTagPieceData); }\n"},
             {"src/panda/c.cc",
              "void h(Endpoint& ep) { ep.TryRecv(0, kTagFailover, 50); }\n"},
             {"src/msg/transport.cc",
              "void d(Endpoint& ep) { ep.Recv(0, kTagFailover); }\n"}},
            SpecNoBoundary())
          .empty());
}

TEST(ProtoDeadline, SuppressionMarkerHonored) {
  EXPECT_TRUE(
      Check({{"src/panda/failover.cc",
              "void Wait(Endpoint& ep) {\n"
              "  // panda-lint: allow(proto-deadline)\n"
              "  ep.Recv(0, kTagFailover);\n"
              "}\n"}},
            SpecNoBoundary())
          .empty());
}

// ---- proto-lock-order -------------------------------------------------

TEST(ProtoLockOrder, OppositeOrderInOneFileFlagged) {
  const auto diags = Check(
      {{"src/x/a.cc",
        "void f() {\n"
        "  std::lock_guard<std::mutex> l1(mu_a);\n"
        "  std::lock_guard<std::mutex> l2(mu_b);\n"
        "}\n"
        "void g() {\n"
        "  std::lock_guard<std::mutex> l1(mu_b);\n"
        "  std::lock_guard<std::mutex> l2(mu_a);\n"
        "}\n"}},
      SpecNoBoundary());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-lock-order");
  EXPECT_EQ(diags[0].file, "src/x/a.cc");
  EXPECT_NE(diags[0].message.find("src/x/a:mu_a"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/x/a:mu_b"), std::string::npos);
}

TEST(ProtoLockOrder, CrossFileCycleThroughCallsFlagged) {
  // a holds its mutex and calls into b; b holds its own and calls back
  // into a — the classic two-component deadlock, visible only with the
  // whole tree in view.
  const auto diags = Check(
      {{"src/x/a.cc",
        "void LockA() { std::lock_guard<std::mutex> l(mu_); }\n"
        "void AThenB() {\n"
        "  std::lock_guard<std::mutex> l(mu_);\n"
        "  LockB();\n"
        "}\n"},
       {"src/x/b.cc",
        "void LockB() { std::lock_guard<std::mutex> l(mu_); }\n"
        "void BThenA() {\n"
        "  std::lock_guard<std::mutex> l(mu_);\n"
        "  LockA();\n"
        "}\n"}},
      SpecNoBoundary());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "proto-lock-order");
  EXPECT_NE(diags[0].message.find("src/x/a:mu_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/x/b:mu_"), std::string::npos);
}

TEST(ProtoLockOrder, ConsistentOrderIsClean) {
  EXPECT_TRUE(Check({{"src/x/a.cc",
                      "void f() {\n"
                      "  std::lock_guard<std::mutex> l1(mu_a);\n"
                      "  std::lock_guard<std::mutex> l2(mu_b);\n"
                      "}\n"
                      "void g() {\n"
                      "  std::lock_guard<std::mutex> l(mu_a);\n"
                      "}\n"
                      "void h() {\n"
                      "  std::lock_guard<std::mutex> l1(mu_a);\n"
                      "  std::lock_guard<std::mutex> l2(mu_b);\n"
                      "}\n"}},
                    SpecNoBoundary())
                  .empty());
}

TEST(ProtoLockOrder, SequentialScopesDoNotMakeEdges) {
  // The guards do not overlap: no ordering constraint, no edge.
  EXPECT_TRUE(Check({{"src/x/a.cc",
                      "void f() {\n"
                      "  { std::lock_guard<std::mutex> l(mu_a); }\n"
                      "  { std::lock_guard<std::mutex> l(mu_b); }\n"
                      "}\n"
                      "void g() {\n"
                      "  { std::lock_guard<std::mutex> l(mu_b); }\n"
                      "  { std::lock_guard<std::mutex> l(mu_a); }\n"
                      "}\n"}},
                    SpecNoBoundary())
                  .empty());
}

// ---- driver -----------------------------------------------------------

TEST(ProtoDriver, DisabledRulesAreSkipped) {
  LintConfig config;
  config.disabled_rules = {"proto-tag", "proto-escape", "proto-deadline"};
  EXPECT_TRUE(Check({{"src/panda/server.cc",
                      "void f(Endpoint& ep) {\n"
                      "  ep.Send(0, kTagMystery, Message{});\n"
                      "}\n"}},
                    Spec(), config)
                  .empty());
}

TEST(ProtoDriver, RegistryExposesAllRules) {
  std::vector<std::string> ids;
  for (const ProtoRule& rule : ProtoRegistry()) ids.push_back(rule.id);
  const std::vector<std::string> expected = {
      "proto-tag", "proto-escape", "proto-deadline", "proto-lock-order"};
  EXPECT_EQ(ids, expected);
}

TEST(ProtoDriver, RealTreeIsClean) {
  // The analyses gate CI (tools/ci.sh): the actual repository must run
  // clean against the actual spec. This also proves the spec covers the
  // real MsgTag enum bidirectionally — any drift would surface as a
  // proto-tag finding here.
  LintConfig config;
  config.root = PANDA_LINT_ROOT;
  std::string error;
  const std::vector<Diagnostic> diags = RunProto(config, "", &error);
  EXPECT_TRUE(error.empty()) << error;
  for (const Diagnostic& d : diags) ADD_FAILURE() << d.ToString();
}

}  // namespace
}  // namespace lint
}  // namespace panda
