// Tests for the multi-disk striped file system.
#include <gtest/gtest.h>

#include "iosim/striped_fs.h"
#include "test_harness.h"

namespace panda {
namespace {

StripedFileSystem::Options BaseOptions(int disks, VirtualClock* clock) {
  StripedFileSystem::Options opt;
  opt.num_disks = disks;
  opt.stripe_bytes = 64 * 1024;
  opt.disk = DiskModel::NasSp2Aix();
  opt.store_data = clock == nullptr;
  opt.clock = clock;
  return opt;
}

TEST(StripedFsTest, DataRoundTripAcrossStripes) {
  StripedFileSystem fs(BaseOptions(3, nullptr));
  auto f = fs.Open("x", OpenMode::kWrite);
  // 300 KB spans several 64 KB stripes on 3 disks.
  std::vector<std::byte> data(300 * 1024);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 2654435761u >> 13);
  }
  f->WriteAt(0, {data.data(), data.size()},
             static_cast<std::int64_t>(data.size()));
  std::vector<std::byte> out(data.size());
  f->ReadAt(0, {out.data(), out.size()},
            static_cast<std::int64_t>(out.size()));
  EXPECT_EQ(out, data);

  // Unaligned partial read.
  std::vector<std::byte> part(100'000);
  f->ReadAt(12'345, {part.data(), part.size()}, 100'000);
  EXPECT_EQ(std::memcmp(part.data(), data.data() + 12'345, part.size()), 0);
}

TEST(StripedFsTest, ParallelDisksSpeedUpLargeWrites) {
  // A 1 MB sequential write: media time shrinks with disk count, the
  // per-request overhead does not.
  double prev = 0.0;
  std::vector<double> elapsed;
  for (const int disks : {1, 2, 4, 8}) {
    VirtualClock clock;
    StripedFileSystem fs(BaseOptions(disks, &clock));
    auto f = fs.Open("x", OpenMode::kWrite);
    for (int i = 0; i < 8; ++i) {
      f->WriteAt(i * kMiB, {}, 1 * kMiB);
    }
    elapsed.push_back(clock.Now());
  }
  for (size_t i = 1; i < elapsed.size(); ++i) {
    EXPECT_LT(elapsed[i], elapsed[i - 1]);
  }
  // But never past the software overhead floor: 8 requests x 115 ms.
  const DiskModel aix = DiskModel::NasSp2Aix();
  EXPECT_GT(elapsed.back(), 8 * aix.write_overhead_s);
  prev = elapsed.back();
  (void)prev;
}

TEST(StripedFsTest, SequentialStreamSeeksOncePerDisk) {
  VirtualClock clock;
  StripedFileSystem fs(BaseOptions(4, &clock));
  auto f = fs.Open("x", OpenMode::kWrite);
  for (int i = 0; i < 16; ++i) {
    f->WriteAt(i * 256 * kKiB, {}, 256 * kKiB);
  }
  // Each of the 4 disks positions once, then streams.
  EXPECT_EQ(fs.stats().seeks, 4);
}

TEST(StripedFsTest, SingleDiskMatchesSimFsThroughputShape) {
  // One disk, sequential 1 MB writes: same peak as the flat AIX model.
  VirtualClock clock;
  StripedFileSystem fs(BaseOptions(1, &clock));
  auto f = fs.Open("x", OpenMode::kWrite);
  const int n = 16;
  for (int i = 0; i < n; ++i) f->WriteAt(i * kMiB, {}, 1 * kMiB);
  const double thr = n * kMiB / clock.Now();
  // First request pays a seek; amortized throughput within 5% of peak.
  EXPECT_NEAR(thr / kMiB, 2.23, 0.12);
}

TEST(StripedFsTest, RenameAndRemove) {
  StripedFileSystem fs(BaseOptions(2, nullptr));
  {
    auto f = fs.Open("a", OpenMode::kWrite);
    std::vector<std::byte> d{std::byte{5}};
    f->WriteAt(0, {d.data(), d.size()}, 1);
  }
  fs.Rename("a", "b");
  EXPECT_FALSE(fs.Exists("a"));
  EXPECT_TRUE(fs.Exists("b"));
  fs.Remove("b");
  EXPECT_FALSE(fs.Exists("b"));
  EXPECT_THROW(fs.Open("b", OpenMode::kRead), PandaError);
}

TEST(StripedFsTest, PandaRoundTripOnMultiDiskMachine) {
  // End to end: the Panda protocol over multi-disk i/o nodes.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  Machine machine = Machine::SimulatedMultiDisk(
      4, 2, params, /*disks_per_node=*/3, /*stripe_bytes=*/512,
      /*store_data=*/true, /*timing_only=*/false);
  test::RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    Array a("md", {16, 12}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    test::FillPattern(a, 42);
    client.WriteArray(a);
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    client.ReadArray(a);
    test::VerifyPattern(a, 42);
  });
}

}  // namespace
}  // namespace panda
