// Re-decomposition: because the disk schema alone defines the files,
// data written by one processor configuration can be read back by a
// different one — checkpoint on 8 nodes, restart on 4 (or 2, or 16, or
// with a different mesh shape). This is the practical payoff of
// separating memory and disk schemas.
#include <gtest/gtest.h>

#include <filesystem>

#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::RunCluster;
using test::VerifyPattern;

struct Decomposition {
  int clients;
  Shape mesh;
  std::vector<DimDist> dists;
};

class RedecompositionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RedecompositionTest, CheckpointOnOneMeshRestartOnAnother) {
  const auto [writer_id, reader_id] = GetParam();
  const Decomposition decomps[] = {
      {8, {2, 2, 2}, {BLOCK, BLOCK, BLOCK}},
      {4, {4}, {BLOCK, NONE, NONE}},
      {4, {2, 2}, {NONE, BLOCK, BLOCK}},
      {2, {2}, {NONE, BLOCK, NONE}},
      {16, {4, 2, 2}, {BLOCK, BLOCK, BLOCK}},
  };
  const Decomposition& writer = decomps[writer_id];
  const Decomposition& reader = decomps[reader_id];

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("panda_redecomp_" + std::to_string(::getpid()) + "_" +
        std::to_string(writer_id) + std::to_string(reader_id)))
          .string();
  std::filesystem::remove_all(root);

  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 2048;
  const Shape shape{8, 12, 16};
  // The disk schema is the contract both configurations share.
  const Schema disk(shape, Mesh(Shape{3}), {BLOCK, NONE, NONE});

  // Phase 1: the writer configuration checkpoints.
  {
    Machine machine =
        Machine::WithPosixFs(writer.clients, 3, params, root);
    RunCluster(machine, [&](PandaClient& client, int idx) {
      Array a("state", 8, Schema(shape, Mesh(writer.mesh), writer.dists),
              disk);
      a.BindClient(idx);
      FillPattern(a, 404);
      ArrayGroup group("job");
      group.Include(&a);
      group.Checkpoint(client);
    });
  }

  // Phase 2: a different configuration restarts from the same files.
  {
    Machine machine =
        Machine::WithPosixFs(reader.clients, 3, params, root);
    RunCluster(machine, [&](PandaClient& client, int idx) {
      Array a("state", 8, Schema(shape, Mesh(reader.mesh), reader.dists),
              disk);
      a.BindClient(idx);
      ArrayGroup group("job");
      group.Include(&a);
      group.Restart(client);
      VerifyPattern(a, 404);
    });
  }
  std::filesystem::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(
    MeshPairs, RedecompositionTest,
    ::testing::Values(std::tuple(0, 1), std::tuple(0, 3), std::tuple(1, 0),
                      std::tuple(2, 0), std::tuple(0, 4), std::tuple(4, 2),
                      std::tuple(3, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RedecompositionTest, ServerCountMustMatchDiskFiles) {
  // The i/o-node count is part of the on-disk contract (round-robin
  // chunk assignment): reading with a different server count fails
  // loudly instead of scrambling data.
  Machine write_machine = Machine::Simulated(
      4, 2, Sp2Params::Functional(), /*store_data=*/true, false);
  const Shape shape{16, 8};
  ArrayLayout memory("m", {2, 2});
  RunCluster(write_machine, [&](PandaClient& client, int idx) {
    Array a("x", shape, 4, memory, {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 1);
    client.WriteArray(a);
  });
  // A fresh 3-server machine has no files at all -> read throws.
  Machine read_machine = Machine::Simulated(
      4, 3, Sp2Params::Functional(), /*store_data=*/true, false);
  EXPECT_THROW(
      RunCluster(read_machine,
                 [&](PandaClient& client, int idx) {
                   Array a("x", shape, 4, memory, {BLOCK, BLOCK}, memory,
                           {BLOCK, BLOCK});
                   a.BindClient(idx);
                   client.ReadArray(a);
                 }),
      PandaError);
}

}  // namespace
}  // namespace panda
