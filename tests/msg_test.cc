// Unit tests for src/msg: mailboxes, the thread transport, virtual-time
// accounting, and tree collectives.
//
// This file tests the Mailbox itself, so it calls the raw deposit /
// receive internals that the rest of the tree must reach only through
// Endpoint.
// panda-lint: allow-file(raw-send)
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "msg/collectives.h"
#include "msg/transport.h"
#include "util/codec.h"
#include "util/error.h"

namespace panda {
namespace {

Message TextMessage(const std::string& text) {
  Message msg;
  Encoder enc(msg.header);
  enc.PutString(text);
  return msg;
}

std::string TextOf(const Message& msg) {
  Decoder dec(msg.header);
  return dec.GetString();
}

TEST(MailboxTest, FifoPerSourceAndTag) {
  Mailbox mb;
  for (int i = 0; i < 3; ++i) {
    Message m = TextMessage("m" + std::to_string(i));
    m.src = 1;
    m.tag = 5;
    mb.Deposit(std::move(m));
  }
  EXPECT_EQ(TextOf(mb.BlockingReceive(1, 5)), "m0");
  EXPECT_EQ(TextOf(mb.BlockingReceive(1, 5)), "m1");
  EXPECT_EQ(TextOf(mb.BlockingReceive(1, 5)), "m2");
}

TEST(MailboxTest, MatchesOnSourceAndTag) {
  Mailbox mb;
  Message a = TextMessage("from2");
  a.src = 2;
  a.tag = 7;
  Message b = TextMessage("from1");
  b.src = 1;
  b.tag = 7;
  mb.Deposit(std::move(a));
  mb.Deposit(std::move(b));
  // Request src 1 first even though src 2 arrived first.
  EXPECT_EQ(TextOf(mb.BlockingReceive(1, 7)), "from1");
  EXPECT_EQ(TextOf(mb.BlockingReceive(2, 7)), "from2");
}

TEST(MailboxTest, BlocksUntilDeposit) {
  Mailbox mb;
  std::atomic<bool> received{false};
  // An auxiliary OS thread outside the rank world, poking the mailbox
  // from the side. panda-lint: allow(raw-thread)
  std::thread t([&] {
    Message m = mb.BlockingReceive(0, 1);
    EXPECT_EQ(TextOf(m), "late");
    received = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(received.load());
  Message m = TextMessage("late");
  m.src = 0;
  m.tag = 1;
  mb.Deposit(std::move(m));
  t.join();
  EXPECT_TRUE(received.load());
}

TEST(MailboxTest, PoisonWakesWaiters) {
  Mailbox mb;
  // panda-lint: allow(raw-thread)
  std::thread t([&] {
    EXPECT_THROW((void)mb.BlockingReceive(0, 1), PandaError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mb.Poison();
  t.join();
}

ThreadTransport::Config InstantConfig() {
  ThreadTransport::Config cfg;
  cfg.net = NetModel::Instant();
  return cfg;
}

TEST(TransportTest, PingPong) {
  ThreadTransport tt(2, InstantConfig());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.Send(1, kTagApp, TextMessage("ping"));
      EXPECT_EQ(TextOf(ep.Recv(1, kTagApp)), "pong");
    } else {
      EXPECT_EQ(TextOf(ep.Recv(0, kTagApp)), "ping");
      ep.Send(0, kTagApp, TextMessage("pong"));
    }
  });
  const MsgStats stats = tt.TotalStats();
  EXPECT_EQ(stats.messages_sent, 2);
  EXPECT_EQ(stats.messages_received, 2);
}

TEST(TransportTest, PayloadRoundTrip) {
  ThreadTransport tt(2, InstantConfig());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      Message m;
      std::vector<std::byte> payload(1000);
      for (size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::byte>(i % 251);
      }
      m.SetPayload(std::move(payload));
      ep.Send(1, kTagApp, std::move(m));
    } else {
      Message m = ep.Recv(0, kTagApp);
      ASSERT_EQ(m.payload.size(), 1000u);
      EXPECT_EQ(m.payload_vbytes, 1000);
      for (size_t i = 0; i < m.payload.size(); ++i) {
        EXPECT_EQ(m.payload[i], static_cast<std::byte>(i % 251));
      }
    }
  });
}

TEST(TransportTest, TimingOnlyElidesPayloads) {
  ThreadTransport::Config cfg = InstantConfig();
  cfg.timing_only = true;
  ThreadTransport tt(2, cfg);
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      Message m;
      m.SetPayload(std::vector<std::byte>(512));
      ep.Send(1, kTagApp, std::move(m));
      Message v;
      v.SetVirtualPayload(1 << 20);
      ep.Send(1, kTagApp, std::move(v));
    } else {
      Message m = ep.Recv(0, kTagApp);
      EXPECT_TRUE(m.payload.empty());
      EXPECT_EQ(m.payload_vbytes, 512);
      Message v = ep.Recv(0, kTagApp);
      EXPECT_EQ(v.payload_vbytes, 1 << 20);
    }
  });
}

TEST(TransportTest, VirtualTimeLogGpAccounting) {
  // One 1 MB message: sender busy o + T; receiver ends at o + T + L + o.
  ThreadTransport::Config cfg;
  cfg.net.latency_s = 50e-6;
  cfg.net.bandwidth_Bps = 10e6;
  cfg.net.per_message_overhead_s = 1e-3;
  ThreadTransport tt(2, cfg);
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      Message m;
      m.SetVirtualPayload(10'000'000);  // exactly 1 second on the wire
      ep.Send(1, kTagApp, std::move(m));
    } else {
      (void)ep.Recv(0, kTagApp);
    }
  });
  EXPECT_NEAR(tt.endpoint(0).clock().Now(), 1e-3 + 1.0, 1e-9);
  EXPECT_NEAR(tt.endpoint(1).clock().Now(), 1e-3 + 1.0 + 50e-6 + 1e-3, 1e-9);
}

TEST(TransportTest, RecvDoesNotMoveClockBackwards) {
  ThreadTransport::Config cfg;
  cfg.net.latency_s = 0;
  cfg.net.bandwidth_Bps = 1e18;
  cfg.net.per_message_overhead_s = 0;
  ThreadTransport tt(2, cfg);
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.Send(1, kTagApp, Message{});
    } else {
      ep.AdvanceCompute(5.0);  // receiver is already far in the future
      (void)ep.Recv(0, kTagApp);
      EXPECT_DOUBLE_EQ(ep.clock().Now(), 5.0);
    }
  });
}

TEST(TransportTest, ExceptionPropagatesAndUnblocksPeers) {
  ThreadTransport tt(3, InstantConfig());
  EXPECT_THROW(tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      throw PandaError("rank 0 exploded");
    }
    // Ranks 1..2 wait for a message that never comes; the poison must
    // unblock them instead of deadlocking the join.
    (void)ep.Recv(0, kTagApp);
  }),
               PandaError);
}

TEST(TransportTest, ResetClocksAndStats) {
  ThreadTransport tt(2, InstantConfig());
  tt.Run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.Send(1, kTagApp, Message{});
    } else {
      (void)ep.Recv(0, kTagApp);
      ep.AdvanceCompute(1.0);
    }
  });
  EXPECT_GT(tt.endpoint(1).clock().Now(), 0.0);
  tt.ResetClocksAndStats();
  EXPECT_DOUBLE_EQ(tt.endpoint(1).clock().Now(), 0.0);
  EXPECT_EQ(tt.TotalStats().messages_sent, 0);
}

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BarrierSynchronizesVirtualTime) {
  const int n = GetParam();
  ThreadTransport::Config cfg;
  cfg.net.latency_s = 1e-6;
  cfg.net.bandwidth_Bps = 1e9;
  cfg.net.per_message_overhead_s = 1e-5;
  ThreadTransport tt(n, cfg);
  tt.Run([n](Endpoint& ep) {
    // Stagger the ranks, then barrier: everyone must end at >= the max.
    ep.AdvanceCompute(0.1 * ep.rank());
    Barrier(ep, Group::Consecutive(0, n, ep.rank()));
    EXPECT_GE(ep.clock().Now(), 0.1 * (n - 1));
  });
}

TEST_P(CollectivesTest, BcastDeliversFromEveryRoot) {
  const int n = GetParam();
  ThreadTransport tt(n, InstantConfig());
  for (int root = 0; root < n; ++root) {
    tt.Run([n, root](Endpoint& ep) {
      const Group group = Group::Consecutive(0, n, ep.rank());
      Message msg;
      if (ep.rank() == root) msg = TextMessage("hello-" + std::to_string(root));
      msg = Bcast(ep, group, root, std::move(msg));
      EXPECT_EQ(TextOf(msg), "hello-" + std::to_string(root));
      Barrier(ep, group);  // quiesce before the next root
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32));

TEST(GroupTest, ConsecutiveMembership) {
  const Group g = Group::Consecutive(4, 3, 5);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.my_index(), 1);
  EXPECT_EQ(g.rank_at(0), 4);
  EXPECT_EQ(g.rank_at(2), 6);
  EXPECT_TRUE(g.contains(6));
  EXPECT_FALSE(g.contains(7));
  const Group outsider = Group::Consecutive(4, 3, 0);
  EXPECT_EQ(outsider.my_index(), -1);
}

TEST(NetModelTest, TransferSeconds) {
  NetModel net;
  net.bandwidth_Bps = 1000.0;
  EXPECT_DOUBLE_EQ(net.TransferSeconds(500), 0.5);
  EXPECT_DOUBLE_EQ(net.TransferSeconds(0), 0.0);
}

}  // namespace
}  // namespace panda
