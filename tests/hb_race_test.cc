// Happens-before race checker (msg/hb.h) and schedule-perturbation
// determinism.
//
// Three layers of assurance, matching docs/ANALYSIS.md:
//  1. hb::Checker unit tests — the vector-clock algorithm itself
//     (message edges, lock edges, fork/join edges, write epochs,
//     read-set checks, dedup) runs in EVERY build configuration.
//  2. Machine-level tests (compiled only with -DPANDA_HB=ON): a clean
//     seeded-lossy collective reports ZERO races, and a deliberately
//     unordered shared access injected from two rank threads is caught.
//  3. The determinism contract: Machine::SetScheduleSeed perturbs the
//     real-thread schedule (launch order, wall-clock yields) and MUST
//     NOT change a single bit of virtual time or file contents — eight
//     seeds plus the unperturbed baseline are compared bit-exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "iosim/block_cache.h"
#include "iosim/sim_fs.h"
#include "msg/hb.h"
#include "panda/protocol.h"
#include "panda/report.h"
#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::VerifyPattern;

// ---- hb::Checker unit tests (every build) ----------------------------

TEST(HbChecker, UnorderedWritesAreARace) {
  hb::Checker c(2);
  int obj = 0;
  c.OnAccess(0, &obj, "obj", /*is_write=*/true);
  c.OnAccess(1, &obj, "obj", /*is_write=*/true);

  const std::vector<hb::Race> races = c.Races();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].object, "obj");
  EXPECT_EQ(races[0].prev_rank, 0);
  EXPECT_TRUE(races[0].prev_write);
  EXPECT_EQ(races[0].rank, 1);
  EXPECT_TRUE(races[0].write);
  EXPECT_NE(races[0].ToString().find("obj"), std::string::npos);
}

TEST(HbChecker, MessageEdgeOrdersAccesses) {
  hb::Checker c(2);
  int obj = 0;
  c.OnAccess(0, &obj, "obj", true);
  c.OnSend(0, /*msg_id=*/42);
  c.OnRecv(1, /*msg_id=*/42);
  c.OnAccess(1, &obj, "obj", true);
  EXPECT_EQ(c.race_count(), 0u);
}

TEST(HbChecker, SendAfterAccessDoesNotOrderIt) {
  hb::Checker c(2);
  int obj = 0;
  // The send snapshot is taken BEFORE this write: receiving the message
  // does not license rank 1 to touch the object.
  c.OnSend(0, 42);
  c.OnAccess(0, &obj, "obj", true);
  c.OnRecv(1, 42);
  c.OnAccess(1, &obj, "obj", true);
  EXPECT_EQ(c.race_count(), 1u);
}

TEST(HbChecker, LockEdgesOrderCriticalSections) {
  hb::Checker c(2);
  int obj = 0;
  int mu = 0;
  c.OnLockAcquire(0, &mu);
  c.OnAccess(0, &obj, "obj", true);
  c.OnLockRelease(0, &mu);
  c.OnLockAcquire(1, &mu);
  c.OnAccess(1, &obj, "obj", true);
  c.OnLockRelease(1, &mu);
  EXPECT_EQ(c.race_count(), 0u);
}

TEST(HbChecker, RunJoinOrdersAcrossRepetitions) {
  hb::Checker c(2);
  int obj = 0;
  c.OnRunStart();
  c.OnAccess(0, &obj, "obj", true);
  c.OnRunEnd();  // rank 0's write joins into the driver...
  c.OnRunStart();  // ...and the driver fans out to every rank.
  c.OnAccess(1, &obj, "obj", true);
  c.OnRunEnd();
  EXPECT_EQ(c.race_count(), 0u);
}

TEST(HbChecker, ReadsNeverRaceWithReads) {
  hb::Checker c(3);
  int obj = 0;
  c.OnAccess(0, &obj, "obj", /*is_write=*/false);
  c.OnAccess(1, &obj, "obj", /*is_write=*/false);
  c.OnAccess(2, &obj, "obj", /*is_write=*/false);
  EXPECT_EQ(c.race_count(), 0u);
}

TEST(HbChecker, WriteAfterUnorderedReadIsARace) {
  hb::Checker c(2);
  int obj = 0;
  c.OnAccess(0, &obj, "obj", /*is_write=*/false);
  c.OnAccess(1, &obj, "obj", /*is_write=*/true);

  const std::vector<hb::Race> races = c.Races();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].prev_rank, 0);
  EXPECT_FALSE(races[0].prev_write);
  EXPECT_TRUE(races[0].write);
}

TEST(HbChecker, DuplicateFindingsAreDeduped) {
  hb::Checker c(2);
  int obj = 0;
  // read0 / write1 / read0 / write1: the second write1 conflicts with
  // the second read0 exactly like the first pair — same (object, rank
  // pair, kind pair) key, reported once.
  c.OnAccess(0, &obj, "obj", false);
  c.OnAccess(1, &obj, "obj", true);   // race: read0 / write1
  c.OnAccess(0, &obj, "obj", false);  // race: write1 / read0
  c.OnAccess(1, &obj, "obj", true);   // deduped
  EXPECT_EQ(c.race_count(), 2u);
}

TEST(HbChecker, ClearRacesRearmsReporting) {
  hb::Checker c(2);
  int obj = 0;
  c.OnAccess(0, &obj, "obj", true);
  c.OnAccess(1, &obj, "obj", true);
  ASSERT_EQ(c.race_count(), 1u);
  c.ClearRaces();
  EXPECT_EQ(c.race_count(), 0u);
  // The same conflicting pair can be found again after a reset.
  c.OnAccess(0, &obj, "obj", true);
  EXPECT_EQ(c.race_count(), 1u);
}

TEST(HbChecker, ForgottenMessagesCarryNoEdge) {
  hb::Checker c(2);
  int obj = 0;
  c.OnAccess(0, &obj, "obj", true);
  c.OnSend(0, 7);
  c.ForgetMessages();  // epoch boundary: snapshots dropped
  c.OnRecv(1, 7);      // no-op — the id is unknown now
  c.OnAccess(1, &obj, "obj", true);
  EXPECT_EQ(c.race_count(), 1u);
}

TEST(HbChecker, UntrackedMessageIdIsIgnored) {
  hb::Checker c(2);
  c.OnSend(0, 0);
  c.OnRecv(1, 0);
  EXPECT_EQ(c.race_count(), 0u);
}

// ---- shared workload --------------------------------------------------

struct SeededOutcome {
  std::vector<double> client_clock_s;
  std::vector<double> server_clock_s;
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::vector<std::vector<std::byte>> file_bytes;  // per server
  std::size_t races = 0;
};

std::vector<std::byte> FileBytes(Machine& machine, int server,
                                 const std::string& name) {
  FileSystem& fs = machine.server_fs(server);
  if (!fs.Exists(name)) return {};
  std::unique_ptr<File> file = fs.Open(name, OpenMode::kRead);
  std::vector<std::byte> out(static_cast<size_t>(file->Size()));
  file->ReadAt(0, out, static_cast<std::int64_t>(out.size()));
  return out;
}

// One seeded-lossy write+read collective (the fig4 smoke shape), with
// the schedule-perturbation layer armed by `schedule_seed` (0 = off).
SeededOutcome RunSeeded(std::uint64_t schedule_seed, bool with_loss) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  const int kClients = 4;
  const int kServers = 2;
  Machine machine = Machine::Simulated(kClients, kServers, params,
                                       /*store_data=*/true,
                                       /*timing_only=*/false);
  if (with_loss) {
    LossSpec loss;
    loss.seed = 7;
    loss.drop_prob = 0.05;
    loss.dup_prob = 0.05;
    machine.SetLoss(loss);
  }
  machine.SetScheduleSeed(schedule_seed);

  const World world{kClients, kServers};
  ArrayMeta meta;
  meta.name = "t";
  meta.elem_size = 4;
  const Shape shape{16, 12, 8};
  meta.memory = Schema(shape, Mesh(Shape{2, 2}),
                       {DimDist::Block(), DimDist::Block(), DimDist::None()});
  meta.disk = Schema(shape, Mesh(Shape{kServers}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 11);
        client.WriteArray(a);
        client.ReadArray(a);
        VerifyPattern(a, 11);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  SeededOutcome out;
  const MachineReport report = Snapshot(machine);
  out.client_clock_s = report.client_clock_s;
  out.server_clock_s = report.server_clock_s;
  out.messages_sent = report.messages.messages_sent;
  out.bytes_sent = report.messages.bytes_sent;
  for (int s = 0; s < kServers; ++s) {
    out.file_bytes.push_back(FileBytes(
        machine, s, DataFileName("", meta.name, Purpose::kGeneral, s)));
  }
  if (const hb::Checker* checker = machine.hb_checker()) {
    out.races = checker->race_count();
  }
  return out;
}

// ---- machine-level race detection (-DPANDA_HB=ON builds only) --------

#if PANDA_HB_ENABLED

TEST(HbMachine, CheckerIsArmed) {
  Sp2Params params = Sp2Params::Functional();
  Machine machine =
      Machine::Simulated(2, 1, params, /*store_data=*/true, false);
  ASSERT_NE(machine.hb_checker(), nullptr);
  EXPECT_EQ(machine.hb_checker()->nranks(), 3);
}

TEST(HbMachine, SeededLossyCollectiveHasNoRaces) {
  // The full protocol under drops+dups: every stamped shared access
  // (reliable-layer bookkeeping, server file systems) must be ordered
  // by a message, lock, or fork/join edge.
  const SeededOutcome outcome = RunSeeded(/*schedule_seed=*/3, true);
  EXPECT_EQ(outcome.races, 0u);
}

TEST(HbMachine, InjectedUnorderedAccessIsCaught) {
  Sp2Params params = Sp2Params::Functional();
  Machine machine =
      Machine::Simulated(2, 1, params, /*store_data=*/true, false);
  int shared = 0;
  // Two rank threads touch `shared` with no message between them: the
  // only edges are the fork from the driver, which orders neither
  // against the other.
  machine.Run(
      [&](Endpoint&, int) {
        hb::StampAccess(&shared, "test.shared", /*is_write=*/true);
      },
      [&](Endpoint&, int) {});

  ASSERT_NE(machine.hb_checker(), nullptr);
  const std::vector<hb::Race> races = machine.hb_checker()->Races();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].object, "test.shared");
  EXPECT_TRUE(races[0].prev_write);
  EXPECT_TRUE(races[0].write);
}

TEST(HbMachine, MessageEdgeLicensesHandoff) {
  Sp2Params params = Sp2Params::Functional();
  Machine machine =
      Machine::Simulated(2, 1, params, /*store_data=*/true, false);
  int shared = 0;
  // Rank 0 writes then sends; rank 1 receives then writes: the message
  // edge orders the pair, so the identical access pattern is clean.
  machine.Run(
      [&](Endpoint& ep, int idx) {
        if (idx == 0) {
          hb::StampAccess(&shared, "test.shared", true);
          Message m;
          ep.Send(/*dst=*/1, kTagApp, std::move(m));
        } else {
          (void)ep.Recv(/*src=*/0, kTagApp);
          hb::StampAccess(&shared, "test.shared", true);
        }
      },
      [&](Endpoint&, int) {});

  ASSERT_NE(machine.hb_checker(), nullptr);
  EXPECT_EQ(machine.hb_checker()->race_count(), 0u);
}

TEST(HbMachine, UnorderedBlockCacheSharingIsCaught) {
  // BlockCache's LRU list / block map / stream table are unsynchronized
  // shared state: two rank threads hammering one cache with no message
  // between them is a race, and the instrumentation in
  // src/iosim/block_cache.cc must surface it.
  Sp2Params params = Sp2Params::Functional();
  Machine machine =
      Machine::Simulated(2, 1, params, /*store_data=*/true, false);
  // A timing-only simulated base file of its own: the machine supplies
  // only the rank threads and the armed checker.
  VirtualClock cache_clock;
  SimFileSystem::Options fs_opt;
  fs_opt.store_data = false;
  fs_opt.clock = &cache_clock;
  SimFileSystem base_fs(fs_opt);
  std::unique_ptr<File> base = base_fs.Open("bc_base", OpenMode::kReadWrite);
  BlockCache::Options opt;
  opt.block_bytes = 64;
  opt.capacity_blocks = 8;
  BlockCache cache(base.get(), opt);
  machine.Run(
      [&](Endpoint&, int idx) {
        cache.WriteAt(static_cast<std::int64_t>(idx) * 64, {}, 64);
      },
      [&](Endpoint&, int) {});

  ASSERT_NE(machine.hb_checker(), nullptr);
  const std::vector<hb::Race> races = machine.hb_checker()->Races();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].object, "iosim.block_cache");
  EXPECT_TRUE(races[0].prev_write);
  EXPECT_TRUE(races[0].write);
}

TEST(HbMachine, MessageOrderedBlockCacheHandoffIsClean) {
  // The same two accesses with a message edge between them: rank 0
  // touches the cache then sends, rank 1 receives then touches — an
  // ordered handoff, zero races. (Cache reads stamp as writes too:
  // LRU reordering mutates shared state.)
  Sp2Params params = Sp2Params::Functional();
  Machine machine =
      Machine::Simulated(2, 1, params, /*store_data=*/true, false);
  VirtualClock cache_clock;
  SimFileSystem::Options fs_opt;
  fs_opt.store_data = false;
  fs_opt.clock = &cache_clock;
  SimFileSystem base_fs(fs_opt);
  std::unique_ptr<File> base = base_fs.Open("bc_base", OpenMode::kReadWrite);
  BlockCache::Options opt;
  opt.block_bytes = 64;
  opt.capacity_blocks = 8;
  BlockCache cache(base.get(), opt);
  machine.Run(
      [&](Endpoint& ep, int idx) {
        if (idx == 0) {
          cache.WriteAt(0, {}, 64);
          Message m;
          ep.Send(/*dst=*/1, kTagApp, std::move(m));
        } else {
          (void)ep.Recv(/*src=*/0, kTagApp);
          cache.ReadAt(0, {}, 64);
        }
      },
      [&](Endpoint&, int) {});

  ASSERT_NE(machine.hb_checker(), nullptr);
  EXPECT_EQ(machine.hb_checker()->race_count(), 0u);
}

TEST(HbMachine, FailoverRecoveryHasNoRaces) {
  // The hardest ordered-handoff claim in the tree: a server crash-stops
  // mid-write, the survivors run the recovery rounds (adopted-chunk
  // rewrite, journal republication, staged checkpoint renames, group
  // metadata with the dead set) — every stamped file-system and
  // transport access must still be ordered by message, lock, or
  // fork/join edges. A failover that "works" only because the host
  // scheduler was kind shows up here as a race.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 3, params, /*store_data=*/true,
                                       /*timing_only=*/false);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  machine.KillServerAfterSends(/*server_index=*/1, /*after_more_sends=*/3);
  const World world{4, 3};
  ServerOptions options;
  options.failover = true;
  options.disk_checksums = true;
  options.journal = true;
  options.robustness = &machine.robustness();
  ArrayLayout memory("m", {2, 2});
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        client.set_robustness(&machine.robustness());
        client.set_failover(true);
        Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                {BLOCK, BLOCK});
        a.BindClient(idx);
        FillPattern(a, 77);
        client.WriteArray(a);
        std::memset(a.local_data().data(), 0, a.local_data().size());
        client.ReadArray(a);
        VerifyPattern(a, 77);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });

  EXPECT_GE(machine.robustness().Snapshot().failovers_completed, 1);
  ASSERT_NE(machine.hb_checker(), nullptr);
  for (const hb::Race& race : machine.hb_checker()->Races()) {
    ADD_FAILURE() << race.ToString();
  }
}

#endif  // PANDA_HB_ENABLED

// ---- schedule-seed determinism (every build) -------------------------

TEST(ScheduleSeeds, PerturbedRunsAreBitIdentical) {
  // The load-bearing claim of the whole reproduction: virtual clocks
  // and file bytes are a function of the protocol, not of the host
  // scheduler. Eight perturbation seeds (shuffled thread launch order,
  // seeded yield/sleep jitter inside every send and receive) against
  // the unperturbed baseline, all bit-identical.
  const SeededOutcome base = RunSeeded(/*schedule_seed=*/0, true);
  ASSERT_EQ(base.client_clock_s.size(), 4u);
  ASSERT_EQ(base.server_clock_s.size(), 2u);
  ASSERT_EQ(base.file_bytes.size(), 2u);
  EXPECT_GT(base.file_bytes[0].size() + base.file_bytes[1].size(), 0u);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const SeededOutcome run = RunSeeded(seed, true);
    ASSERT_EQ(run.client_clock_s.size(), base.client_clock_s.size());
    for (size_t i = 0; i < base.client_clock_s.size(); ++i) {
      // Bit-identical, not nearly-equal.
      EXPECT_EQ(run.client_clock_s[i], base.client_clock_s[i])
          << "client " << i << " diverged under schedule seed " << seed;
    }
    ASSERT_EQ(run.server_clock_s.size(), base.server_clock_s.size());
    for (size_t i = 0; i < base.server_clock_s.size(); ++i) {
      EXPECT_EQ(run.server_clock_s[i], base.server_clock_s[i])
          << "server " << i << " diverged under schedule seed " << seed;
    }
    EXPECT_EQ(run.messages_sent, base.messages_sent) << "seed " << seed;
    EXPECT_EQ(run.bytes_sent, base.bytes_sent) << "seed " << seed;
    ASSERT_EQ(run.file_bytes.size(), base.file_bytes.size());
    for (size_t s = 0; s < base.file_bytes.size(); ++s) {
      EXPECT_EQ(run.file_bytes[s], base.file_bytes[s])
          << "server " << s << " file bytes diverged under seed " << seed;
    }
  }
}

}  // namespace
}  // namespace panda
