// Soak test: long randomized end-to-end scenarios on one machine —
// many collectives of random schema pairs, array counts, element sizes
// and operations back to back, all byte-verified. Exercises mailbox
// ordering, plan determinism and file-offset bookkeeping across
// consecutive collectives far beyond what the targeted tests do.
#include <gtest/gtest.h>

#include "test_harness.h"
#include "util/random.h"

namespace panda {
namespace {

using test::FillPattern;
using test::RunCluster;
using test::VerifyPattern;

Schema RandomBlockSchema(Rng& rng, const Shape& shape, int min_mesh_size) {
  const int r = shape.rank();
  for (;;) {
    std::vector<DimDist> dists(static_cast<size_t>(r), DimDist::None());
    Index mesh_dims;
    for (int d = 0; d < r; ++d) {
      if (rng.NextBelow(2) == 0) {
        dists[static_cast<size_t>(d)] = DimDist::Block();
        mesh_dims.Append(1 + static_cast<std::int64_t>(rng.NextBelow(3)));
      }
    }
    if (mesh_dims.rank() == 0) continue;
    Schema schema(shape, Mesh(mesh_dims), dists);
    if (schema.mesh().size() >= min_mesh_size) return schema;
  }
}

TEST(SoakTest, ManyRandomCollectivesOnOneMachine) {
  Rng rng(20260706);
  const int kClients = 6;
  const int kServers = 3;
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(kClients, kServers, params,
                                       /*store_data=*/true, false);

  // Pre-draw the scenario so every rank sees the same plan.
  struct Step {
    Shape shape;
    Schema memory;
    Schema disk;
    std::int64_t elem;
    std::uint64_t salt;
  };
  std::vector<Step> steps;
  for (int i = 0; i < 25; ++i) {
    Step step;
    const int rank = 2 + static_cast<int>(rng.NextBelow(2));
    step.shape = Index::Zeros(rank);
    for (int d = 0; d < rank; ++d) {
      step.shape[d] = 2 + static_cast<std::int64_t>(rng.NextBelow(14));
    }
    // Memory mesh must have exactly kClients positions: draw dims whose
    // product is kClients (6 = 6 or 2x3 or 3x2).
    const int choice = static_cast<int>(rng.NextBelow(3));
    if (choice == 0) {
      step.memory = Schema(step.shape, Mesh(Shape{kClients}),
                           [&] {
                             std::vector<DimDist> d(
                                 static_cast<size_t>(rank), DimDist::None());
                             d[0] = DimDist::Block();
                             return d;
                           }());
    } else {
      Shape mesh = choice == 1 ? Shape{2, 3} : Shape{3, 2};
      std::vector<DimDist> d(static_cast<size_t>(rank), DimDist::None());
      d[0] = DimDist::Block();
      d[1] = DimDist::Block();
      step.memory = Schema(step.shape, Mesh(mesh), d);
    }
    step.disk = RandomBlockSchema(rng, step.shape, 1);
    step.elem = (rng.NextBelow(2) == 0) ? 4 : 8;
    step.salt = rng.Next();
    steps.push_back(std::move(step));
  }

  RunCluster(machine, [&](PandaClient& client, int idx) {
    for (size_t i = 0; i < steps.size(); ++i) {
      const Step& step = steps[i];
      Array a("soak" + std::to_string(i), step.elem, step.memory, step.disk);
      a.BindClient(idx);
      FillPattern(a, step.salt);
      client.WriteArray(a);
      std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
      client.ReadArray(a);
      VerifyPattern(a, step.salt);
    }
  });
}

TEST(SoakTest, LongTimestepStreamWithPeriodicCheckpoints) {
  // A 40-iteration Figure 2 lifecycle: timestep every iteration,
  // checkpoint every 8, three restarts sprinkled in, every array
  // verified after every read-back.
  const int kClients = 4;
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine =
      Machine::Simulated(kClients, 2, params, /*store_data=*/true, false);

  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    ArrayLayout disk("d", {2});
    Array u("u", {12, 12}, 8, memory, {BLOCK, BLOCK}, disk, {BLOCK, NONE});
    Array v("v", {8, 10}, 4, memory, {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
    u.BindClient(idx);
    v.BindClient(idx);
    ArrayGroup group("stream", "stream.schema");
    group.Include(&u);
    group.Include(&v);

    std::uint64_t checkpoint_salt = 0;
    for (std::uint64_t t = 0; t < 40; ++t) {
      FillPattern(u, 1000 + t);
      FillPattern(v, 2000 + t);
      group.Timestep(client);
      if (t % 8 == 7) {
        group.Checkpoint(client);
        checkpoint_salt = t;
      }
      if (t == 20 || t == 33) {
        // Crash-and-restart mid-stream.
        std::fill(u.local_data().begin(), u.local_data().end(),
                  std::byte{0});
        std::fill(v.local_data().begin(), v.local_data().end(),
                  std::byte{0});
        group.Restart(client);
        VerifyPattern(u, 1000 + checkpoint_salt);
        VerifyPattern(v, 2000 + checkpoint_salt);
      }
    }

    // Spot-check random earlier timesteps.
    for (const std::uint64_t t : {0ULL, 13ULL, 26ULL, 39ULL}) {
      group.ReadTimestep(client, static_cast<std::int64_t>(t));
      VerifyPattern(u, 1000 + t);
      VerifyPattern(v, 2000 + t);
    }
  });
}

TEST(SoakTest, AlternatingOpsAcrossManyGroups) {
  // Several groups with interleaved lifecycles against one server set.
  const int kClients = 4;
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine =
      Machine::Simulated(kClients, 3, params, /*store_data=*/true, false);

  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {4});
    std::vector<std::unique_ptr<Array>> arrays;
    std::vector<std::unique_ptr<ArrayGroup>> groups;
    for (int g = 0; g < 5; ++g) {
      arrays.push_back(std::make_unique<Array>(
          "g" + std::to_string(g), Shape{16, 4 + g}, 4, memory,
          std::vector<Distribution>{BLOCK, NONE}, memory,
          std::vector<Distribution>{BLOCK, NONE}));
      arrays.back()->BindClient(idx);
      groups.push_back(
          std::make_unique<ArrayGroup>("grp" + std::to_string(g)));
      groups.back()->Include(arrays.back().get());
    }
    for (int round = 0; round < 6; ++round) {
      for (int g = 0; g < 5; ++g) {
        FillPattern(*arrays[static_cast<size_t>(g)],
                    static_cast<std::uint64_t>(round * 10 + g));
        groups[static_cast<size_t>(g)]->Timestep(client);
      }
      // Read back a rotating subset.
      const int g = round % 5;
      groups[static_cast<size_t>(g)]->ReadTimestep(client, round);
      VerifyPattern(*arrays[static_cast<size_t>(g)],
                    static_cast<std::uint64_t>(round * 10 + g));
    }
  });
}

TEST(SoakTest, MixedWorkloadRandomizedInterleaving) {
  // Two applications with randomized per-app op sequences hammer one
  // shared server pool; every read-back verified. Run twice to shake
  // different wall-clock interleavings of the masters' requests.
  for (int trial = 0; trial < 2; ++trial) {
    Sp2Params params = Sp2Params::Functional();
    params.subchunk_bytes = 512;
    ThreadTransport::Config cfg;
    cfg.net = params.net;
    const int per_app = 3;
    const int servers = 2;
    ThreadTransport transport(2 * per_app + servers, cfg);
    World base;
    base.num_clients = per_app;
    base.num_servers = servers;
    base.first_server = 2 * per_app;

    SimFileSystem::Options fs_opt;
    fs_opt.disk = DiskModel::Instant();
    std::vector<std::unique_ptr<SimFileSystem>> fs;
    for (int s = 0; s < servers; ++s) {
      fs.push_back(std::make_unique<SimFileSystem>(fs_opt));
    }

    transport.Run([&](Endpoint& ep) {
      if (base.is_server_rank(ep.rank())) {
        ServerOptions options;
        options.num_applications = 2;
        ServerMain(ep,
                   *fs[static_cast<size_t>(base.server_index(ep.rank()))],
                   base, params, options);
        return;
      }
      const bool is_a = ep.rank() < per_app;
      const World world =
          is_a ? base : base.WithClients(per_app, per_app);
      PandaClient client(ep, world, params);
      ArrayLayout memory("m", {per_app});
      Array a(is_a ? "soakA" : "soakB", {18, 6}, 4, memory, {BLOCK, NONE},
              memory, {BLOCK, NONE});
      a.BindClient(client.index());
      ArrayGroup group(is_a ? "ga" : "gb");
      group.Include(&a);

      // Same RNG on every rank of an app => same op sequence.
      Rng rng(is_a ? 123 + trial : 456 + trial);
      for (int i = 0; i < 12; ++i) {
        const std::uint64_t salt =
            (is_a ? 10000u : 20000u) + static_cast<std::uint64_t>(i);
        switch (rng.NextBelow(3)) {
          case 0:
            FillPattern(a, salt);
            group.Timestep(client);
            group.ReadTimestep(client, group.timesteps_written() - 1);
            VerifyPattern(a, salt);
            break;
          case 1:
            FillPattern(a, salt);
            group.Checkpoint(client);
            std::fill(a.local_data().begin(), a.local_data().end(),
                      std::byte{0});
            group.Restart(client);
            VerifyPattern(a, salt);
            break;
          default:
            FillPattern(a, salt);
            group.Write(client);
            std::fill(a.local_data().begin(), a.local_data().end(),
                      std::byte{0});
            group.Read(client);
            VerifyPattern(a, salt);
            break;
        }
      }
      client.Shutdown();
    });
  }
}

}  // namespace
}  // namespace panda
