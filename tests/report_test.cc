// Message-count invariants and machine reports: the protocol must move
// exactly the traffic the plan predicts — no retries, duplicates, or
// silent extras — and the report must account every byte on disk.
#include <gtest/gtest.h>

#include "iosim/faulty_fs.h"
#include "panda/report.h"
#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::RunCluster;

struct CountCase {
  const char* name;
  int clients;
  Shape mesh;
  int servers;
  bool traditional;
  IoOp op;
};

class MessageCountTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(MessageCountTest, ExactlyPlannedTraffic) {
  const CountCase& cc = GetParam();
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  Machine machine = Machine::Simulated(cc.clients, cc.servers, params,
                                       /*store_data=*/true, false);
  const World world{cc.clients, cc.servers};

  ArrayMeta meta;
  meta.name = "m";
  meta.elem_size = 4;
  const Shape shape{24, 16, 8};
  std::vector<DimDist> dists(3, DimDist::None());
  {
    // Distribute as many leading dims as the mesh has.
    for (int d = 0; d < cc.mesh.rank(); ++d) {
      dists[static_cast<size_t>(d)] = DimDist::Block();
    }
  }
  meta.memory = Schema(shape, Mesh(cc.mesh), dists);
  meta.disk = cc.traditional
                  ? Schema(shape, Mesh(Shape{cc.servers}),
                           {DimDist::Block(), DimDist::None(),
                            DimDist::None()})
                  : meta.memory;

  // One untimed write so reads have files; reset stats; one measured op.
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 3);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  machine.ResetClocksAndStats();

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 3);
        if (cc.op == IoOp::kWrite) {
          client.WriteArray(a);
        } else {
          client.ReadArray(a);
        }
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  const MachineReport report = Snapshot(machine);
  const std::int64_t expected = ExpectedCollectiveMessages(
      {&meta, 1}, cc.op, world, params.subchunk_bytes);
  // +1 for the shutdown request, + broadcast of it to the servers.
  const std::int64_t shutdown_msgs = 1 + (cc.servers - 1);
  EXPECT_EQ(report.messages.messages_sent, expected + shutdown_msgs);
  EXPECT_EQ(report.messages.messages_sent, report.messages.messages_received);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MessageCountTest,
    ::testing::Values(
        CountCase{"nat_write_8x2", 8, {2, 2, 2}, 2, false, IoOp::kWrite},
        CountCase{"nat_read_8x2", 8, {2, 2, 2}, 2, false, IoOp::kRead},
        CountCase{"nat_write_4x3", 4, {4}, 3, false, IoOp::kWrite},
        CountCase{"trad_write_8x4", 8, {2, 2, 2}, 4, true, IoOp::kWrite},
        CountCase{"trad_read_8x4", 8, {2, 2, 2}, 4, true, IoOp::kRead},
        CountCase{"trad_write_6x2", 6, {6}, 2, true, IoOp::kWrite}),
    [](const ::testing::TestParamInfo<CountCase>& info) {
      return info.param.name;
    });

TEST(ReportTest, DiskBytesAccountedExactly) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  ArrayMeta meta;
  meta.name = "acct";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;

  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    FillPattern(a, 7);
    client.WriteArray(a);
  });

  const MachineReport report = Snapshot(machine);
  std::int64_t written = 0;
  std::int64_t syncs = 0;
  for (const FsStats& fs : report.server_fs) {
    written += fs.bytes_written;
    syncs += fs.syncs;
  }
  EXPECT_EQ(written, meta.total_bytes());
  EXPECT_EQ(syncs, 2);  // one fsync per server per collective write
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ReportTest, RobustnessCountersZeroOnCleanRun) {
  // A fault-free run must leave every robustness counter at zero and
  // keep the robustness line out of the report — fault tolerance is
  // invisible until something actually goes wrong.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  ArrayMeta meta;
  meta.name = "clean";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;

  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    FillPattern(a, 11);
    client.WriteArray(a);
    client.ReadArray(a);
  });

  const MachineReport report = Snapshot(machine);
  EXPECT_TRUE(report.robustness.AllZero());
  EXPECT_EQ(report.ToString().find("robustness"), std::string::npos);
}

TEST(ReportTest, RobustnessCountersSurfaceInjectedFaults) {
  // Under injected transient faults the same workload still succeeds,
  // but the retries now show up in the counters and the report text.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ArrayMeta meta;
  meta.name = "weather";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;

  std::vector<std::unique_ptr<FaultyFileSystem>> faulty;
  for (int s = 0; s < 2; ++s) {
    FaultModel m;
    m.fault_at_ops = {1, 3};  // scripted: each heals on the retry
    faulty.push_back(
        std::make_unique<FaultyFileSystem>(&machine.server_fs(s), m));
  }
  ServerOptions options;
  options.robustness = &machine.robustness();
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        client.set_robustness(&machine.robustness());
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx);
        FillPattern(a, 11);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, *faulty[static_cast<size_t>(sidx)], world, params,
                   options);
      });

  const MachineReport report = Snapshot(machine);
  EXPECT_FALSE(report.robustness.AllZero());
  EXPECT_EQ(report.robustness.io_retries, 4);  // 2 scripted faults x 2 nodes
  EXPECT_EQ(report.robustness.io_giveups, 0);
  EXPECT_EQ(report.robustness.collectives_aborted, 0);
  EXPECT_NE(report.ToString().find("robustness"), std::string::npos);
}

TEST(ReportTest, TransportFaultCountersZeroAndSilentOnCleanRun) {
  // With the lossy layer and the kill injector disarmed, the transport
  // fault counters must all be zero and the transport-faults line must
  // stay out of the report — the acceptance bar for clean runs.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  ArrayMeta meta;
  meta.name = "clean";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    FillPattern(a, 9);
    client.WriteArray(a);
  });
  const MachineReport report = Snapshot(machine);
  EXPECT_TRUE(report.transport.AllZero());
  EXPECT_EQ(report.ToString().find("transport faults"), std::string::npos);
  EXPECT_EQ(report.ToString().find("failover"), std::string::npos);
}

TEST(ReportTest, TransportFaultCountersSurfaceInjectedLoss) {
  // The same workload under a seeded lossy wire still completes, and
  // the report now carries the injected-fault accounting, with the
  // recovery invariants visible: retransmits == drops, suppressed
  // duplicates == injected duplicates.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  LossSpec loss;
  loss.seed = 11;
  loss.drop_prob = 0.08;
  loss.dup_prob = 0.08;
  machine.SetLoss(loss);
  ArrayMeta meta;
  meta.name = "weather";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    FillPattern(a, 9);
    client.WriteArray(a);
    client.ReadArray(a);
  });
  const MachineReport report = Snapshot(machine);
  EXPECT_FALSE(report.transport.AllZero());
  EXPECT_GT(report.transport.drops_injected + report.transport.dups_injected,
            0);
  EXPECT_EQ(report.transport.retransmits, report.transport.drops_injected);
  EXPECT_EQ(report.transport.dups_suppressed, report.transport.dups_injected);
  EXPECT_NE(report.ToString().find("transport faults"), std::string::npos);
  // Logical message accounting is fault-blind: the protocol above the
  // reliable layer saw exactly-once delivery.
  EXPECT_EQ(report.messages.messages_sent, report.messages.messages_received);
}

TEST(ReportTest, FailoverCountersSurfaceInTheReport) {
  // A completed failover shows up as its own report line: failovers,
  // adopted chunks, journal records.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 3, params, true, false);
  const World world{4, 3};
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  machine.KillServerAfterSends(1, 2);
  ServerOptions options;
  options.failover = true;
  options.journal = true;
  options.robustness = &machine.robustness();
  ArrayLayout memory("m", {2, 2});
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        client.set_robustness(&machine.robustness());
        client.set_failover(true);
        Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                {BLOCK, BLOCK});
        a.BindClient(idx);
        FillPattern(a, 21);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });
  const MachineReport report = Snapshot(machine);
  EXPECT_GE(report.robustness.failovers_completed, 1);
  EXPECT_GT(report.robustness.chunks_adopted, 0);
  EXPECT_GT(report.robustness.journal_records_written, 0);
  EXPECT_EQ(report.transport.ranks_killed, 1);
  EXPECT_NE(report.ToString().find("failover:"), std::string::npos);
  EXPECT_NE(report.ToString().find("ranks killed"), std::string::npos);
}

TEST(ReportTest, SequentialityOfServerDirectedWrites) {
  // The headline mechanism: a server-directed write produces exactly
  // one seek per (server, file) — everything else is sequential.
  Sp2Params params = Sp2Params::Nas();
  params.subchunk_bytes = 1 * kMiB;
  Machine machine = Machine::Simulated(8, 2, params, false, true);
  const World world{8, 2};
  ArrayMeta meta;
  meta.name = "seq";
  meta.elem_size = 4;
  meta.memory = Schema({32, 512, 512}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = meta.memory;

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  for (int s = 0; s < 2; ++s) {
    const FsStats& fs = machine.server_fs(s).stats();
    EXPECT_EQ(fs.seeks, 1) << "server " << s;  // only the initial position
    EXPECT_EQ(fs.writes, 16);                  // 16 MB at 1 MB sub-chunks
  }
}

}  // namespace
}  // namespace panda
