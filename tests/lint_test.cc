// panda_lint (tools/analyze) unit tests: each project-invariant rule is
// exercised against a small fixture "tree" — one seeded violation per
// rule, asserting rule id, relative path, and line — plus the
// suppression contract (`// panda-lint: allow(...)` / allow-file) and
// the tokenizer's comment/string/raw-string handling that the rules
// depend on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/rules.h"

namespace panda {
namespace lint {
namespace {

// Lints one in-memory fixture file under `config`.
std::vector<Diagnostic> Lint(const std::string& rel_path,
                             const std::string& content,
                             LintConfig config = {}) {
  return CheckFile(Tokenize(rel_path, content), config);
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

// ---- tokenizer --------------------------------------------------------

TEST(LintLexer, CommentsAndStringsAreNotCode) {
  // The banned identifier appears only inside comments and literals:
  // the tokenizer must not surface it as an identifier token.
  const SourceFile f = Tokenize("src/panda/x.cc",
                                "// steady_clock in a line comment\n"
                                "/* steady_clock in a block\n"
                                "   comment */\n"
                                "const char* s = \"steady_clock\";\n"
                                "const char* r = R\"x(steady_clock)x\";\n");
  for (const Token& t : f.tokens) {
    EXPECT_FALSE(t.kind == TokKind::kIdent && t.text == "steady_clock")
        << "line " << t.line;
  }
  EXPECT_TRUE(Lint("src/panda/x.cc",
                   "// steady_clock\nconst char* s = \"steady_clock\";\n")
                  .empty());
}

TEST(LintLexer, PreprocessorContinuationsStayOneToken) {
  const SourceFile f = Tokenize("src/panda/x.cc",
                                "#define M(a) \\\n  do_thing(a)\n"
                                "int y = 0;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens[0].kind, TokKind::kPrepro);
  // The continuation is folded into the directive's logical line.
  EXPECT_NE(f.tokens[0].text.find("do_thing"), std::string::npos);
}

TEST(LintLexer, TracksPragmaOnceAndIncludes) {
  const SourceFile f = Tokenize("src/panda/x.h",
                                "#pragma once\n"
                                "#include <vector>\n"
                                "#include \"panda/server.h\"\n");
  EXPECT_TRUE(f.IsHeader());
  EXPECT_EQ(f.pragma_once_count, 1);
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].second, "<vector>");
  EXPECT_EQ(f.includes[1].second, "\"panda/server.h\"");
}

// ---- wall-clock -------------------------------------------------------

TEST(LintRules, WallClockBannedOutsideTimingLayers) {
  const std::vector<Diagnostic> diags =
      Lint("src/panda/client.cc",
           "void f() {\n"
           "  auto t0 = std::chrono::steady_clock::now();\n"
           "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "wall-clock");
  EXPECT_EQ(diags[0].file, "src/panda/client.cc");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintRules, WallClockAllowedInWhitelistedLayers) {
  const std::string code =
      "void f() { auto t = std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(Lint("src/sp2/params.cc", code).empty());
  EXPECT_TRUE(Lint("src/msg/mailbox.cc", code).empty());
  EXPECT_TRUE(Lint("src/sched/wait.cc", code).empty());
  EXPECT_TRUE(Lint("src/iosim/posix_fs.cc", code).empty());
}

TEST(LintRules, WallClockCatchesTimeCallNotTimeWord) {
  EXPECT_TRUE(HasRule(Lint("src/panda/x.cc", "long t = time(nullptr);\n"),
                      "wall-clock"));
  // `time` as a plain identifier (variable name, member) is fine.
  EXPECT_TRUE(Lint("src/panda/x.cc", "double time = 0.0;\n").empty());
}

// ---- raw-io -----------------------------------------------------------

TEST(LintRules, RawIoOutsideRetryRunFlagged) {
  const std::vector<Diagnostic> diags =
      Lint("src/panda/server.cc",
           "void f(File* file) {\n"
           "  file->WriteAt(0, data, 64);\n"
           "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "raw-io");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintRules, RawIoInsideRetryRunIsClean) {
  EXPECT_TRUE(Lint("src/panda/server.cc",
                   "void f(File* file) {\n"
                   "  retry.Run(&clock, stats, [&] {\n"
                   "    file->WriteAt(0, data, 64);\n"
                   "  });\n"
                   "}\n")
                  .empty());
}

TEST(LintRules, RawIoIgnoresDesignatedLayersAndOtherDirs) {
  const std::string code = "void f(File* file) { file->Sync(); }\n";
  EXPECT_TRUE(Lint("src/panda/journal.cc", code).empty());
  EXPECT_TRUE(Lint("src/panda/integrity.cc", code).empty());
  EXPECT_TRUE(Lint("src/panda/frame_io.cc", code).empty());
  EXPECT_TRUE(Lint("src/iosim/sim_fs.cc", code).empty());
  EXPECT_TRUE(HasRule(Lint("src/panda/server.cc", code), "raw-io"));
}

// ---- raw-send ---------------------------------------------------------

TEST(LintRules, RawSendInternalsFlaggedOutsideMsg) {
  const std::vector<Diagnostic> diags =
      Lint("src/panda/client.cc",
           "void f(Mailbox& mb, Message m) {\n"
           "  mb.Deposit(std::move(m));\n"
           "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "raw-send");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(LintRules, RawSendAllowedInsideMsg) {
  EXPECT_TRUE(Lint("src/msg/transport.cc",
                   "void f(Mailbox& mb, Message m) {\n"
                   "  mb.Deposit(std::move(m));\n"
                   "}\n")
                  .empty());
}

// ---- raw-thread -------------------------------------------------------

TEST(LintRules, RawThreadFlaggedOutsideSchedulerLayers) {
  const std::vector<Diagnostic> diags =
      Lint("src/panda/server.cc",
           "void f() {\n"
           "  std::thread t([] {});\n"
           "  t.join();\n"
           "}\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "raw-thread");
  EXPECT_EQ(diags[0].file, "src/panda/server.cc");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_TRUE(HasRule(Lint("bench/bench_x.cc",
                           "void f() { std::jthread t([] {}); }\n"),
                      "raw-thread"));
  EXPECT_TRUE(HasRule(
      Lint("src/panda/server.cc",
           "void f() { pthread_create(&tid, nullptr, run, nullptr); }\n"),
      "raw-thread"));
}

TEST(LintRules, RawThreadAllowedInSchedulerLayers) {
  const std::string code = "void f() { std::thread t([] {}); t.join(); }\n";
  EXPECT_TRUE(Lint("src/sched/fiber_scheduler.cc", code).empty());
  EXPECT_TRUE(Lint("src/msg/transport.cc", code).empty());
}

TEST(LintRules, RawThreadIgnoresUnqualifiedThreadIdent) {
  // A member/variable named `thread` and std::thread utility reads
  // (hardware_concurrency, this_thread) are not thread spawns.
  EXPECT_TRUE(Lint("src/panda/server.cc", "int thread = 0;\n").empty());
  EXPECT_TRUE(
      Lint("src/panda/server.cc",
           "void f() { std::this_thread::yield(); }\n")
          .empty());
}

TEST(LintRules, RawThreadSuppressibleInline) {
  EXPECT_TRUE(Lint("tests/x_test.cc",
                   "void f() {\n"
                   "  // panda-lint: allow(raw-thread)\n"
                   "  std::thread t([] {});\n"
                   "}\n")
                  .empty());
}

// ---- span-coverage ----------------------------------------------------

TEST(LintRules, SpanCoverageFlagsUninstrumentedStage) {
  LintConfig config;
  config.span_manifest = {{"src/panda/server.cc", "ServerWriteArray"}};
  const std::vector<Diagnostic> diags =
      Lint("src/panda/server.cc",
           "void ServerWriteArray(Endpoint& ep) {\n"
           "  do_work(ep);\n"
           "}\n",
           config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "span-coverage");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, SpanCoverageAcceptsInstrumentedStage) {
  LintConfig config;
  config.span_manifest = {{"src/panda/server.cc", "ServerWriteArray"}};
  EXPECT_TRUE(Lint("src/panda/server.cc",
                   "void ServerWriteArray(Endpoint& ep) {\n"
                   "  PANDA_SPAN(span, trace::SpanKind::kServerWrite, 0);\n"
                   "  do_work(ep);\n"
                   "}\n",
                   config)
                  .empty());
}

TEST(LintRules, SpanCoverageFlagsMissingManifestFunction) {
  LintConfig config;
  config.span_manifest = {{"src/panda/server.cc", "NoSuchStage"}};
  const std::vector<Diagnostic> diags =
      Lint("src/panda/server.cc", "void Other() {}\n", config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "span-coverage");
  EXPECT_NE(diags[0].message.find("not found"), std::string::npos);
}

TEST(LintRules, SpanManifestParserSkipsCommentsAndBlanks) {
  const auto entries = ParseSpanManifest(
      "# protocol stages\n"
      "\n"
      "src/panda/server.cc ServerWriteArray\n"
      "src/msg/transport.cc DoSend  # trailing comment\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "src/panda/server.cc");
  EXPECT_EQ(entries[0].second, "ServerWriteArray");
  EXPECT_EQ(entries[1].second, "DoSend");
}

// ---- tag-coverage -----------------------------------------------------

namespace {
const char kMsgTagFixture[] =
    "#pragma once\n"
    "enum MsgTag : int {\n"
    "  kTagPieceData = 4,\n"
    "  kTagBarrier = 8,\n"
    "};\n";
}  // namespace

TEST(LintRules, TagCoverageFlagsUncoveredTag) {
  LintConfig config;
  // Seeded violation: kTagBarrier exists in the enum but the manifest
  // declares no integrity mechanism for it.
  config.tag_manifest = {{"kTagPieceData", "wire-crc"}};
  const std::vector<Diagnostic> diags =
      Lint("src/msg/message.h", kMsgTagFixture, config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "tag-coverage");
  EXPECT_EQ(diags[0].file, "src/msg/message.h");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("kTagBarrier"), std::string::npos);
}

TEST(LintRules, TagCoverageAcceptsFullyCoveredEnum) {
  LintConfig config;
  config.tag_manifest = {{"kTagPieceData", "wire-crc"},
                         {"kTagBarrier", "control"}};
  EXPECT_TRUE(Lint("src/msg/message.h", kMsgTagFixture, config).empty());
}

TEST(LintRules, TagCoverageFlagsUnknownMechanismAndStaleEntry) {
  LintConfig config;
  config.tag_manifest = {{"kTagPieceData", "pinky-swear"},
                         {"kTagBarrier", "control"},
                         {"kTagGone", "control"}};
  const std::vector<Diagnostic> diags =
      Lint("src/msg/message.h", kMsgTagFixture, config);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(HasRule(diags, "tag-coverage"));
  bool saw_mechanism = false;
  bool saw_stale = false;
  for (const Diagnostic& d : diags) {
    if (d.message.find("pinky-swear") != std::string::npos) {
      saw_mechanism = true;
    }
    if (d.message.find("kTagGone") != std::string::npos) saw_stale = true;
  }
  EXPECT_TRUE(saw_mechanism);
  EXPECT_TRUE(saw_stale);
}

TEST(LintRules, TagCoverageOnlyAppliesToMessageHeader) {
  LintConfig config;
  config.tag_manifest = {{"kTagPieceData", "wire-crc"}};
  // Same enum elsewhere: not the protocol header, not this rule's
  // business.
  EXPECT_TRUE(Lint("src/panda/other.h", kMsgTagFixture, config).empty());
}

TEST(LintRules, TagManifestParserReadsProtocolSpecMessageLines) {
  // Tag-coverage entries come from protocol.spec since panda_proto
  // subsumed the old span_manifest `tag` lines: each non-aux message
  // line yields (tag, integrity class); aux tags live outside the
  // MsgTag enum and must not be expected there.
  const std::string text =
      "# spec\n"
      "phase data\n"
      "message kTagPieceData phase=data integrity=wire-crc "
      "send=client recv=server  # payload crc\n"
      "message kTagBarrier phase=data integrity=control "
      "send=server recv=server\n"
      "message kTagIoReply phase=data integrity=unchecked "
      "send=app recv=app aux\n"
      "boundary ServerMain\n";
  const auto tags = ParseTagManifest(text);
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0].first, "kTagPieceData");
  EXPECT_EQ(tags[0].second, "wire-crc");
  EXPECT_EQ(tags[1].first, "kTagBarrier");
  EXPECT_EQ(tags[1].second, "control");
  // The span parser ignores spec text entirely: keywords never match a
  // real file path, so span-coverage stays unaffected.
  for (const auto& [path, fn] : ParseSpanManifest(text)) {
    EXPECT_TRUE(path == "phase" || path == "message" || path == "boundary")
        << path << " " << fn;
  }
}

// ---- header-hygiene ---------------------------------------------------

TEST(LintRules, HeaderHygieneMissingPragmaOnce) {
  const std::vector<Diagnostic> diags =
      Lint("src/panda/x.h", "int f();\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "header-hygiene");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(LintRules, HeaderHygieneUsingNamespaceAndIostream) {
  const std::vector<Diagnostic> diags =
      Lint("src/panda/x.h",
           "#pragma once\n"
           "#include <iostream>\n"
           "using namespace std;\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(HasRule(diags, "header-hygiene"));
  // Sources (.cc) may include <iostream> and use using-namespace.
  EXPECT_TRUE(Lint("src/panda/report.cc",
                   "#include <iostream>\nusing namespace std;\n")
                  .empty());
}

// ---- report-silence ---------------------------------------------------

TEST(LintRules, ReportSilenceFlagsPrintingInSrc) {
  EXPECT_TRUE(HasRule(
      Lint("src/panda/plan.cc", "void f() { printf(\"x\"); }\n"),
      "report-silence"));
  EXPECT_TRUE(HasRule(
      Lint("src/panda/plan.cc", "void f() { std::cerr << 1; }\n"),
      "report-silence"));
}

TEST(LintRules, ReportSilenceAllowsDesignatedSinksAndNonSrc) {
  const std::string code = "void f() { printf(\"x\"); }\n";
  EXPECT_TRUE(Lint("src/panda/report.cc", code).empty());
  EXPECT_TRUE(Lint("src/trace/export.cc", code).empty());
  EXPECT_TRUE(Lint("bench/bench_fig4.cc", code).empty());
  EXPECT_TRUE(Lint("examples/demo.cc", code).empty());
}

// ---- trace-no-clock ---------------------------------------------------

TEST(LintRules, TraceNeverAdvancesVirtualClocks) {
  const std::vector<Diagnostic> diags =
      Lint("src/trace/trace.cc", "void f(VirtualClock& c) { c.Advance(1.0); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "trace-no-clock");
  // Reading the clock is what tracing does — allowed.
  EXPECT_TRUE(
      Lint("src/trace/trace.cc", "double f(VirtualClock& c) { return c.Now(); }\n")
          .empty());
}

// ---- suppressions -----------------------------------------------------

TEST(LintSuppress, AllowOnSameLine) {
  EXPECT_TRUE(Lint("src/panda/x.cc",
                   "auto t = std::chrono::steady_clock::now();"
                   "  // panda-lint: allow(wall-clock)\n")
                  .empty());
}

TEST(LintSuppress, AllowOnPrecedingLineShieldsNextLine) {
  EXPECT_TRUE(Lint("src/panda/x.cc",
                   "// panda-lint: allow(wall-clock)\n"
                   "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(LintSuppress, AllowWrongRuleDoesNotSuppress) {
  EXPECT_TRUE(HasRule(Lint("src/panda/x.cc",
                           "// panda-lint: allow(raw-io)\n"
                           "auto t = std::chrono::steady_clock::now();\n"),
                      "wall-clock"));
}

TEST(LintSuppress, AllowStarSuppressesEveryRule) {
  EXPECT_TRUE(Lint("src/panda/x.cc",
                   "// panda-lint: allow(*)\n"
                   "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(LintSuppress, AllowFileCoversWholeFile) {
  EXPECT_TRUE(Lint("src/panda/x.cc",
                   "// panda-lint: allow-file(wall-clock)\n"
                   "void f() {\n"
                   "  auto a = std::chrono::steady_clock::now();\n"
                   "  auto b = std::chrono::system_clock::now();\n"
                   "}\n")
                  .empty());
}

TEST(LintSuppress, DisabledRulesAreSkipped) {
  LintConfig config;
  config.disabled_rules = {"wall-clock"};
  EXPECT_TRUE(Lint("src/panda/x.cc",
                   "auto t = std::chrono::steady_clock::now();\n", config)
                  .empty());
}

// ---- cross-file rules -------------------------------------------------

// Lints a fixture corpus through the two-phase cross-file path.
std::vector<Diagnostic> LintCorpus(
    const std::vector<std::pair<std::string, std::string>>& fixture,
    LintConfig config = {}) {
  std::vector<SourceFile> files;
  for (const auto& [rel, content] : fixture) {
    files.push_back(Tokenize(rel, content));
  }
  // The fixtures are tiny headerless snippets: disable the per-file
  // rules so only the cross-file phases speak.
  for (const Rule& rule : Registry()) config.disabled_rules.insert(rule.id);
  return CheckFiles(files, config);
}

TEST(LintCrossFile, UncaughtErrorSubclassFlagged) {
  const auto diags = LintCorpus(
      {{"src/util/error.h",
        "class PandaError {};\n"
        "class LonelyError : public PandaError {};\n"},
       {"src/panda/x.cc", "void f() { throw LonelyError(); }\n"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "error-caught");
  EXPECT_EQ(diags[0].file, "src/util/error.h");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("LonelyError"), std::string::npos);
}

TEST(LintCrossFile, CaughtAnywhereInTheTreeIsClean) {
  // The declaration and the catch live in different files — exactly the
  // case a per-file rule cannot see.
  EXPECT_TRUE(LintCorpus({{"src/util/error.h",
                           "class PandaError {};\n"
                           "class LonelyError : public PandaError {};\n"},
                          {"tests/x_test.cc",
                           "void f() {\n"
                           "  try { g(); } catch (const LonelyError& e) {}\n"
                           "}\n"}})
                  .empty());
}

TEST(LintCrossFile, TransitiveSubclassesAreCovered) {
  // B derives PandaError only through A: the closure must still reach
  // it, and catching A does not excuse B.
  const auto diags = LintCorpus(
      {{"src/util/error.h",
        "class PandaError {};\n"
        "class AError : public PandaError {};\n"
        "class BError : public AError {};\n"},
       {"src/panda/x.cc",
        "void f() { try { g(); } catch (const AError& e) {} }\n"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "error-caught");
  EXPECT_NE(diags[0].message.find("BError"), std::string::npos);
}

TEST(LintCrossFile, NonSrcErrorDeclarationsIgnored) {
  // A test-local error type is harness scaffolding, not protocol
  // surface: the rule only audits src/.
  EXPECT_TRUE(LintCorpus({{"src/util/error.h", "class PandaError {};\n"},
                          {"tests/x_test.cc",
                           "class FixtureError : public PandaError {};\n"}})
                  .empty());
}

TEST(LintCrossFile, UntestedServerOptionFlagged) {
  const auto diags = LintCorpus(
      {{"src/panda/server.h",
        "struct ServerOptions {\n"
        "  bool failover = false;\n"
        "  bool untested_knob = false;\n"
        "  RetryPolicy retry;\n"
        "};\n"},
       {"tests/x_test.cc",
        "void f() { ServerOptions o; o.failover = true; (void)o.retry; }\n"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "options-tested");
  EXPECT_EQ(diags[0].file, "src/panda/server.h");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("untested_knob"), std::string::npos);
}

TEST(LintCrossFile, PointerAndInitializerFieldsParse) {
  // Field extraction must see through `Type* name = nullptr;` and plain
  // `Type name;` declarations alike.
  const auto diags = LintCorpus(
      {{"src/panda/server.h",
        "struct ServerOptions {\n"
        "  RobustnessStats* robustness = nullptr;\n"
        "  int num_applications = 1;\n"
        "};\n"},
       {"tests/x_test.cc", "void f() { o.robustness = &stats; }\n"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("num_applications"), std::string::npos);
}

TEST(LintCrossFile, SuppressionsApplyToCrossFileDiagnostics) {
  EXPECT_TRUE(
      LintCorpus(
          {{"src/util/error.h",
            "class PandaError {};\n"
            "// panda-lint: allow(error-caught)\n"
            "class LonelyError : public PandaError {};\n"}})
          .empty());
}

TEST(LintCrossFile, DisabledCrossFileRulesAreSkipped) {
  LintConfig config;
  config.disabled_rules = {"error-caught", "options-tested"};
  EXPECT_TRUE(LintCorpus({{"src/util/error.h",
                           "class PandaError {};\n"
                           "class LonelyError : public PandaError {};\n"}},
                         config)
                  .empty());
}

TEST(LintCrossFile, RealTreeIsClean) {
  // The rules gate CI (tools/ci.sh): the actual repository must satisfy
  // both of them. Walk the real tree from the source root.
  LintConfig config;
  config.root = PANDA_LINT_ROOT;
  std::vector<Diagnostic> cross;
  for (const Diagnostic& d : RunLint(config)) {
    if (d.rule == "error-caught" || d.rule == "options-tested") {
      cross.push_back(d);
    }
  }
  for (const Diagnostic& d : cross) ADD_FAILURE() << d.ToString();
}

// ---- diagnostics ------------------------------------------------------

TEST(LintDiag, ToStringIsFileLineRuleMessage) {
  const Diagnostic d{"wall-clock", "src/panda/x.cc", 7, "boom"};
  EXPECT_EQ(d.ToString(), "src/panda/x.cc:7: [wall-clock] boom");
}

TEST(LintDiag, RegistryExposesAllRules) {
  std::vector<std::string> ids;
  for (const Rule& rule : Registry()) ids.push_back(rule.id);
  const std::vector<std::string> expected = {
      "wall-clock",     "raw-io",         "raw-send",
      "raw-thread",     "span-coverage",  "tag-coverage",
      "header-hygiene", "report-silence", "trace-no-clock"};
  EXPECT_EQ(ids, expected);
}

}  // namespace
}  // namespace lint
}  // namespace panda
