// Tests for cluster assembly (Machine), rename semantics of the file
// systems, logging, and miscellaneous glue not covered elsewhere.
#include <gtest/gtest.h>

#include <filesystem>

#include "iosim/posix_fs.h"
#include "iosim/sim_fs.h"
#include "msg/collectives.h"
#include "sp2/machine.h"
#include "util/codec.h"
#include "util/logging.h"

namespace panda {
namespace {

TEST(MachineTest, RolesAndRankMapping) {
  Machine machine = Machine::Simulated(6, 3, Sp2Params::Functional(),
                                       /*store_data=*/false,
                                       /*timing_only=*/true);
  EXPECT_EQ(machine.num_clients(), 6);
  EXPECT_EQ(machine.num_servers(), 3);
  EXPECT_EQ(machine.client_rank(0), 0);
  EXPECT_EQ(machine.client_rank(5), 5);
  EXPECT_EQ(machine.server_rank(0), 6);
  EXPECT_EQ(machine.server_rank(2), 8);
  EXPECT_EQ(machine.transport().world_size(), 9);

  std::vector<int> client_calls(6, 0);
  std::vector<int> server_calls(3, 0);
  machine.Run(
      [&](Endpoint& ep, int idx) {
        EXPECT_EQ(ep.rank(), idx);
        client_calls[static_cast<size_t>(idx)] += 1;
      },
      [&](Endpoint& ep, int sidx) {
        EXPECT_EQ(ep.rank(), 6 + sidx);
        server_calls[static_cast<size_t>(sidx)] += 1;
      });
  for (int c : client_calls) EXPECT_EQ(c, 1);
  for (int s : server_calls) EXPECT_EQ(s, 1);
}

TEST(MachineTest, SimulatedFsChargesServerClock) {
  Machine machine = Machine::Simulated(1, 1, Sp2Params::Nas(), false, true);
  machine.Run([](Endpoint&, int) {},
              [&](Endpoint& ep, int sidx) {
                auto file = machine.server_fs(sidx).Open(
                    "t", OpenMode::kWrite);
                file->WriteAt(0, {}, 1 * kMiB);
                EXPECT_GT(ep.clock().Now(), 0.4);  // ~0.46 s at 2.23 MB/s
              });
}

TEST(MachineTest, ResetClearsClocksAndStats) {
  Machine machine = Machine::Simulated(2, 1, Sp2Params::Nas(), false, true);
  machine.Run(
      [&](Endpoint& ep, int idx) {
        if (idx == 0) ep.Send(1, kTagApp, Message{});
        if (idx == 1) (void)ep.Recv(0, kTagApp);
      },
      [&](Endpoint& ep, int sidx) {
        machine.server_fs(sidx).Open("x", OpenMode::kWrite)->WriteAt(0, {},
                                                                     100);
        (void)ep;
      });
  EXPECT_GT(machine.transport().TotalStats().messages_sent, 0);
  EXPECT_GT(machine.server_fs(0).stats().writes, 0);
  machine.ResetClocksAndStats();
  EXPECT_EQ(machine.transport().TotalStats().messages_sent, 0);
  EXPECT_EQ(machine.server_fs(0).stats().writes, 0);
  EXPECT_EQ(machine.transport().endpoint(0).clock().Now(), 0.0);
}

TEST(MachineTest, RejectsDegenerateShapes) {
  EXPECT_THROW(Machine::Simulated(0, 1, Sp2Params::Nas(), false, true),
               PandaError);
  EXPECT_THROW(Machine::Simulated(1, 0, Sp2Params::Nas(), false, true),
               PandaError);
}

TEST(SimFsRenameTest, MovesContentAndReplaces) {
  SimFileSystem fs(SimFileSystem::Options{DiskModel::Instant(), true,
                                          nullptr});
  {
    auto f = fs.Open("a", OpenMode::kWrite);
    std::vector<std::byte> data{std::byte{1}, std::byte{2}};
    f->WriteAt(0, {data.data(), data.size()}, 2);
  }
  {
    auto f = fs.Open("b", OpenMode::kWrite);
    std::vector<std::byte> data{std::byte{9}};
    f->WriteAt(0, {data.data(), data.size()}, 1);
  }
  fs.Rename("a", "b");
  EXPECT_FALSE(fs.Exists("a"));
  auto f = fs.Open("b", OpenMode::kRead);
  EXPECT_EQ(f->Size(), 2);
  std::vector<std::byte> out(2);
  f->ReadAt(0, {out.data(), out.size()}, 2);
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_THROW(fs.Rename("missing", "x"), PandaError);
}

TEST(PosixFsRenameTest, MovesContentAndReplaces) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("panda_rename_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  PosixFileSystem fs(root.string());
  {
    auto f = fs.Open("a", OpenMode::kWrite);
    std::vector<std::byte> data{std::byte{7}};
    f->WriteAt(0, {data.data(), data.size()}, 1);
  }
  fs.Rename("a", "b");
  EXPECT_FALSE(fs.Exists("a"));
  EXPECT_TRUE(fs.Exists("b"));
  EXPECT_THROW(fs.Rename("missing", "x"), PandaError);
  std::filesystem::remove_all(root);
}

TEST(LoggingTest, LevelGateWorks) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must be no-ops (no crash, nothing asserted about output).
  PANDA_DEBUG("dropped %d", 1);
  PANDA_INFO("dropped %s", "too");
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(GroupTest, NonConsecutiveRanksWork) {
  // Groups over arbitrary rank sets (the world-barrier of baselines
  // uses client+server windows that may not be contiguous).
  ThreadTransport::Config cfg;
  cfg.net = NetModel::Instant();
  ThreadTransport tt(6, cfg);
  tt.Run([](Endpoint& ep) {
    // Members: ranks 0, 2, 5. Others idle.
    const std::vector<int> members{0, 2, 5};
    int my_index = -1;
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] == ep.rank()) my_index = static_cast<int>(i);
    }
    if (my_index < 0) return;
    Group group(members, my_index);
    Barrier(ep, group);
    Message msg;
    if (my_index == 1) {
      Encoder enc(msg.header);
      enc.PutString("from-2");
    }
    msg = Bcast(ep, group, 1, std::move(msg));
    Decoder dec(msg.header);
    EXPECT_EQ(dec.GetString(), "from-2");
  });
}

TEST(DiskModelTest, ReadFasterThanWriteAtAllSizes) {
  const DiskModel disk = DiskModel::NasSp2Aix();
  for (const std::int64_t size : {4 * kKiB, 64 * kKiB, 1 * kMiB, 4 * kMiB}) {
    EXPECT_GT(disk.ReadThroughput(size), disk.WriteThroughput(size));
  }
}

}  // namespace
}  // namespace panda
