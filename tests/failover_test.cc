// Crash-stop server failover: degraded-layout unit tests, then cluster
// soaks — kill one i/o node mid-write (with and without a lossy wire)
// and require the collective to complete on the survivors, read back
// bit-exactly, restart from its checkpoint, and verify offline against
// sidecars and journals under the recorded dead-server set.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::VerifyPattern;

ArrayMeta SmallMeta() {
  ArrayMeta meta;
  meta.name = "field";
  meta.elem_size = 8;
  meta.memory = Schema({32, 32}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  return meta;
}

// ---------------------------------------------------------------------
// DegradedLayout

TEST(DegradedLayoutTest, EmptyDeadSetIsTheIdentityLayout) {
  const IoPlan plan(SmallMeta(), 3, 256);
  const DegradedLayout layout = DegradedLayout::Compute(plan, {});
  EXPECT_FALSE(layout.degraded);
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(layout.alive[static_cast<size_t>(s)]);
    EXPECT_EQ(layout.SegmentBytes(s), plan.SegmentBytes(s));
    EXPECT_TRUE(layout.adopted[static_cast<size_t>(s)].empty());
  }
  for (size_t ci = 0; ci < plan.chunks().size(); ++ci) {
    EXPECT_EQ(layout.owner[ci], plan.chunks()[ci].server);
    EXPECT_EQ(layout.chunk_offset[ci], plan.chunks()[ci].file_offset);
  }
}

TEST(DegradedLayoutTest, DeadChunksAppendPastSurvivorSegments) {
  const IoPlan plan(SmallMeta(), 3, 256);
  const DegradedLayout layout = DegradedLayout::Compute(plan, {1});
  EXPECT_TRUE(layout.degraded);
  EXPECT_FALSE(layout.alive[1]);
  EXPECT_EQ(layout.SegmentBytes(1), 0);

  std::int64_t adopted_total = 0;
  for (size_t ci = 0; ci < plan.chunks().size(); ++ci) {
    const ChunkPlan& cp = plan.chunks()[ci];
    if (cp.server != 1) {
      // Survivor chunks keep their owner and their file offset: data
      // already on a survivor's disk stays where it is.
      EXPECT_EQ(layout.owner[ci], cp.server);
      EXPECT_EQ(layout.chunk_offset[ci], cp.file_offset);
    } else {
      // Dead-owned chunks move to a survivor, appended past its
      // original segment.
      const int adopter = layout.owner[ci];
      EXPECT_NE(adopter, 1);
      EXPECT_TRUE(layout.alive[static_cast<size_t>(adopter)]);
      EXPECT_GE(layout.chunk_offset[ci], plan.SegmentBytes(adopter));
      adopted_total += cp.bytes;
    }
  }
  EXPECT_EQ(adopted_total, plan.SegmentBytes(1));
  // No bytes are lost: survivor segments grew by exactly the dead
  // server's segment.
  std::int64_t grown = 0;
  for (const int s : {0, 2}) grown += layout.SegmentBytes(s);
  EXPECT_EQ(grown, plan.SegmentBytes(0) + plan.SegmentBytes(1) +
                       plan.SegmentBytes(2));
}

TEST(DegradedLayoutTest, WorkListSplitsIntoOwnThenAdopted) {
  const IoPlan plan(SmallMeta(), 3, 256);
  const DegradedLayout layout = DegradedLayout::Compute(plan, {1});
  for (const int s : {0, 2}) {
    const auto full = BuildServerWork(plan, layout, s, WorkPhase::kFull);
    const auto adopted =
        BuildServerWork(plan, layout, s, WorkPhase::kAdoptedOnly);
    ASSERT_LE(adopted.size(), full.size());
    // The adopted slice is exactly the tail of the full list — record
    // ordinals included, so sidecar/journal slots agree across phases.
    const size_t own = full.size() - adopted.size();
    for (size_t k = 0; k < adopted.size(); ++k) {
      EXPECT_EQ(adopted[k].chunk_index, full[own + k].chunk_index);
      EXPECT_EQ(adopted[k].sub_index, full[own + k].sub_index);
      EXPECT_EQ(adopted[k].file_offset, full[own + k].file_offset);
      EXPECT_EQ(adopted[k].record_ordinal, full[own + k].record_ordinal);
    }
    // Ordinals are dense 0..n-1 and offsets stay within the segment.
    for (size_t k = 0; k < full.size(); ++k) {
      EXPECT_EQ(full[k].record_ordinal, static_cast<std::int64_t>(k));
      EXPECT_LT(full[k].file_offset, layout.SegmentBytes(s));
    }
    EXPECT_EQ(RecordsPerSegment(plan, layout, s),
              static_cast<std::int64_t>(full.size()));
  }
  EXPECT_TRUE(BuildServerWork(plan, layout, 1, WorkPhase::kFull).empty());
}

TEST(DegradedLayoutTest, MasterServerDeathIsFatal) {
  const IoPlan plan(SmallMeta(), 3, 256);
  EXPECT_THROW((void)DegradedLayout::Compute(plan, {0}), PandaError);
}

TEST(DegradedLayoutTest, DeadServersAttrRoundTrips) {
  EXPECT_EQ(EncodeDeadServersAttr({2, 1}), "1,2");
  std::map<std::string, std::string> attrs;
  EXPECT_TRUE(ParseDeadServersAttr(attrs).empty());
  attrs[kDeadServersAttr] = "1,2";
  EXPECT_EQ(ParseDeadServersAttr(attrs), (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------
// Cluster failover

// Runs a failover-mode cluster: every client in failover mode, every
// server with the failover/journal/checksum options on.
void RunFailoverCluster(Machine& machine,
                        const std::function<void(PandaClient&, int)>& app) {
  const World world{machine.num_clients(), machine.num_servers()};
  ServerOptions options;
  options.failover = true;
  options.disk_checksums = true;
  options.journal = true;
  options.robustness = &machine.robustness();
  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, machine.params());
        client.set_robustness(&machine.robustness());
        client.set_failover(true);
        app(client, client_index);
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params(), options);
      });
}

Machine SmallMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

TEST(FailoverTest, CleanRunLeavesEveryFaultCounterZero) {
  // Failover mode armed, nothing killed: the collective completes with
  // no failovers, no adopted chunks, no transport faults — the
  // machinery must be invisible until it is needed.
  Machine machine = SmallMachine(4, 3);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  ArrayLayout memory("m", {2, 2});
  RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
    Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 5);
    client.WriteArray(a);
    std::memset(a.local_data().data(), 0, a.local_data().size());
    client.ReadArray(a);
    VerifyPattern(a, 5);
  });
  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_EQ(counters.failovers_completed, 0);
  EXPECT_EQ(counters.chunks_adopted, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
  EXPECT_GT(counters.journal_records_written, 0);  // journaling was on
  EXPECT_TRUE(machine.fault_stats().Snapshot().AllZero());
}

TEST(FailoverTest, KilledServerMidWriteFailsOverAndReadsBackExact) {
  Machine machine = SmallMachine(4, 3);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  // Server 1 crash-stops at its 4th send: mid-gather of its first chunk.
  machine.KillServerAfterSends(/*server_index=*/1, /*after_more_sends=*/3);
  ArrayLayout memory("m", {2, 2});
  RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
    Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    FillPattern(a, 77);
    client.WriteArray(a);
    // The dead set is now {1}; the degraded read must reassemble the
    // full array from the two survivors, adopted chunks included.
    std::memset(a.local_data().data(), 0, a.local_data().size());
    client.ReadArray(a);
    VerifyPattern(a, 77);
  });

  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GE(counters.failovers_completed, 1);
  EXPECT_GT(counters.chunks_adopted, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
  const TransportFaultCounters faults = machine.fault_stats().Snapshot();
  EXPECT_EQ(faults.ranks_killed, 1);
  EXPECT_GE(faults.peers_declared_dead, 1);

  // Offline verification under the degraded layout: the survivors'
  // sidecars and journals are complete and correct; server 1's stale
  // file is skipped as lost.
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1),
                      &machine.server_fs(2)};
  const ArrayMeta meta = SmallMeta();
  std::string log;
  const IntegrityReport crcs =
      VerifyArrayChecksums(fs, meta, 256, Purpose::kGeneral, 1, "", &log,
                           /*dead_servers=*/{1});
  EXPECT_TRUE(crcs.Clean()) << log;
  EXPECT_GT(crcs.subchunks_checked, 0);
  log.clear();
  const JournalReport wal =
      VerifyArrayJournal(fs, meta, /*array_index=*/0, 256, Purpose::kGeneral,
                         1, "", /*dead_servers=*/{1}, &log);
  EXPECT_TRUE(wal.Clean()) << log;
  EXPECT_GT(wal.records_checked, 0);
}

TEST(FailoverTest, SoakKillUnderLossyWireWithCheckpointRestart) {
  // The issue's acceptance scenario: one of three i/o nodes is killed
  // mid-write while the wire drops/duplicates/reorders messages. The
  // timestep stream, the checkpoint and the restart must all complete
  // on the survivors; every read must be bit-exact; offline sidecar and
  // journal verification must pass under the recorded dead-server set.
  Machine machine = SmallMachine(4, 3);
  LossSpec loss;
  loss.seed = 42;
  loss.drop_prob = 0.05;
  loss.dup_prob = 0.05;
  loss.reorder_prob = 0.05;
  machine.SetLoss(loss);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  machine.KillServerAfterSends(/*server_index=*/2, /*after_more_sends=*/5);

  ArrayLayout memory("m", {2, 2});
  RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
    Array a("state", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("soak", "soak.schema");
    group.Include(&a);

    FillPattern(a, 100);
    group.Timestep(client);  // server 2 dies inside this collective
    FillPattern(a, 101);
    group.Timestep(client);  // degraded from the start
    FillPattern(a, 500);
    group.Checkpoint(client);
    FillPattern(a, 999);  // scribble, then restore
    group.Restart(client);
    VerifyPattern(a, 500);
    group.ReadTimestep(client, 0);
    VerifyPattern(a, 100);
    group.ReadTimestep(client, 1);
    VerifyPattern(a, 101);
  });

  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GE(counters.failovers_completed, 1);
  EXPECT_GT(counters.chunks_adopted, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
  EXPECT_GT(counters.journal_records_written, 0);
  const TransportFaultCounters faults = machine.fault_stats().Snapshot();
  EXPECT_EQ(faults.ranks_killed, 1);
  EXPECT_GT(faults.drops_injected, 0);
  EXPECT_EQ(faults.retransmits, faults.drops_injected);

  // The committed metadata records the dead set...
  const GroupMeta meta = ReadGroupMeta(machine.server_fs(0), "soak.schema");
  ASSERT_EQ(ParseDeadServersAttr(meta.attributes), (std::vector<int>{2}));

  // ...and offline verification under it is clean: sidecars, journals,
  // and the degraded file framing all agree.
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1),
                      &machine.server_fs(2)};
  std::string log;
  const IntegrityReport crcs = VerifyGroupChecksums(fs, meta, 256, &log);
  EXPECT_TRUE(crcs.Clean()) << log;
  EXPECT_GT(crcs.subchunks_checked, 0);
  EXPECT_EQ(crcs.files_without_sidecar, 0);
  log.clear();
  const JournalReport wal = VerifyGroupJournal(fs, meta, 256, &log);
  EXPECT_TRUE(wal.Clean()) << log;
  EXPECT_GT(wal.records_checked, 0);
  EXPECT_EQ(wal.files_without_journal, 0);
}

// ---------------------------------------------------------------------
// Rejoin: restart the dead node, repair, and serve full-set collectives

std::vector<std::byte> ReadAllBytes(FileSystem& fs, const std::string& name) {
  std::unique_ptr<File> file = fs.Open(name, OpenMode::kRead);
  std::vector<std::byte> bytes(static_cast<size_t>(file->Size()));
  file->ReadAt(0, bytes, static_cast<std::int64_t>(bytes.size()));
  return bytes;
}

TEST(FailoverTest, RejoinRestoresIdentityLayoutBitExact) {
  // The issue's end-to-end acceptance scenario. Machine A: kill server 1
  // mid-write, commit a degraded timestep + checkpoint, restart the
  // cluster with server 1 revived, and run one more timestep +
  // checkpoint over the repaired full server set. Machine B: the same
  // history with no failure at all. The committed data files and
  // sidecars must be BYTE-identical between the two — repair put every
  // chunk back where the identity layout wants it, checksums included.
  const auto app_run1 = [](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    Array a("state", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("rejoin", "rejoin.schema");
    group.Include(&a);
    FillPattern(a, 100);
    group.Timestep(client);
    FillPattern(a, 500);
    group.Checkpoint(client);
  };
  const auto app_run2 = [](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    Array a("state", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("rejoin", "rejoin.schema");
    group.Include(&a);
    ASSERT_TRUE(group.Resume(client));
    FillPattern(a, 101);
    group.Timestep(client);
    FillPattern(a, 501);
    group.Checkpoint(client);
    // Full round trip over the restored layout: the checkpoint and both
    // timesteps read back bit-exactly on the full server set.
    FillPattern(a, 999);
    group.Restart(client);
    VerifyPattern(a, 501);
    group.ReadTimestep(client, 0);
    VerifyPattern(a, 100);
    group.ReadTimestep(client, 1);
    VerifyPattern(a, 101);
  };

  Machine failed = SmallMachine(4, 3);
  failed.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  failed.KillServerAfterSends(/*server_index=*/1, /*after_more_sends=*/3);
  RunFailoverCluster(failed, app_run1);
  {
    const GroupMeta meta = ReadGroupMeta(failed.server_fs(0), "rejoin.schema");
    ASSERT_EQ(ParseDeadServersAttr(meta.attributes), (std::vector<int>{1}));
    EXPECT_EQ(ParseLayoutEpochAttr(meta.attributes), 1);
  }
  failed.ResetForRecovery();
  failed.RestartServer(1);
  RunFailoverCluster(failed, app_run2);

  Machine reference = SmallMachine(4, 3);
  reference.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  RunFailoverCluster(reference, app_run1);
  reference.ResetForRecovery();
  RunFailoverCluster(reference, app_run2);

  // The repair ran exactly once and moved data back.
  const RobustnessCounters counters = failed.robustness().Snapshot();
  EXPECT_EQ(counters.rejoins_completed, 1);
  EXPECT_GT(counters.chunks_restored, 0);
  EXPECT_GE(counters.failovers_completed, 1);
  EXPECT_EQ(counters.collectives_aborted, 0);
  EXPECT_GE(counters.journal_gc_truncations, 1);  // checkpoint-time GC
  EXPECT_EQ(failed.fault_stats().Snapshot().ranks_revived, 1);

  // Membership: the dead set is cleared and the layout epoch counts
  // both generation changes (failover, then repair).
  const GroupMeta meta = ReadGroupMeta(failed.server_fs(0), "rejoin.schema");
  EXPECT_TRUE(ParseDeadServersAttr(meta.attributes).empty());
  EXPECT_EQ(ParseLayoutEpochAttr(meta.attributes), 2);

  // Byte identity with the never-failed run: data files and checksum
  // sidecars, every server, both purposes. (Journals record different
  // histories by design; they are verified semantically below.)
  for (int s = 0; s < 3; ++s) {
    for (const Purpose purpose : {Purpose::kTimestep, Purpose::kCheckpoint}) {
      const std::string data = DataFileName("rejoin", "state", purpose, s);
      ASSERT_TRUE(failed.server_fs(s).Exists(data)) << data;
      EXPECT_EQ(ReadAllBytes(failed.server_fs(s), data),
                ReadAllBytes(reference.server_fs(s), data))
          << "server " << s << " " << data;
      const std::string crc = SidecarFileName(data);
      ASSERT_TRUE(failed.server_fs(s).Exists(crc)) << crc;
      EXPECT_EQ(ReadAllBytes(failed.server_fs(s), crc),
                ReadAllBytes(reference.server_fs(s), crc))
          << "server " << s << " " << crc;
    }
  }

  // Offline verification under the repaired (identity) layout.
  FileSystem* fs[] = {&failed.server_fs(0), &failed.server_fs(1),
                      &failed.server_fs(2)};
  std::string log;
  const IntegrityReport crcs = VerifyGroupChecksums(fs, meta, 256, &log);
  EXPECT_TRUE(crcs.Clean()) << log;
  EXPECT_GT(crcs.subchunks_checked, 0);
  log.clear();
  const JournalReport wal = VerifyGroupJournal(fs, meta, 256, &log);
  EXPECT_TRUE(wal.Clean()) << log;

  // Epoch fencing in the offline verifier: forge one journal header to
  // claim a layout generation AHEAD of the committed metadata (the torn
  // window of a repair commit) and fsck's journal pass must flag it.
  {
    const std::string wal_name = JournalFileName(
        DataFileName("rejoin", "state", Purpose::kTimestep, 1));
    auto f = failed.server_fs(1).Open(wal_name, OpenMode::kReadWrite);
    const std::optional<JournalHeader> hdr = ReadJournalHeader(*f);
    ASSERT_TRUE(hdr.has_value());  // checkpoint-time GC stamped a header
    WriteJournalHeader(
        *f, JournalHeader{hdr->base_record,
                          ParseLayoutEpochAttr(meta.attributes) + 1});
  }
  log.clear();
  const JournalReport forged = VerifyGroupJournal(fs, meta, 256, &log);
  EXPECT_FALSE(forged.Clean());
  EXPECT_GT(forged.epoch_mismatches, 0) << log;
}

TEST(FailoverTest, IdleIoNodeCheckpointCommitsCleanly) {
  // Disk mesh narrower than the server set: server 2 owns no chunks.
  // Its checkpoint share is empty, but the staged two-phase renames
  // still cover its (empty) sidecar and journal — a commit must not
  // abort renaming files that were never created, and a restart must
  // read the group back as if the idle node were not there.
  Machine machine = SmallMachine(2, 3);
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  ArrayLayout memory("m", {2});
  const std::uint64_t seed = 21;
  RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
    Array a("field", {16, 16}, 8, memory, {BLOCK, NONE}, memory,
            {BLOCK, NONE});
    a.BindClient(idx);
    ArrayGroup group("idle", "idle.schema");
    group.Include(&a);
    FillPattern(a, seed);
    group.Timestep(client);
    FillPattern(a, seed + 1);
    group.Checkpoint(client);
  });
  EXPECT_EQ(machine.robustness().Snapshot().collectives_aborted, 0);
  EXPECT_EQ(machine.robustness().Snapshot().failovers_completed, 0);

  machine.ResetForRecovery();
  RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
    Array a("field", {16, 16}, 8, memory, {BLOCK, NONE}, memory,
            {BLOCK, NONE});
    a.BindClient(idx);
    ArrayGroup group("idle", "idle.schema");
    group.Include(&a);
    ASSERT_TRUE(group.Resume(client));
    group.ReadTimestep(client, 0);
    VerifyPattern(a, seed);
    FillPattern(a, 999);
    group.Restart(client);
    VerifyPattern(a, seed + 1);
  });
}

TEST(FailoverTest, RejoinSoakLossySeedsAndKillPoints) {
  // Seeded loss in the failed run, kill point swept across the write:
  // every schedule must rejoin and serve a bit-exact full-set read.
  for (const std::int64_t kill_after : {2, 5}) {
    for (const std::uint64_t seed : {11ull, 12ull}) {
      Machine machine = SmallMachine(2, 3);
      LossSpec loss;
      loss.seed = seed;
      loss.drop_prob = 0.08;
      loss.dup_prob = 0.04;
      machine.SetLoss(loss);
      machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
      machine.KillServerAfterSends(/*server_index=*/2, kill_after);
      ArrayLayout memory("m", {2});
      // Disk mesh {3}: one chunk per i/o node, so the killed server owns
      // data and its death forces a real failover + rejoin. 32 rows give
      // it 5 sub-chunk pulls before the first commit, so every swept
      // kill point lands inside the timestep write — the stable-dead-set
      // histories the repair contract covers (docs/PROTOCOL.md).
      ArrayLayout disk("d", {3});
      RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
        Array a("field", {32, 16}, 8, memory, {BLOCK, NONE}, disk,
                {BLOCK, NONE});
        a.BindClient(idx);
        ArrayGroup group("soak", "soak.schema");
        group.Include(&a);
        FillPattern(a, seed);
        group.Timestep(client);
        FillPattern(a, seed + 1);
        group.Checkpoint(client);
      });
      ASSERT_EQ(machine.fault_stats().Snapshot().ranks_killed, 1)
          << "kill_after " << kill_after << " seed " << seed;

      machine.SetLoss(LossSpec{});
      machine.ResetForRecovery();
      machine.RestartServer(2);
      RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
        Array a("field", {32, 16}, 8, memory, {BLOCK, NONE}, disk,
                {BLOCK, NONE});
        a.BindClient(idx);
        ArrayGroup group("soak", "soak.schema");
        group.Include(&a);
        ASSERT_TRUE(group.Resume(client));
        group.ReadTimestep(client, 0);
        VerifyPattern(a, seed);
        FillPattern(a, 999);
        group.Restart(client);
        VerifyPattern(a, seed + 1);
      });
      EXPECT_EQ(machine.robustness().Snapshot().rejoins_completed, 1)
          << "kill_after " << kill_after << " seed " << seed;
      const GroupMeta meta =
          ReadGroupMeta(machine.server_fs(0), "soak.schema");
      EXPECT_TRUE(ParseDeadServersAttr(meta.attributes).empty())
          << "kill_after " << kill_after << " seed " << seed;
    }
  }
}

TEST(FailoverTest, SoakManySeedsKillAtVaryingPoints) {
  // Sweep the kill point across the collective (different send budgets)
  // and several loss seeds: every schedule must converge to the same
  // bit-exact degraded result.
  for (const std::int64_t kill_after : {1, 2, 4}) {
    for (const std::uint64_t seed : {9ull, 10ull}) {
      Machine machine = SmallMachine(2, 3);
      LossSpec loss;
      loss.seed = seed;
      loss.drop_prob = 0.08;
      loss.dup_prob = 0.04;
      machine.SetLoss(loss);
      machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
      machine.KillServerAfterSends(1, kill_after);
      ArrayLayout memory("m", {2});
      RunFailoverCluster(machine, [&](PandaClient& client, int idx) {
        Array a("field", {16, 16}, 8, memory, {BLOCK, NONE}, memory,
                {BLOCK, NONE});
        a.BindClient(idx);
        FillPattern(a, seed);
        client.WriteArray(a);
        std::memset(a.local_data().data(), 0, a.local_data().size());
        client.ReadArray(a);
        VerifyPattern(a, seed);
      });
      EXPECT_EQ(machine.fault_stats().Snapshot().ranks_killed, 1)
          << "kill_after " << kill_after << " seed " << seed;
      EXPECT_GE(machine.robustness().Snapshot().failovers_completed, 1)
          << "kill_after " << kill_after << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace panda
