// Tests for the high-level collective operations of Figure 2:
// timestep output, checkpoint, restart, timestep read-back, and the
// group metadata (.schema) files.
#include <gtest/gtest.h>

#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::RunCluster;
using test::VerifyPattern;

Machine SimMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 1024;
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

TEST(TimestepTest, TimestepsAppendAndReadBack) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    Array a("u", {8, 8}, 8, memory, {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
    a.BindClient(idx);

    ArrayGroup group("sim", "sim.schema");
    group.Include(&a);

    // Write three timesteps with distinct contents.
    for (std::uint64_t t = 0; t < 3; ++t) {
      FillPattern(a, 100 + t);
      group.Timestep(client);
    }
    EXPECT_EQ(group.timesteps_written(), 3);

    // Read each timestep back and verify.
    for (std::uint64_t t = 0; t < 3; ++t) {
      std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
      group.ReadTimestep(client, static_cast<std::int64_t>(t));
      VerifyPattern(a, 100 + t);
    }
  });
}

TEST(TimestepTest, CheckpointRestartRestoresData) {
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    ArrayLayout disk("d", {2});
    Array a("state", {10, 12}, 4, memory, {BLOCK, BLOCK}, disk, {BLOCK, NONE});
    a.BindClient(idx);

    ArrayGroup group("ckpt", "ckpt.schema");
    group.Include(&a);

    FillPattern(a, 555);
    group.Checkpoint(client);

    // "Crash": scribble over the state, then restart.
    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0xFF});
    group.Restart(client);
    VerifyPattern(a, 555);
  });
}

TEST(TimestepTest, CheckpointOverwritesPrevious) {
  Machine machine = SimMachine(2, 1);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2});
    Array a("s", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
    a.BindClient(idx);
    ArrayGroup group("g");
    group.Include(&a);

    FillPattern(a, 1);
    group.Checkpoint(client);
    FillPattern(a, 2);
    group.Checkpoint(client);

    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    group.Restart(client);
    VerifyPattern(a, 2);  // the newer checkpoint wins
  });
}

TEST(TimestepTest, TimestepOfGroupWritesAllArrays) {
  // Figure 2's scenario: one Timestep() call outputs three arrays.
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2, 2});
    Array t("temperature", {8, 8}, 4, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    Array p("pressure", {8, 8}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    Array rho("density", {4, 4}, 8, memory, {BLOCK, BLOCK}, memory,
              {BLOCK, BLOCK});
    for (Array* a : {&t, &p, &rho}) a->BindClient(idx);

    ArrayGroup sim("Sim2", "simulation2.schema");
    sim.Include(&t);
    sim.Include(&p);
    sim.Include(&rho);

    FillPattern(t, 10);
    FillPattern(p, 20);
    FillPattern(rho, 30);
    sim.Timestep(client);

    for (Array* a : {&t, &p, &rho}) {
      std::fill(a->local_data().begin(), a->local_data().end(),
                std::byte{0xBB});
    }
    sim.ReadTimestep(client, 0);
    VerifyPattern(t, 10);
    VerifyPattern(p, 20);
    VerifyPattern(rho, 30);
  });
}

TEST(TimestepTest, GroupMetadataIsMaintained) {
  Machine machine = SimMachine(2, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {2});
    Array a("u", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
    a.BindClient(idx);
    ArrayGroup group("meta_demo", "meta_demo.schema");
    group.Include(&a);
    FillPattern(a, 1);
    group.Timestep(client);
    group.Timestep(client);
    group.Checkpoint(client);
  });
  // The master server (index 0) holds the metadata file.
  const GroupMeta meta =
      ReadGroupMeta(machine.server_fs(0), "meta_demo.schema");
  EXPECT_EQ(meta.group, "meta_demo");
  EXPECT_EQ(meta.timesteps, 2);
  EXPECT_TRUE(meta.has_checkpoint);
  EXPECT_EQ(meta.checkpoint_seq, 2);
  ASSERT_EQ(meta.arrays.size(), 1u);
  EXPECT_EQ(meta.arrays[0].name, "u");
  EXPECT_EQ(meta.arrays[0].memory.array_shape(), (Shape{16}));
}

TEST(TimestepTest, MixedTimestepAndCheckpointInterleave) {
  // The Figure 2 program shape: timestep every iteration, checkpoint in
  // the middle, then recover from the checkpoint and verify both the
  // recovered state and previously written timesteps stay readable.
  Machine machine = SimMachine(4, 2);
  RunCluster(machine, [&](PandaClient& client, int idx) {
    ArrayLayout memory("m", {4});
    Array a("field", {32, 4}, 8, memory, {BLOCK, NONE}, memory,
            {BLOCK, NONE});
    a.BindClient(idx);
    ArrayGroup group("run");
    group.Include(&a);

    for (std::uint64_t i = 0; i < 4; ++i) {
      FillPattern(a, 200 + i);
      group.Timestep(client);
      if (i == 1) group.Checkpoint(client);
    }

    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    group.Restart(client);
    VerifyPattern(a, 201);  // checkpoint captured timestep-1 contents

    std::fill(a.local_data().begin(), a.local_data().end(), std::byte{0});
    group.ReadTimestep(client, 3);
    VerifyPattern(a, 203);
  });
}

TEST(TimestepTest, ResumeContinuesTimestepStream) {
  // Run 1 writes three timesteps; run 2 (fresh ArrayGroup, same files)
  // resumes and appends two more without clobbering the first three.
  Machine machine = SimMachine(4, 2);
  // Same machine across both "runs": two Run() invocations.
  const World world{4, 2};
  auto client_main = [&](Endpoint& ep, int idx, bool second_run) {
    PandaClient client(ep, world, machine.params());
    ArrayLayout memory("m", {2, 2});
    Array a("u", {8, 8}, 8, memory, {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("resume_demo", "resume_demo.schema");
    group.Include(&a);
    if (!second_run) {
      EXPECT_FALSE(group.Resume(client));  // nothing to resume yet
      for (std::uint64_t t = 0; t < 3; ++t) {
        FillPattern(a, 700 + t);
        group.Timestep(client);
      }
    } else {
      EXPECT_TRUE(group.Resume(client));
      EXPECT_EQ(group.timesteps_written(), 3);
      for (std::uint64_t t = 3; t < 5; ++t) {
        FillPattern(a, 700 + t);
        group.Timestep(client);
      }
      // All five timesteps are readable.
      for (std::uint64_t t = 0; t < 5; ++t) {
        group.ReadTimestep(client, static_cast<std::int64_t>(t));
        VerifyPattern(a, 700 + t);
      }
    }
    if (idx == 0) client.Shutdown();
  };
  machine.Run(
      [&](Endpoint& ep, int idx) { client_main(ep, idx, false); },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, machine.params());
      });
  machine.Run(
      [&](Endpoint& ep, int idx) { client_main(ep, idx, true); },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, machine.params());
      });
}

TEST(TimestepTest, AttributesPersistAndResume) {
  Machine machine = SimMachine(4, 2);
  const World world{4, 2};
  auto client_main = [&](Endpoint& ep, int idx, bool second_run) {
    PandaClient client(ep, world, machine.params());
    ArrayLayout memory("m", {2, 2});
    Array a("u", {8, 8}, 4, memory, {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("attrs", "attrs.schema");
    group.Include(&a);
    if (!second_run) {
      group.SetAttribute("iteration", "41");
      group.SetAttribute("dt", "0.025");
      FillPattern(a, 1);
      group.Checkpoint(client);
      group.SetAttribute("iteration", "42");  // newer value wins
      group.Timestep(client);
    } else {
      EXPECT_TRUE(group.Resume(client));
      EXPECT_EQ(group.GetAttribute("iteration"), "42");
      EXPECT_EQ(group.GetAttribute("dt"), "0.025");
      EXPECT_EQ(group.GetAttribute("absent"), "");
      EXPECT_EQ(group.timesteps_written(), 1);
    }
    if (idx == 0) client.Shutdown();
  };
  machine.Run([&](Endpoint& ep, int idx) { client_main(ep, idx, false); },
              [&](Endpoint& ep, int sidx) {
                ServerMain(ep, machine.server_fs(sidx), world,
                           machine.params());
              });
  machine.Run([&](Endpoint& ep, int idx) { client_main(ep, idx, true); },
              [&](Endpoint& ep, int sidx) {
                ServerMain(ep, machine.server_fs(sidx), world,
                           machine.params());
              });
}

TEST(TimestepTest, ErrorsOnUnboundArray) {
  Machine machine = SimMachine(2, 1);
  EXPECT_THROW(
      RunCluster(machine,
                 [&](PandaClient& client, int idx) {
                   (void)idx;
                   ArrayLayout memory("m", {2});
                   Array a("u", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
                   // not bound
                   client.WriteArray(a);
                 }),
      PandaError);
}

TEST(TimestepTest, ErrorsOnMeshClientMismatch) {
  Machine machine = SimMachine(4, 1);
  EXPECT_THROW(
      RunCluster(machine,
                 [&](PandaClient& client, int idx) {
                   ArrayLayout memory("m", {2});  // only 2 positions
                   Array a("u", {16}, 4, memory, {BLOCK}, memory, {BLOCK});
                   a.BindClient(idx % 2);
                   client.WriteArray(a);
                 }),
      PandaError);
}

TEST(TimestepTest, ReadingMissingFileFails) {
  Machine machine = SimMachine(2, 1);
  EXPECT_THROW(
      RunCluster(machine,
                 [&](PandaClient& client, int idx) {
                   ArrayLayout memory("m", {2});
                   Array a("never_written", {16}, 4, memory, {BLOCK}, memory,
                           {BLOCK});
                   a.BindClient(idx);
                   client.ReadArray(a);
                 }),
      PandaError);
}

}  // namespace
}  // namespace panda
