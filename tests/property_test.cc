// Property-based tests: randomized sweeps over the geometry and
// planning invariants that the Panda protocol's correctness rests on.
// Each case draws many random configurations from a seeded RNG (fully
// reproducible) and checks the invariant exhaustively.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "mdarray/schema.h"
#include "mdarray/strided_copy.h"
#include "panda/plan.h"
#include "util/random.h"

namespace panda {
namespace {

Shape RandomShape(Rng& rng, int rank, std::int64_t max_extent) {
  Shape shape = Index::Zeros(rank);
  for (int d = 0; d < rank; ++d) {
    shape[d] = 1 + static_cast<std::int64_t>(rng.NextBelow(
                       static_cast<std::uint64_t>(max_extent)));
  }
  return shape;
}

Region RandomSubregion(Rng& rng, const Region& box) {
  const int r = box.rank();
  Index lo = Index::Zeros(r);
  Shape extent = Index::Zeros(r);
  for (int d = 0; d < r; ++d) {
    lo[d] = box.lo()[d] + static_cast<std::int64_t>(rng.NextBelow(
                              static_cast<std::uint64_t>(box.extent()[d])));
    const std::int64_t room = box.lo()[d] + box.extent()[d] - lo[d];
    extent[d] = 1 + static_cast<std::int64_t>(rng.NextBelow(
                        static_cast<std::uint64_t>(room)));
  }
  return Region(lo, extent);
}

// A random BLOCK/*-only schema over `shape`.
Schema RandomBlockSchema(Rng& rng, const Shape& shape) {
  const int r = shape.rank();
  std::vector<DimDist> dists(static_cast<size_t>(r), DimDist::None());
  Index mesh_dims;
  for (int d = 0; d < r; ++d) {
    if (rng.NextBelow(2) == 0 || (d == r - 1 && mesh_dims.rank() == 0)) {
      dists[static_cast<size_t>(d)] = DimDist::Block();
      mesh_dims.Append(1 + static_cast<std::int64_t>(rng.NextBelow(4)));
    }
  }
  return Schema(shape, Mesh(mesh_dims), dists);
}

TEST(PropertyTest, IntersectionIsContainedAndCommutative) {
  Rng rng(2024);
  for (int iter = 0; iter < 500; ++iter) {
    const int rank = 1 + static_cast<int>(rng.NextBelow(4));
    const Region box(Index::Zeros(rank), RandomShape(rng, rank, 12));
    const Region a = RandomSubregion(rng, box);
    const Region b = RandomSubregion(rng, box);
    const Region ab = Intersect(a, b);
    EXPECT_EQ(ab, Intersect(b, a));
    if (!ab.empty()) {
      EXPECT_TRUE(a.Contains(ab));
      EXPECT_TRUE(b.Contains(ab));
    }
    // Volume check against pointwise membership on small boxes.
    if (box.Volume() <= 512) {
      std::int64_t count = 0;
      Index idx = Index::Zeros(rank);
      Shape ext = box.extent();
      do {
        if (a.Contains(idx) && b.Contains(idx)) ++count;
      } while (NextIndexRowMajor(ext, idx));
      EXPECT_EQ(count, ab.Volume());
    }
  }
}

TEST(PropertyTest, SchemaCellsPartitionTheArray) {
  // Every BLOCK/* schema's chunks tile the array exactly: disjoint,
  // covering, and in ascending dense-id order.
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const int rank = 1 + static_cast<int>(rng.NextBelow(3));
    const Shape shape = RandomShape(rng, rank, 14);
    const Schema schema = RandomBlockSchema(rng, shape);

    std::int64_t covered = 0;
    for (const auto& chunk : schema.chunks()) covered += chunk.region.Volume();
    EXPECT_EQ(covered, shape.Volume()) << schema.ToString();

    // Disjointness via pointwise ownership (small arrays only).
    if (shape.Volume() <= 1000) {
      Index idx = Index::Zeros(rank);
      Shape ext = shape;
      do {
        int owners = 0;
        for (const auto& chunk : schema.chunks()) {
          if (chunk.region.Contains(idx)) ++owners;
        }
        EXPECT_EQ(owners, 1) << schema.ToString() << " at " << idx.ToString();
      } while (NextIndexRowMajor(ext, idx));
    }
  }
}

TEST(PropertyTest, CyclicSchemaCellsPartitionToo) {
  Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    const Shape shape = RandomShape(rng, 2, 20);
    const std::int64_t block = 1 + static_cast<std::int64_t>(rng.NextBelow(5));
    const std::int64_t parts = 1 + static_cast<std::int64_t>(rng.NextBelow(4));
    Schema schema(shape, Mesh(Shape{parts}),
                  {DimDist::Cyclic(block), DimDist::None()});
    std::int64_t covered = 0;
    for (const auto& chunk : schema.chunks()) covered += chunk.region.Volume();
    EXPECT_EQ(covered, shape.Volume());
  }
}

TEST(PropertyTest, SubchunksAreOrderedContiguousPartition) {
  Rng rng(41);
  for (int iter = 0; iter < 300; ++iter) {
    const int rank = 1 + static_cast<int>(rng.NextBelow(4));
    const Region chunk(Index::Zeros(rank), RandomShape(rng, rank, 10));
    const std::int64_t elem = 1 + static_cast<std::int64_t>(rng.NextBelow(8));
    const std::int64_t max_bytes =
        1 + static_cast<std::int64_t>(rng.NextBelow(256));
    const auto subs = SplitIntoSubchunks(chunk, elem, max_bytes);

    std::int64_t expected_offset = 0;
    for (const Region& sub : subs) {
      EXPECT_TRUE(chunk.Contains(sub));
      EXPECT_TRUE(IsContiguousWithin(chunk, sub));
      // Size bound holds unless a single element already exceeds it.
      if (elem <= max_bytes) {
        EXPECT_LE(sub.Volume() * elem, max_bytes);
      }
      EXPECT_EQ(LinearOffsetWithin(chunk, sub.lo()), expected_offset);
      expected_offset += sub.Volume();
    }
    EXPECT_EQ(expected_offset, chunk.Volume());
  }
}

TEST(PropertyTest, ContiguityPredicateMatchesLinearization) {
  // IsContiguousWithin(outer, inner) must agree with a brute-force scan
  // of the inner region's linear offsets in the outer box.
  Rng rng(12345);
  for (int iter = 0; iter < 400; ++iter) {
    const int rank = 1 + static_cast<int>(rng.NextBelow(3));
    const Region outer(Index::Zeros(rank), RandomShape(rng, rank, 8));
    const Region inner = RandomSubregion(rng, outer);

    std::vector<std::int64_t> offsets;
    Index off = Index::Zeros(rank);
    Shape ext = inner.extent();
    do {
      Index g = inner.lo();
      for (int d = 0; d < rank; ++d) g[d] += off[d];
      offsets.push_back(LinearOffsetWithin(outer, g));
    } while (NextIndexRowMajor(ext, off));

    bool contiguous = true;
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] != offsets[i - 1] + 1) {
        contiguous = false;
        break;
      }
    }
    EXPECT_EQ(IsContiguousWithin(outer, inner), contiguous)
        << outer.ToString() << " " << inner.ToString();
  }
}

TEST(PropertyTest, PackThenUnpackIsIdentityOnTheRegion) {
  Rng rng(5150);
  for (int iter = 0; iter < 200; ++iter) {
    const int rank = 1 + static_cast<int>(rng.NextBelow(4));
    const Region box(Index::Zeros(rank), RandomShape(rng, rank, 7));
    const Region piece = RandomSubregion(rng, box);
    const size_t elem = 1 + rng.NextBelow(8);

    std::vector<std::byte> src(static_cast<size_t>(box.Volume()) * elem);
    for (auto& b : src) b = static_cast<std::byte>(rng.Next());

    std::vector<std::byte> packed(static_cast<size_t>(piece.Volume()) * elem);
    PackRegion({packed.data(), packed.size()}, {src.data(), src.size()}, box,
               piece, elem);
    std::vector<std::byte> dst(src.size(), std::byte{0});
    UnpackRegion({dst.data(), dst.size()}, box,
                 {packed.data(), packed.size()}, piece, elem);

    // dst equals src inside the piece and zero outside.
    Index off = Index::Zeros(rank);
    Shape ext = box.extent();
    std::int64_t n = 0;
    do {
      Index g = off;  // box.lo() is zero
      const bool inside = piece.Contains(g);
      for (size_t k = 0; k < elem; ++k) {
        const size_t at = static_cast<size_t>(n) * elem + k;
        if (inside) {
          ASSERT_EQ(dst[at], src[at]);
        } else {
          ASSERT_EQ(dst[at], std::byte{0});
        }
      }
      ++n;
    } while (NextIndexRowMajor(ext, off));
  }
}

TEST(PropertyTest, PlanCoversEveryElementExactlyOnce) {
  // The protocol-correctness core: across a random (memory, disk)
  // schema pair, the union of all pieces covers each array element
  // exactly once, and the pieces are consistent with file offsets.
  Rng rng(777);
  for (int iter = 0; iter < 120; ++iter) {
    const int rank = 1 + static_cast<int>(rng.NextBelow(3));
    const Shape shape = RandomShape(rng, rank, 10);
    const Schema memory = RandomBlockSchema(rng, shape);
    const Schema disk = RandomBlockSchema(rng, shape);
    ArrayMeta meta;
    meta.name = "prop";
    meta.elem_size = 1 + static_cast<std::int64_t>(rng.NextBelow(8));
    meta.memory = memory;
    meta.disk = disk;
    const int num_servers = 1 + static_cast<int>(rng.NextBelow(4));
    const std::int64_t subchunk_bytes =
        8 + static_cast<std::int64_t>(rng.NextBelow(512));
    const IoPlan plan(meta, num_servers, subchunk_bytes);

    // Element coverage by pieces.
    std::map<std::int64_t, int> covered;  // linear index -> count
    for (const auto& cp : plan.chunks()) {
      for (const auto& sp : cp.subchunks) {
        for (const auto& piece : sp.pieces) {
          Index off = Index::Zeros(rank);
          Shape ext = piece.region.extent();
          do {
            Index g = piece.region.lo();
            for (int d = 0; d < rank; ++d) g[d] += off[d];
            std::int64_t lin = 0;
            for (int d = 0; d < rank; ++d) lin = lin * shape[d] + g[d];
            covered[lin] += 1;
          } while (NextIndexRowMajor(ext, off));
        }
      }
    }
    EXPECT_EQ(static_cast<std::int64_t>(covered.size()), shape.Volume())
        << memory.ToString() << " -> " << disk.ToString();
    for (const auto& [lin, count] : covered) {
      ASSERT_EQ(count, 1) << "element " << lin;
    }

    // Segments tile each server's file without gaps.
    std::int64_t total_segment_bytes = 0;
    for (int s = 0; s < num_servers; ++s) {
      total_segment_bytes += plan.SegmentBytes(s);
    }
    EXPECT_EQ(total_segment_bytes, shape.Volume() * meta.elem_size);
  }
}

TEST(PropertyTest, ClientStepsConsistentWithServerOrder) {
  // For every client, the induced per-server subsequence of its steps
  // matches the order in which that server visits (chunk, sub, piece) —
  // the deadlock-freedom precondition.
  Rng rng(31337);
  for (int iter = 0; iter < 60; ++iter) {
    const Shape shape = RandomShape(rng, 3, 8);
    ArrayMeta meta;
    meta.name = "o";
    meta.elem_size = 4;
    meta.memory = RandomBlockSchema(rng, shape);
    meta.disk = RandomBlockSchema(rng, shape);
    const int num_servers = 1 + static_cast<int>(rng.NextBelow(3));
    const IoPlan plan(meta, num_servers, 64);

    const int num_clients = meta.memory.mesh().size();
    for (int c = 0; c < num_clients; ++c) {
      std::map<int, std::vector<ClientStep>> per_server;
      for (const ClientStep& step : plan.StepsOfClient(c)) {
        per_server[plan.chunk(step).server].push_back(step);
      }
      for (const auto& [server, steps] : per_server) {
        // Server visits its chunks ascending, sub-chunks ascending,
        // pieces ascending: the client's view must be sorted the same.
        for (size_t i = 1; i < steps.size(); ++i) {
          const auto key = [](const ClientStep& s) {
            return std::tuple(s.chunk_index, s.sub_index, s.piece_index);
          };
          EXPECT_LT(key(steps[i - 1]), key(steps[i])) << "server " << server;
        }
      }
    }
  }
}

}  // namespace
}  // namespace panda
