// Tests for the server-directed i/o planner (src/panda/plan.*).
#include <gtest/gtest.h>

#include <set>

#include "panda/plan.h"
#include "util/units.h"

namespace panda {
namespace {

ArrayMeta Meta3D(Shape shape, Shape mem_mesh, std::vector<DimDist> mem_dists,
                 Shape disk_mesh, std::vector<DimDist> disk_dists,
                 std::int64_t elem = 4) {
  ArrayMeta meta;
  meta.name = "a";
  meta.elem_size = elem;
  meta.memory = Schema(shape, Mesh(mem_mesh), std::move(mem_dists));
  meta.disk = Schema(shape, Mesh(disk_mesh), std::move(disk_dists));
  return meta;
}

TEST(IoPlanTest, NaturalChunkingRoundRobin) {
  // 8 compute nodes (2x2x2), natural chunking, 3 servers: chunks 0..7
  // round-robin -> server 0 gets {0,3,6}, server 1 {1,4,7}, server 2 {2,5}.
  const auto meta = Meta3D({16, 16, 16}, {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()},
                           {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()});
  const IoPlan plan(meta, 3, 1 * kMiB);
  ASSERT_EQ(plan.chunks().size(), 8u);
  EXPECT_EQ(plan.ChunksOfServer(0), (std::vector<int>{0, 3, 6}));
  EXPECT_EQ(plan.ChunksOfServer(1), (std::vector<int>{1, 4, 7}));
  EXPECT_EQ(plan.ChunksOfServer(2), (std::vector<int>{2, 5}));
  // Load: 3,3,2 chunks of 2 KB each.
  EXPECT_EQ(plan.SegmentBytes(0), 3 * 8 * 8 * 8 * 4);
  EXPECT_EQ(plan.SegmentBytes(2), 2 * 8 * 8 * 8 * 4);
}

TEST(IoPlanTest, NaturalChunkingPiecesAreWholeSubchunks) {
  // Natural chunking: every sub-chunk lies inside exactly one client's
  // cell and is contiguous on both sides -> zero reorganization cost.
  const auto meta = Meta3D({32, 32, 32}, {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()},
                           {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()});
  const IoPlan plan(meta, 2, 4096);
  for (const auto& cp : plan.chunks()) {
    for (const auto& sp : cp.subchunks) {
      ASSERT_EQ(sp.pieces.size(), 1u);
      const PiecePlan& p = sp.pieces[0];
      EXPECT_EQ(p.region, sp.region);
      EXPECT_TRUE(p.contiguous_in_client);
      EXPECT_TRUE(p.contiguous_in_subchunk);
      EXPECT_EQ(p.client, cp.chunk_id);  // disk mesh == memory mesh
    }
  }
}

TEST(IoPlanTest, TraditionalOrderPiecesSpanClients) {
  // BLOCK,BLOCK,BLOCK in memory (8 clients), BLOCK,*,* on disk (2 slabs):
  // each slab gathers pieces from 4 clients.
  const auto meta = Meta3D({16, 16, 16}, {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()},
                           {2},
                           {DimDist::Block(), DimDist::None(), DimDist::None()});
  const IoPlan plan(meta, 2, 1 * kMiB);
  ASSERT_EQ(plan.chunks().size(), 2u);
  for (const auto& cp : plan.chunks()) {
    std::set<int> clients;
    for (const auto& sp : cp.subchunks) {
      for (const auto& p : sp.pieces) clients.insert(p.client);
    }
    EXPECT_EQ(clients.size(), 4u);
  }
}

TEST(IoPlanTest, PiecesPartitionEverySubchunk) {
  // Property: within any sub-chunk, pieces are disjoint and cover it.
  const auto meta = Meta3D({12, 10, 14}, {2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::None()},
                           {3},
                           {DimDist::None(), DimDist::Block(), DimDist::None()});
  const IoPlan plan(meta, 2, 512);
  for (const auto& cp : plan.chunks()) {
    std::int64_t chunk_bytes = 0;
    for (const auto& sp : cp.subchunks) {
      std::int64_t covered = 0;
      for (const auto& p : sp.pieces) {
        EXPECT_TRUE(sp.region.Contains(p.region));
        EXPECT_EQ(p.bytes, p.region.Volume() * meta.elem_size);
        covered += p.region.Volume();
      }
      EXPECT_EQ(covered, sp.region.Volume());
      chunk_bytes += sp.bytes;
    }
    EXPECT_EQ(chunk_bytes, cp.bytes);
  }
}

TEST(IoPlanTest, FileOffsetsArePackedPerServer) {
  const auto meta = Meta3D({64, 64, 64}, {4, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::None()},
                           {4, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::None()});
  const IoPlan plan(meta, 3, 8 * 1024);
  for (int s = 0; s < 3; ++s) {
    std::int64_t expected = 0;
    for (const int ci : plan.ChunksOfServer(s)) {
      const ChunkPlan& cp = plan.chunks()[static_cast<size_t>(ci)];
      EXPECT_EQ(cp.file_offset, expected);
      std::int64_t sub_expected = cp.file_offset;
      for (const auto& sp : cp.subchunks) {
        EXPECT_EQ(sp.file_offset, sub_expected);
        sub_expected += sp.bytes;
      }
      expected += cp.bytes;
    }
    EXPECT_EQ(plan.SegmentBytes(s), expected);
  }
}

TEST(IoPlanTest, ClientStepsAreGloballyOrdered) {
  // The deadlock-freedom invariant: each client's steps ascend in
  // (chunk, sub, piece) lexicographic order.
  const auto meta = Meta3D({24, 24, 24}, {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()},
                           {4},
                           {DimDist::Block(), DimDist::None(), DimDist::None()});
  const IoPlan plan(meta, 3, 2048);
  for (int c = 0; c < 8; ++c) {
    const auto& steps = plan.StepsOfClient(c);
    for (size_t i = 1; i < steps.size(); ++i) {
      const auto& a = steps[i - 1];
      const auto& b = steps[i];
      const auto key = [](const ClientStep& s) {
        return std::tuple(s.chunk_index, s.sub_index, s.piece_index);
      };
      EXPECT_LT(key(a), key(b));
    }
  }
}

TEST(IoPlanTest, StepsCoverEveryPieceExactlyOnce) {
  const auto meta = Meta3D({20, 20}, {2, 2},
                           {DimDist::Block(), DimDist::Block()},
                           {2},
                           {DimDist::None(), DimDist::Block()});
  const IoPlan plan(meta, 2, 256);
  std::int64_t steps_total = 0;
  for (int c = 0; c < 4; ++c) {
    steps_total += static_cast<std::int64_t>(plan.StepsOfClient(c).size());
  }
  EXPECT_EQ(steps_total, plan.TotalPieces());
}

TEST(IoPlanTest, LoadImbalanceWhenServersDoNotDivideChunks) {
  // The paper's load-imbalance discussion: 8 chunks over 3 servers is
  // uneven (3/3/2); over 2 or 4 servers it is even.
  const auto meta = Meta3D({16, 16, 16}, {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()},
                           {2, 2, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::Block()});
  const IoPlan even(meta, 4, 1 * kMiB);
  EXPECT_EQ(even.SegmentBytes(0), even.SegmentBytes(3));
  const IoPlan uneven(meta, 3, 1 * kMiB);
  EXPECT_GT(uneven.SegmentBytes(0), uneven.SegmentBytes(2));
}

TEST(IoPlanTest, TraditionalOrderIsAlwaysBalanced) {
  // BLOCK,*,* over n slabs with n servers distributes evenly even when
  // the client count is awkward — the paper's recommended fix.
  const auto meta = Meta3D({24, 16, 16}, {3, 2},
                           {DimDist::Block(), DimDist::Block(), DimDist::None()},
                           {4},
                           {DimDist::Block(), DimDist::None(), DimDist::None()});
  const IoPlan plan(meta, 4, 1 * kMiB);
  for (int s = 1; s < 4; ++s) {
    EXPECT_EQ(plan.SegmentBytes(s), plan.SegmentBytes(0));
  }
}

TEST(IoPlanTest, CyclicDiskSchemaChunksRoundRobin) {
  // CYCLIC disk schema (our extension): more chunks than mesh slots.
  ArrayMeta meta;
  meta.name = "c";
  meta.elem_size = 8;
  meta.memory = Schema({24}, Mesh(Shape{2}), {DimDist::Block()});
  meta.disk = Schema({24}, Mesh(Shape{2}), {DimDist::Cyclic(4)});
  const IoPlan plan(meta, 2, 1 * kMiB);
  EXPECT_EQ(plan.chunks().size(), 6u);
  EXPECT_EQ(plan.TotalPieces(), 6);
  std::int64_t total = 0;
  for (const auto& cp : plan.chunks()) total += cp.bytes;
  EXPECT_EQ(total, 24 * 8);
}

TEST(IoPlanTest, SubchunkBytesBoundRespected) {
  const auto meta = Meta3D({64, 64, 64}, {2},
                           {DimDist::Block(), DimDist::None(), DimDist::None()},
                           {2},
                           {DimDist::Block(), DimDist::None(), DimDist::None()});
  const IoPlan plan(meta, 2, 10'000);
  for (const auto& cp : plan.chunks()) {
    for (const auto& sp : cp.subchunks) {
      EXPECT_LE(sp.bytes, 10'000);
    }
  }
}

TEST(IoPlanTest, EmptyCellClientsHaveNoSteps) {
  // 2 rows over a 4-wide memory mesh: clients 2,3 hold nothing.
  ArrayMeta meta;
  meta.name = "e";
  meta.elem_size = 4;
  meta.memory = Schema({2, 8}, Mesh(Shape{4}),
                       {DimDist::Block(), DimDist::None()});
  meta.disk = Schema({2, 8}, Mesh(Shape{2}),
                     {DimDist::Block(), DimDist::None()});
  const IoPlan plan(meta, 2, 1 * kMiB);
  EXPECT_TRUE(plan.StepsOfClient(2).empty());
  EXPECT_TRUE(plan.StepsOfClient(3).empty());
  EXPECT_FALSE(plan.StepsOfClient(0).empty());
}

}  // namespace
}  // namespace panda
