// In-process tests for the panda_mc model checker (src/mc/): the
// stateless-replay DFS explorer, the invariant harness, trace
// minimization, .mctrace round-tripping, and the POR soundness audit.
// Each test explores a genuinely tiny config so the whole file stays
// well inside the tier-1 timeout on one core.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/trace.h"
#include "mc/workload.h"
#include "trace/metrics.h"
#include "util/error.h"

namespace panda::mc {
namespace {

// --- .mctrace format ---------------------------------------------------

TEST(McTraceTest, EncodeDecodeRoundTrip) {
  McTrace trace;
  trace.config = {{"clients", "2"}, {"servers", "2"}, {"kill_servers", "0,1"}};
  trace.assignment[{ChoiceKind::kLoss, 1, 2, 7}] =
      static_cast<int>(LossAction::kDrop);
  trace.assignment[{ChoiceKind::kKill, 3, 0, 5}] = 1;
  trace.assignment[{ChoiceKind::kDelivery, 2, 11, 0}] = 1;
  trace.expect = {{"violated", "1"}, {"dead", "0"}};

  const McTrace back = DecodeMcTrace(EncodeMcTrace(trace));
  EXPECT_EQ(back.config, trace.config);
  EXPECT_EQ(back.assignment, trace.assignment);
  EXPECT_EQ(back.expect, trace.expect);
}

TEST(McTraceTest, DecodeRejectsMalformedInput) {
  EXPECT_THROW(DecodeMcTrace("not-a-trace\n"), PandaError);
  EXPECT_THROW(DecodeMcTrace("panda-mctrace v99\n"), PandaError);
  EXPECT_THROW(DecodeMcTrace("panda-mctrace v1\nchoice bogus 1 2 3 4\n"),
               PandaError);
  EXPECT_THROW(DecodeMcTrace("panda-mctrace v1\nchoice loss 1 2\n"),
               PandaError);
}

TEST(McTraceTest, CommentsAndBlankLinesIgnored) {
  const McTrace trace = DecodeMcTrace(
      "panda-mctrace v1\n"
      "# a comment\n"
      "\n"
      "config clients=2\n"
      "choice kill 2 7 1\n");
  EXPECT_EQ(trace.config.size(), 1u);
  EXPECT_EQ(trace.assignment.size(), 1u);
}

TEST(McTraceTest, ConfigLinesRoundTripThroughMcConfig) {
  McConfig config;
  config.drop = true;
  config.dup = true;
  config.kill_servers = {0, 1};
  config.kill_lo = 2;
  config.kill_hi = 9;
  config.timesteps = 3;
  config.deliver_choices = true;
  config.rejoin = true;
  config.max_faults = 3;
  config.expect_no_aborts = true;
  const McConfig back = McConfig::FromConfigLines(config.ToConfigLines());
  EXPECT_EQ(back.ToConfigLines(), config.ToConfigLines());
  EXPECT_TRUE(back.drop);
  EXPECT_TRUE(back.expect_no_aborts);
  EXPECT_EQ(back.kill_servers, config.kill_servers);
  EXPECT_EQ(back.timesteps, 3);
  EXPECT_TRUE(back.deliver_choices);
  EXPECT_TRUE(back.rejoin);
}

// --- exhaustive exploration --------------------------------------------

// With no fault surface armed there is exactly one schedule: the run
// completes, commits, and upholds every invariant. This is the base
// case of the whole approach — the explorer must recognize that the
// space is a single state and report full coverage.
TEST(McExploreTest, NoFaultSpaceIsOneCleanState) {
  McConfig config;  // defaults: 2 clients x 2 servers, no surfaces
  ExploreOptions options;
  const ExploreResult result = Explore(config, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.runs, 1);
  EXPECT_EQ(result.distinct_states, 1);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_EQ(result.outcomes.size(), 1u);
}

// Crash-stopping either i/o node at any send in the window must land in
// a safe terminal state: either the failover path degrades the group
// coherently or every client aborts. The space is small enough to
// exhaust, so this is full coverage of single-kill schedules.
TEST(McExploreTest, SingleKillExplorationUpholdsInvariants) {
  McConfig config;
  config.kill_servers = {0, 1};
  config.kill_lo = 0;
  config.kill_hi = 8;
  ExploreOptions options;
  options.max_runs = 500;
  const ExploreResult result = Explore(config, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().messages.front();
  EXPECT_GT(result.outcomes.size(), 1u);  // clean + degraded + abort states
  EXPECT_GT(result.runs, 8);
}

// Close the fault loop: every schedule that kills the non-master i/o
// node and commits is continued through the rejoin protocol, and the
// kill window is wide enough that the DFS also reaches RE-kill
// decisions inside the rejoin run (send ordinals keep counting across
// the revive). The whole kill -> rejoin -> re-kill space must exhaust
// with zero invariant violations, and at least one terminal state must
// actually have exercised the rejoin phase.
TEST(McExploreTest, KillRejoinRekillExplorationUpholdsInvariants) {
  McConfig config;
  config.kill_servers = {1};
  config.kill_lo = 0;
  config.kill_hi = 40;  // reaches into the rejoin run's send ordinals
  config.max_kills = 2;
  config.rejoin = true;
  ExploreOptions options;
  options.max_runs = 500;
  const ExploreResult result = Explore(config, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().messages.front();
  bool saw_rejoin = false;
  bool saw_rekill = false;
  for (const std::string& outcome : result.outcomes) {
    if (outcome.find("rj_p=") != std::string::npos) saw_rejoin = true;
    if (outcome.find("rj_dead=1") != std::string::npos) saw_rekill = true;
  }
  EXPECT_TRUE(saw_rejoin);
  EXPECT_TRUE(saw_rekill);
}

// The DFS enforces the fault budget statically: with max_faults=1 every
// assignment carrying two non-deliver verdicts is pruned, never run.
TEST(McExploreTest, FaultBudgetPrunesStatically) {
  McConfig config;
  config.drop = true;
  config.max_faults = 1;
  ExploreOptions options;
  options.max_runs = 2000;
  const ExploreResult result = Explore(config, options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_GT(result.pruned_budget, 0);
  // Drops are absorbed below the collective layer: one terminal state.
  EXPECT_EQ(result.outcomes.size(), 1u);
}

// --- POR soundness audit -----------------------------------------------

// The partial-order reduction claims duplicated messages and pure
// timing perturbations cannot reach new terminal states. Audit the
// claim: explore the same config with POR on and off and require the
// reachable-outcome sets to be identical (the reduction may only prune
// runs, never outcomes).
TEST(McExploreTest, PorPreservesReachableOutcomes) {
  McConfig config;
  config.dup = true;
  config.max_faults = 1;

  ExploreOptions with_por;
  with_por.max_runs = 2000;
  with_por.por = true;
  const ExploreResult reduced = Explore(config, with_por);

  ExploreOptions without_por;
  without_por.max_runs = 2000;
  without_por.por = false;
  const ExploreResult full = Explore(config, without_por);

  ASSERT_TRUE(reduced.exhausted);
  ASSERT_TRUE(full.exhausted);
  EXPECT_EQ(reduced.outcomes, full.outcomes);
  EXPECT_LT(reduced.runs, full.runs);  // the reduction actually reduced
  EXPECT_GT(reduced.pruned_por, 0);
}

// Same audit for the any-source delivery reduction: when nobody can
// die, service order at an any-source receive is commutative, so POR
// prunes every delivery pick (and the timing perturbations that create
// multi-candidate queues). Explore a config where delayed messages DO
// pile up behind receivers with the reduction off, and require the
// full interleaving space to reach exactly the outcomes the reduced
// space reached.
TEST(McExploreTest, PorPreservesOutcomesUnderDeliveryChoices) {
  McConfig config;
  config.delay = true;
  config.deliver_choices = true;

  ExploreOptions with_por;
  with_por.max_runs = 2000;
  with_por.por = true;
  const ExploreResult reduced = Explore(config, with_por);

  ExploreOptions without_por;
  without_por.max_runs = 2000;
  without_por.por = false;
  const ExploreResult full = Explore(config, without_por);

  ASSERT_TRUE(reduced.exhausted);
  ASSERT_TRUE(full.exhausted);
  EXPECT_EQ(reduced.outcomes, full.outcomes);
  EXPECT_LT(reduced.runs, full.runs);
  EXPECT_GT(reduced.pruned_por, 0);
  EXPECT_TRUE(full.violations.empty());
}

// --- broken-invariant harness ------------------------------------------

// expect_no_aborts is deliberately too strict: the protocol aborts by
// design when the master i/o node dies. Exploring master kills under
// the flag manufactures a real counterexample, which must be caught,
// minimized to its single essential decision, serialized, and replayed
// bit-deterministically.
TEST(McExploreTest, BrokenInvariantCaughtMinimizedAndReplayed) {
  McConfig config;
  config.kill_servers = {0};  // the master i/o node
  config.kill_lo = 0;
  config.kill_hi = 8;
  config.expect_no_aborts = true;
  ExploreOptions options;
  options.max_runs = 200;
  const ExploreResult result = Explore(config, options);

  ASSERT_FALSE(result.violations.empty());
  const McViolation& violation = result.violations.front();
  // Greedy minimization strips everything but the kill decision.
  EXPECT_EQ(violation.assignment.size(), 1u);
  ASSERT_FALSE(violation.messages.empty());
  EXPECT_NE(violation.messages.front().find("expect_no_aborts"),
            std::string::npos);

  // Serialize the counterexample and replay it through the text format,
  // twice, to pin determinism end to end.
  const McRunResult rerun = RunWorkload(config, violation.assignment);
  ASSERT_FALSE(rerun.violations.empty());
  const McTrace trace = MakeTrace(config, violation.assignment, rerun);
  const McTrace decoded = DecodeMcTrace(EncodeMcTrace(trace));
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string why;
    EXPECT_TRUE(ReplayTrace(decoded, &why)) << why;
  }
}

// A replayed trace whose expectations no longer hold must fail loudly,
// not silently pass — tamper with the expected outcome and check.
TEST(McExploreTest, ReplayDetectsExpectationMismatch) {
  McConfig config;
  const McRunResult result = RunWorkload(config, {});
  ASSERT_TRUE(result.violations.empty());
  McTrace trace = MakeTrace(config, {}, result);
  for (auto& [key, value] : trace.expect) {
    if (key == "violated") value = "1";  // claim a violation that isn't
  }
  std::string why;
  EXPECT_FALSE(ReplayTrace(trace, &why));
  EXPECT_NE(why.find("violated"), std::string::npos);
}

// --- statistics --------------------------------------------------------

TEST(McExploreTest, PublishesMetrics) {
  McConfig config;
  trace::MetricsRegistry registry;
  ExploreOptions options;
  options.metrics = &registry;
  const ExploreResult result = Explore(config, options);
  EXPECT_TRUE(result.exhausted);
  const trace::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_TRUE(snapshot.counters.count("mc.runs"));
  EXPECT_EQ(snapshot.counters.at("mc.runs"), result.runs);
  EXPECT_TRUE(snapshot.counters.count("mc.distinct_states"));
  EXPECT_TRUE(snapshot.gauges.count("mc.exhausted"));
}

// --- random-walk fallback ----------------------------------------------

// Walk mode trades coverage guarantees for reach: every walk must still
// terminate in an invariant-clean state, and distinct seeds should
// surface more than one outcome when kills are armed.
TEST(McExploreTest, RandomWalksStayInvariantClean) {
  McConfig config;
  config.kill_servers = {0, 1};
  config.kill_lo = 0;
  config.kill_hi = 8;
  config.drop = true;
  config.deliver_choices = true;  // walks sample any-source picks too
  ExploreOptions options;
  options.max_runs = 12;
  options.walk_seed = 7;
  const ExploreResult result = Explore(config, options);
  EXPECT_EQ(result.runs, 12);
  EXPECT_TRUE(result.violations.empty())
      << result.violations.front().messages.front();
  EXPECT_FALSE(result.exhausted);  // walks never claim full coverage
}

}  // namespace
}  // namespace panda::mc
