// Tests for the disk-schema advisor (cost-model application).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "panda/advisor.h"
#include "panda/panda.h"

namespace panda {
namespace {

ArrayMeta PaperMeta(std::int64_t planes) {
  ArrayMeta meta;
  meta.name = "adv";
  meta.elem_size = 4;
  meta.memory = Schema({planes, 512, 512}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = meta.memory;
  return meta;
}

TEST(TraditionalOrderTest, RecognizesBlockStarStar) {
  Schema trad({64, 512, 512}, Mesh(Shape{4}), {BLOCK, NONE, NONE});
  EXPECT_TRUE(IsTraditionalOrder(trad, 4));
  // More chunks than servers: round-robin interleaves, not traditional.
  EXPECT_FALSE(IsTraditionalOrder(trad, 2));
  // One server can hold any contiguous sequence.
  Schema single({64, 512, 512}, Mesh(Shape{4}), {BLOCK, NONE, NONE});
  EXPECT_TRUE(IsTraditionalOrder(single, 1));
  // Inner-dimension distribution is never traditional order.
  Schema inner({64, 512, 512}, Mesh(Shape{4}), {NONE, BLOCK, NONE});
  EXPECT_FALSE(IsTraditionalOrder(inner, 4));
  // A full 3-D decomposition is not traditional order.
  Schema cube({64, 512, 512}, Mesh(Shape{2, 2}), {BLOCK, BLOCK, NONE});
  EXPECT_FALSE(IsTraditionalOrder(cube, 4));
}

TEST(AdvisorTest, EnumeratesNaturalAndBlockStarFamilies) {
  const ArrayMeta meta = PaperMeta(64);
  const World world{8, 4};
  const auto ranked = RankDiskSchemas(meta, world, Sp2Params::Nas());
  ASSERT_GE(ranked.size(), 4u);
  // The natural-chunking candidate must be present.
  bool has_natural = false;
  bool has_trad = false;
  for (const auto& cand : ranked) {
    if (cand.disk == meta.memory) has_natural = true;
    if (cand.traditional_order) has_trad = true;
    EXPECT_GT(cand.write_cost.elapsed_s, 0.0);
    EXPECT_GT(cand.read_cost.elapsed_s, 0.0);
  }
  EXPECT_TRUE(has_natural);
  EXPECT_TRUE(has_trad);
  // Ranked ascending by objective.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].objective_s, ranked[i].objective_s);
  }
}

TEST(AdvisorTest, FastDiskWriterPrefersNaturalChunking) {
  // With the disk free, reorganization dominates: writing is cheapest
  // with the disk schema equal to the memory schema (zero reorg), the
  // paper's natural-chunking argument.
  const ArrayMeta meta = PaperMeta(64);
  const World world{8, 8};
  AdvisorOptions options;
  options.read_weight = 0.0;
  const SchemaCandidate best =
      AdviseDiskSchema(meta, world, Sp2Params::NasFastDisk(), options);
  EXPECT_EQ(best.disk, meta.memory);
}

TEST(AdvisorTest, TraditionalOrderConstraintHonored) {
  const ArrayMeta meta = PaperMeta(64);
  const World world{8, 4};
  AdvisorOptions options;
  options.require_traditional_order = true;
  const auto ranked = RankDiskSchemas(meta, world, Sp2Params::Nas(), options);
  ASSERT_FALSE(ranked.empty());
  for (const auto& cand : ranked) {
    EXPECT_TRUE(cand.traditional_order);
  }
  // The classic answer: BLOCK,*,* over the i/o nodes.
  const Schema expected({64, 512, 512}, Mesh(Shape{4}),
                        {BLOCK, NONE, NONE});
  EXPECT_EQ(ranked.front().disk, expected);
}

TEST(AdvisorTest, DiskBoundCostsNearlySchemaIndependent) {
  // On the real (slow) disks the paper found reorganization "not
  // significant"; the advisor's predictions agree: best and worst
  // BLOCK/* candidates are within ~25%.
  const ArrayMeta meta = PaperMeta(32);
  const World world{8, 2};
  const auto ranked = RankDiskSchemas(meta, world, Sp2Params::Nas());
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_LT(ranked.back().objective_s, 1.25 * ranked.front().objective_s);
}

TEST(AdvisorTest, InfeasiblePartitionsSkipped) {
  // A 4-element dimension cannot be distributed over 8 servers; those
  // candidates must be absent rather than producing empty-cell schemas.
  ArrayMeta meta;
  meta.name = "small";
  meta.elem_size = 4;
  meta.memory = Schema({4, 4}, Mesh(Shape{2}), {BLOCK, NONE});
  meta.disk = meta.memory;
  const World world{2, 8};
  const auto ranked = RankDiskSchemas(meta, world, Sp2Params::Nas());
  for (const auto& cand : ranked) {
    for (const auto& chunk : cand.disk.chunks()) {
      EXPECT_FALSE(chunk.region.empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Codec advice (the sampling front end of the compression pipeline).

TEST(AdviseCodecTest, SmoothDataGetsACompressor) {
  // A slowly-varying f64 field — the classic shuffle+rle win: high bytes
  // are near-constant, so the transposed stream runs.
  std::vector<std::byte> sample(64 * 1024);
  for (std::size_t i = 0; i < sample.size() / 8; ++i) {
    const std::uint64_t v = 1'000'000 + i;
    for (int b = 0; b < 8; ++b) {
      sample[i * 8 + b] = static_cast<std::byte>((v >> (8 * b)) & 0xff);
    }
  }
  const CodecAdvice advice = AdviseCodec(sample, 8);
  EXPECT_NE(advice.codec, CodecId::kNone);
  EXPECT_LT(advice.sampled_ratio, 0.95);
}

TEST(AdviseCodecTest, IncompressibleNoiseFallsBackToNone) {
  // splitmix64 noise: no codec reaches the 0.95 break-even threshold,
  // so the advisor must answer "don't bother" rather than pay encode
  // compute for nothing.
  std::vector<std::byte> sample(64 * 1024);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto& b : sample) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    b = static_cast<std::byte>((z ^ (z >> 31)) & 0xff);
  }
  const CodecAdvice advice = AdviseCodec(sample, 8);
  EXPECT_EQ(advice.codec, CodecId::kNone);
  EXPECT_DOUBLE_EQ(advice.sampled_ratio, 1.0);
}

TEST(AdviseCodecTest, EmptyOrSubElementSampleIsNone) {
  EXPECT_EQ(AdviseCodec({}, 8).codec, CodecId::kNone);
  std::vector<std::byte> tiny(3);  // < one 8-byte element after clipping
  EXPECT_EQ(AdviseCodec(tiny, 8).codec, CodecId::kNone);
  EXPECT_THROW(AdviseCodec(tiny, 0), PandaError);
}

}  // namespace
}  // namespace panda
