// The sharded chunk store (src/store/): shard table round trips and
// torn-table degradation, greedy layout packing, LRU handle-pool
// bounds, writer/reader round trips under seeded transient faults on
// both backends, a posix sharded cluster round trip audited by
// VerifyGroupShards, torn-table healing through the frame-probe path,
// and the full kill-mid-write -> rejoin soak on the simulated object
// store with byte identity against a never-failed run.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "iosim/faulty_fs.h"
#include "iosim/object_store.h"
#include "iosim/retry.h"
#include "store/handle_pool.h"
#include "store/shard_layout.h"
#include "store/shard_store.h"
#include "store/shard_table.h"
#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::VerifyPattern;

SimFileSystem MakeBase() {
  return SimFileSystem(SimFileSystem::Options{DiskModel::Instant(), true,
                                              nullptr});
}

std::vector<std::byte> ReadAllBytes(FileSystem& fs, const std::string& name) {
  std::unique_ptr<File> file = fs.Open(name, OpenMode::kRead);
  std::vector<std::byte> bytes(static_cast<size_t>(file->Size()));
  file->ReadAt(0, bytes, static_cast<std::int64_t>(bytes.size()));
  return bytes;
}

// ---------------------------------------------------------------------
// ShardLayout

TEST(ShardLayoutTest, PackIsGreedyBoundedAndInvertible) {
  // Mixed slot sizes, one larger than the shard budget.
  const std::vector<std::int64_t> sizes{300, 300, 300, 1000, 100, 100};
  std::vector<store::ShardSlot> slots;
  std::int64_t offset = 0;
  for (const std::int64_t n : sizes) {
    slots.push_back({offset, n});
    offset += n;
  }
  const store::ShardLayout layout =
      store::ShardLayout::Pack(slots, /*shard_bytes=*/600);

  EXPECT_EQ(layout.records_per_segment(), 6);
  EXPECT_EQ(layout.segment_bytes(), offset);

  // Shards partition the segment: contiguous, ascending, every shard
  // holds at least one slot, and only a single oversized slot may push
  // a shard past the budget.
  std::int64_t covered = 0;
  for (std::int64_t s = 0; s < layout.shards_per_segment(); ++s) {
    const store::ShardSpec& spec = layout.shard(s);
    EXPECT_GE(spec.num_records, 1);
    EXPECT_EQ(spec.base_offset, covered);
    if (spec.num_records > 1) {
      EXPECT_LE(spec.data_bytes, 600);
    }
    covered += spec.data_bytes;
    for (std::int64_t r = spec.first_record;
         r < spec.first_record + spec.num_records; ++r) {
      EXPECT_EQ(layout.ShardOfRecord(r), s);
      EXPECT_GE(layout.slot(r).offset, spec.base_offset);
      EXPECT_LE(layout.slot(r).offset + layout.slot(r).bytes,
                spec.base_offset + spec.data_bytes);
    }
  }
  EXPECT_EQ(covered, layout.segment_bytes());
  // The 1000-byte slot got a shard of its own.
  const std::int64_t big = layout.ShardOfRecord(3);
  EXPECT_EQ(layout.shard(big).num_records, 1);
  EXPECT_EQ(layout.shard(big).data_bytes, 1000);
}

TEST(ShardLayoutTest, ShardFileNamesDeriveFromAnyDataName) {
  EXPECT_EQ(store::ShardFileName("F", 3), "F.shard.3");
  // Staging names shard the same way — that is what routes a staged
  // write to the same (object) backend as its final home.
  EXPECT_EQ(store::ShardFileName("F.tmp", 0), "F.tmp.shard.0");
  EXPECT_TRUE(ObjectStoreFileSystem::IsObjectPath(
      store::ShardFileName("g/F.repair", 7)));
  EXPECT_FALSE(ObjectStoreFileSystem::IsObjectPath("g/F.journal"));
}

// ---------------------------------------------------------------------
// Shard table

std::vector<store::ShardTableEntry> TwoEntries() {
  store::ShardTableEntry a;
  a.array_index = 0;
  a.chunk_id = 7;
  a.sub_index = 0;
  a.codec = CodecId::kNone;
  a.slot_offset = 0;
  a.raw_bytes = 256;
  a.frame_bytes = 256;
  store::ShardTableEntry b = a;
  b.sub_index = 1;
  b.slot_offset = 256;
  return {a, b};
}

TEST(ShardTableTest, TailRoundTripsThroughFileAndImage) {
  const auto entries = TwoEntries();
  const std::int64_t data_bytes = 512;
  const std::vector<std::byte> tail =
      store::BuildShardTail(entries, data_bytes, /*min_file_bytes=*/0);

  SimFileSystem fs = MakeBase();
  auto f = fs.Open("x.shard.0", OpenMode::kWrite);
  const std::vector<std::byte> data(static_cast<size_t>(data_bytes),
                                    std::byte{0x5a});
  f->WriteAt(0, data, data_bytes);
  f->WriteAt(data_bytes, tail, static_cast<std::int64_t>(tail.size()));
  EXPECT_EQ(f->Size(), store::ShardFileBytes(data_bytes, 2));

  const auto table = store::ReadShardTable(*f);
  ASSERT_TRUE(table.has_value());
  ASSERT_EQ(table->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE((*table)[i].valid) << i;
    EXPECT_EQ((*table)[i].chunk_id, entries[i].chunk_id) << i;
    EXPECT_EQ((*table)[i].sub_index, entries[i].sub_index) << i;
    EXPECT_EQ((*table)[i].slot_offset, entries[i].slot_offset) << i;
    EXPECT_EQ((*table)[i].raw_bytes, entries[i].raw_bytes) << i;
    EXPECT_EQ((*table)[i].frame_bytes, entries[i].frame_bytes) << i;
  }

  // The object-store GET path parses the same table from a whole image.
  const auto image_table = store::ParseShardTable(ReadAllBytes(fs, "x.shard.0"));
  ASSERT_TRUE(image_table.has_value());
  EXPECT_EQ(image_table->size(), entries.size());
}

TEST(ShardTableTest, RewriteInPlacePadsOverTheStaleTail) {
  // Failover adoption rewrites a shorter table over a longer one: the
  // tail must pad to the old EOF so the footer lands at Size()-32 and
  // no stale record survives underneath.
  const auto entries = TwoEntries();
  const std::int64_t data_bytes = 512;
  const std::int64_t old_eof = store::ShardFileBytes(data_bytes, 5);
  const std::vector<std::byte> tail =
      store::BuildShardTail(entries, data_bytes, old_eof);
  EXPECT_EQ(static_cast<std::int64_t>(tail.size()) + data_bytes, old_eof);

  SimFileSystem fs = MakeBase();
  auto f = fs.Open("x.shard.0", OpenMode::kWrite);
  const std::vector<std::byte> data(static_cast<size_t>(data_bytes));
  f->WriteAt(0, data, data_bytes);
  f->WriteAt(data_bytes, tail, static_cast<std::int64_t>(tail.size()));
  const auto table = store::ReadShardTable(*f);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(static_cast<std::int64_t>(table->size()), 2);
}

TEST(ShardTableTest, TornFooterDropsTableAndTornEntryDegradesAlone) {
  const auto entries = TwoEntries();
  const std::int64_t data_bytes = 512;
  const std::vector<std::byte> tail =
      store::BuildShardTail(entries, data_bytes, 0);
  SimFileSystem fs = MakeBase();
  auto f = fs.Open("x.shard.0", OpenMode::kWrite);
  const std::vector<std::byte> data(static_cast<size_t>(data_bytes));
  f->WriteAt(0, data, data_bytes);
  f->WriteAt(data_bytes, tail, static_cast<std::int64_t>(tail.size()));

  const auto flip = [&](std::int64_t at) {
    std::byte b;
    f->ReadAt(at, {&b, 1}, 1);
    b ^= std::byte{0x01};
    f->WriteAt(at, {&b, 1}, 1);
  };

  // Level 3: a torn footer drops the whole table (probe-only shard).
  flip(f->Size() - 1);
  EXPECT_FALSE(store::ReadShardTable(*f).has_value());
  flip(f->Size() - 1);

  // Level 2: a torn record invalidates only itself.
  flip(data_bytes + 4);  // inside record 0
  const auto table = store::ReadShardTable(*f);
  ASSERT_TRUE(table.has_value());
  EXPECT_FALSE((*table)[0].valid);
  EXPECT_TRUE((*table)[1].valid);
}

// ---------------------------------------------------------------------
// FileHandlePool

TEST(HandlePoolTest, LruEvictionBoundsHandlesWithoutLosingDurability) {
  SimFileSystem fs = MakeBase();
  store::FileHandlePool pool(&fs, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    const std::string path = "f" + std::to_string(i);
    const std::byte b{static_cast<unsigned char>(0xa0 + i)};
    pool.Acquire(path, OpenMode::kWrite)->WriteAt(0, {&b, 1}, 1);
    EXPECT_LE(pool.open_handles(), 2);
  }
  EXPECT_EQ(pool.misses(), 5);
  EXPECT_EQ(pool.evictions(), 3);

  // The most recent handle is cached; older ones were evicted but their
  // bytes survived (durability is the file's, not the handle's).
  pool.Acquire("f4", OpenMode::kRead);
  EXPECT_EQ(pool.hits(), 1);
  for (int i = 0; i < 5; ++i) {
    std::byte got{};
    pool.Acquire("f" + std::to_string(i), OpenMode::kRead)
        ->ReadAt(0, {&got, 1}, 1);
    EXPECT_EQ(got, std::byte{static_cast<unsigned char>(0xa0 + i)}) << i;
  }
  pool.Clear();
  EXPECT_EQ(pool.open_handles(), 0);
}

// ---------------------------------------------------------------------
// ShardWriter / ShardReader

// 16 contiguous 256-byte slots -> 4 shards of 1 KiB.
store::ShardLayout SixteenSlotLayout() {
  std::vector<store::ShardSlot> slots;
  for (int k = 0; k < 16; ++k) slots.push_back({k * 256, 256});
  return store::ShardLayout::Pack(slots, 1024);
}

std::vector<std::byte> SlotBytes(int k) {
  return std::vector<std::byte>(256, std::byte(0x10 + k));
}

void PutAll(store::ShardWriter& writer) {
  for (int k = 0; k < 16; ++k) {
    const std::vector<std::byte> bytes = SlotBytes(k);
    writer.Put(/*seg=*/0, /*record=*/k, /*array_index=*/0,
               /*chunk_id=*/k / 4, /*sub_index=*/k % 4, CodecId::kNone,
               {bytes.data(), bytes.size()},
               static_cast<std::int64_t>(bytes.size()));
  }
  writer.Finish();
}

void GetAll(store::ShardReader& reader, bool expect_healed) {
  for (int k = 0; k < 16; ++k) {
    const store::ShardRead got = reader.Get(0, k, /*elem_size=*/8);
    ASSERT_EQ(got.raw.size(), 256u) << k;
    EXPECT_EQ(std::memcmp(got.raw.data(), SlotBytes(k).data(), 256), 0) << k;
    EXPECT_EQ(got.healed, expect_healed) << k;
  }
}

TEST(ShardStoreTest, PosixRoundTripHealsSeededFaultsUnderEviction) {
  // Seeded EIO + torn writes on every disk touch, a handle pool smaller
  // than the shard count (eviction mid-write), default retry budget:
  // the round trip must come back byte-exact with zero give-ups.
  SimFileSystem base = MakeBase();
  FaultModel model = FaultModel::Transient(/*seed=*/11, /*probability=*/0.2);
  model.max_consecutive_transient = 2;
  FaultyFileSystem faulty(&base, model);

  const store::ShardLayout layout = SixteenSlotLayout();
  ASSERT_EQ(layout.shards_per_segment(), 4);
  store::StoreOptions options;
  options.shard_bytes = 1024;
  options.backend = store::StoreBackend::kPosix;
  options.handle_pool_capacity = 2;

  VirtualClock clock;
  RobustnessStats stats;
  const RetryPolicy retry;  // writer/reader retry internally
  store::ShardWriter writer(&faulty, "F", &layout, options, OpenMode::kWrite,
                            retry, &clock, &stats);
  PutAll(writer);
  EXPECT_GT(writer.pool().evictions(), 0);

  store::ShardReader reader(&faulty, "F", &layout, options, retry, &clock,
                            &stats);
  GetAll(reader, /*expect_healed=*/false);

  EXPECT_GT(faulty.faults_injected(), 0);
  EXPECT_GT(stats.io_retries.load(), 0);
  EXPECT_EQ(stats.io_giveups.load(), 0);
}

TEST(ShardStoreTest, ObjectBackendRoundTripsWholeObjects) {
  // The same 16 slots through the object store: whole-object PUTs at
  // Finish, whole-object GETs sliced from a 1-image cache (3 extra
  // GETs as the LRU cycles through 4 shards).
  VirtualClock clock;
  ObjectStoreFileSystem fs(
      ObjectStoreFileSystem::Options{ObjectStoreModel{}, true, &clock});

  const store::ShardLayout layout = SixteenSlotLayout();
  store::StoreOptions options;
  options.shard_bytes = 1024;
  options.backend = store::StoreBackend::kObjectStore;
  options.object_cache_shards = 1;

  RobustnessStats stats;
  const RetryPolicy retry;
  store::ShardWriter writer(&fs, "F", &layout, options, OpenMode::kWrite,
                            retry, &clock, &stats);
  PutAll(writer);
  for (std::int64_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(fs.Exists(store::ShardFileName("F", s))) << s;
  }

  store::ShardReader reader(&fs, "F", &layout, options, retry, &clock,
                            &stats);
  GetAll(reader, /*expect_healed=*/false);
  // Each PUT and GET paid its round trip in virtual time.
  EXPECT_GT(clock.Now(), 0.0);
}

// ---------------------------------------------------------------------
// Cluster round trip on the sharded posix layout

Machine SmallMachine(int clients, int servers) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  return Machine::Simulated(clients, servers, params, /*store_data=*/true,
                            /*timing_only=*/false);
}

ServerOptions ShardedOptions(Machine& machine, std::int64_t shard_bytes,
                             store::StoreBackend backend) {
  ServerOptions options;
  options.failover = true;
  options.disk_checksums = true;
  options.journal = true;
  options.shard_bytes = shard_bytes;
  options.backend = backend;
  options.handle_pool_capacity = 4;
  options.robustness = &machine.robustness();
  return options;
}

void RunShardedCluster(Machine& machine, const ServerOptions& options,
                       const std::function<void(PandaClient&, int)>& app) {
  const World world{machine.num_clients(), machine.num_servers()};
  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, machine.params());
        client.set_robustness(&machine.robustness());
        client.set_failover(true);
        app(client, client_index);
        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params(), options);
      });
}

TEST(ShardClusterTest, PosixShardedGroupRoundTripsAndAuditsClean) {
  Machine machine = SmallMachine(4, 2);
  const ServerOptions options =
      ShardedOptions(machine, /*shard_bytes=*/1024, store::StoreBackend::kPosix);

  ArrayLayout memory("m", {2, 2});
  RunShardedCluster(machine, options, [&](PandaClient& client, int idx) {
    Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("sh", "sh.schema");
    group.Include(&a);
    FillPattern(a, 100);
    group.Timestep(client);
    FillPattern(a, 101);
    group.Timestep(client);
    FillPattern(a, 500);
    group.Checkpoint(client);
    FillPattern(a, 999);  // scribble, then restore
    group.Restart(client);
    VerifyPattern(a, 500);
    group.ReadTimestep(client, 0);
    VerifyPattern(a, 100);
    group.ReadTimestep(client, 1);
    VerifyPattern(a, 101);
  });
  EXPECT_EQ(machine.robustness().Snapshot().collectives_aborted, 0);

  // The shard granularity is committed to group metadata; the data
  // lives in shard files, not flat segments.
  const GroupMeta meta = ReadGroupMeta(machine.server_fs(0), "sh.schema");
  EXPECT_EQ(ParseShardBytesAttr(meta.attributes), 1024);
  const std::string flat = DataFileName("sh", "field", Purpose::kTimestep, 0);
  EXPECT_FALSE(machine.server_fs(0).Exists(flat));
  EXPECT_TRUE(machine.server_fs(0).Exists(store::ShardFileName(flat, 0)));

  // All three offline passes are shard-aware and clean.
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1)};
  std::string log;
  const ShardReport shards = VerifyGroupShards(fs, meta, 256, &log);
  EXPECT_TRUE(shards.Clean()) << log;
  EXPECT_GT(shards.files_checked, 0);
  EXPECT_GT(shards.subchunks_checked, 0);
  EXPECT_EQ(shards.tables_torn, 0);
  EXPECT_EQ(shards.healed_slots, 0);
  log.clear();
  const IntegrityReport crcs = VerifyGroupChecksums(fs, meta, 256, &log);
  EXPECT_TRUE(crcs.Clean()) << log;
  EXPECT_GT(crcs.subchunks_checked, 0);
  log.clear();
  const JournalReport wal = VerifyGroupJournal(fs, meta, 256, &log);
  EXPECT_TRUE(wal.Clean()) << log;
  EXPECT_GT(wal.records_checked, 0);
}

TEST(ShardClusterTest, TornTableHealsThroughFrameProbe) {
  Machine machine = SmallMachine(4, 2);
  const ServerOptions options =
      ShardedOptions(machine, /*shard_bytes=*/1024, store::StoreBackend::kPosix);

  ArrayLayout memory("m", {2, 2});
  const auto write_app = [&](PandaClient& client, int idx) {
    Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("torn", "torn.schema");
    group.Include(&a);
    FillPattern(a, 42);
    group.Timestep(client);
  };
  RunShardedCluster(machine, options, write_app);

  // Tear shard 0's footer on server 0: its table is gone, but every
  // slot still proves out through the self-describing frame headers
  // (three-level tolerance — damage is counted, not fatal).
  const std::string shard0 = store::ShardFileName(
      DataFileName("torn", "field", Purpose::kTimestep, 0), 0);
  {
    auto f = machine.server_fs(0).Open(shard0, OpenMode::kReadWrite);
    std::byte b;
    f->ReadAt(f->Size() - 1, {&b, 1}, 1);
    b ^= std::byte{0x01};
    f->WriteAt(f->Size() - 1, {&b, 1}, 1);
  }

  const GroupMeta meta = ReadGroupMeta(machine.server_fs(0), "torn.schema");
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1)};
  std::string log;
  const ShardReport report = VerifyGroupShards(fs, meta, 256, &log);
  EXPECT_TRUE(report.Clean()) << log;
  EXPECT_GE(report.tables_torn, 1);
  EXPECT_GT(report.healed_slots, 0);
  EXPECT_EQ(report.decode_failures, 0);
  EXPECT_EQ(report.crc_mismatches, 0);

  // The live read path heals the same way: a full-set read collective
  // over the torn shard still returns the written pattern.
  RunShardedCluster(machine, options, [&](PandaClient& client, int idx) {
    Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("torn", "torn.schema");
    group.Include(&a);
    ASSERT_TRUE(group.Resume(client));
    group.ReadTimestep(client, 0);
    VerifyPattern(a, 42);
  });
}

// ---------------------------------------------------------------------
// Kill-mid-write failover soak on the sharded object store

TEST(ShardClusterTest, ObjectStoreKillMidWriteRejoinsByteIdentical) {
  // The flat-layout acceptance scenario, re-run on the sharded object
  // store: kill i/o node 1 mid-write, commit a degraded timestep +
  // checkpoint, restart the node, repair, run one more timestep +
  // checkpoint — then every shard file and sidecar must be
  // BYTE-identical to a never-failed run's.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  const std::int64_t shard_bytes = 1024;
  const auto make_machine = [&] {
    return Machine::SimulatedObjectStore(4, 3, params, ObjectStoreModel{},
                                         /*store_data=*/true,
                                         /*timing_only=*/false);
  };
  ArrayLayout memory("m", {2, 2});
  const auto app_run1 = [&](PandaClient& client, int idx) {
    Array a("state", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("rj", "rj.schema");
    group.Include(&a);
    FillPattern(a, 100);
    group.Timestep(client);
    FillPattern(a, 500);
    group.Checkpoint(client);
  };
  const auto app_run2 = [&](PandaClient& client, int idx) {
    Array a("state", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
            {BLOCK, BLOCK});
    a.BindClient(idx);
    ArrayGroup group("rj", "rj.schema");
    group.Include(&a);
    ASSERT_TRUE(group.Resume(client));
    FillPattern(a, 101);
    group.Timestep(client);
    FillPattern(a, 501);
    group.Checkpoint(client);
    FillPattern(a, 999);
    group.Restart(client);
    VerifyPattern(a, 501);
    group.ReadTimestep(client, 0);
    VerifyPattern(a, 100);
    group.ReadTimestep(client, 1);
    VerifyPattern(a, 101);
  };

  Machine failed = make_machine();
  const ServerOptions failed_options =
      ShardedOptions(failed, shard_bytes, store::StoreBackend::kObjectStore);
  failed.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  failed.KillServerAfterSends(/*server_index=*/1, /*after_more_sends=*/3);
  RunShardedCluster(failed, failed_options, app_run1);
  {
    const GroupMeta meta = ReadGroupMeta(failed.server_fs(0), "rj.schema");
    ASSERT_EQ(ParseDeadServersAttr(meta.attributes), (std::vector<int>{1}));
  }
  failed.ResetForRecovery();
  failed.RestartServer(1);
  RunShardedCluster(failed, failed_options, app_run2);

  Machine reference = make_machine();
  const ServerOptions ref_options =
      ShardedOptions(reference, shard_bytes, store::StoreBackend::kObjectStore);
  reference.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});
  RunShardedCluster(reference, ref_options, app_run1);
  reference.ResetForRecovery();
  RunShardedCluster(reference, ref_options, app_run2);

  const RobustnessCounters counters = failed.robustness().Snapshot();
  EXPECT_EQ(counters.rejoins_completed, 1);
  EXPECT_GT(counters.chunks_restored, 0);
  EXPECT_GE(counters.failovers_completed, 1);
  EXPECT_EQ(counters.collectives_aborted, 0);
  EXPECT_EQ(failed.fault_stats().Snapshot().ranks_revived, 1);

  const GroupMeta meta = ReadGroupMeta(failed.server_fs(0), "rj.schema");
  EXPECT_TRUE(ParseDeadServersAttr(meta.attributes).empty());
  EXPECT_EQ(ParseShardBytesAttr(meta.attributes), shard_bytes);

  // Byte identity, shard file by shard file: both machines derive the
  // same layout from the plan, so the repaired image must equal the
  // never-failed one exactly — sidecars included.
  ArrayMeta array;
  array.name = "state";
  array.elem_size = 8;
  array.memory = Schema({32, 32}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  array.disk = array.memory;
  const IoPlan plan(array, 3, params.subchunk_bytes);
  const DegradedLayout identity = DegradedLayout::Compute(plan, {});
  for (int s = 0; s < 3; ++s) {
    const store::ShardLayout shards =
        BuildShardLayout(plan, identity, s, shard_bytes);
    for (const Purpose purpose : {Purpose::kTimestep, Purpose::kCheckpoint}) {
      const std::int64_t segments = purpose == Purpose::kTimestep ? 2 : 1;
      const std::string data = DataFileName("rj", "state", purpose, s);
      for (std::int64_t id = 0; id < segments * shards.shards_per_segment();
           ++id) {
        const std::string shard = store::ShardFileName(data, id);
        ASSERT_TRUE(failed.server_fs(s).Exists(shard)) << shard;
        EXPECT_EQ(ReadAllBytes(failed.server_fs(s), shard),
                  ReadAllBytes(reference.server_fs(s), shard))
            << "server " << s << " " << shard;
      }
      const std::string crc = SidecarFileName(data);
      ASSERT_TRUE(failed.server_fs(s).Exists(crc)) << crc;
      EXPECT_EQ(ReadAllBytes(failed.server_fs(s), crc),
                ReadAllBytes(reference.server_fs(s), crc))
          << "server " << s << " " << crc;
    }
  }

  // The repaired image audits clean under the identity layout.
  FileSystem* fs[] = {&failed.server_fs(0), &failed.server_fs(1),
                      &failed.server_fs(2)};
  std::string log;
  const ShardReport shards = VerifyGroupShards(fs, meta, 256, &log);
  EXPECT_TRUE(shards.Clean()) << log;
  EXPECT_GT(shards.subchunks_checked, 0);
  log.clear();
  const IntegrityReport crcs = VerifyGroupChecksums(fs, meta, 256, &log);
  EXPECT_TRUE(crcs.Clean()) << log;
}

}  // namespace
}  // namespace panda
