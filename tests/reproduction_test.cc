// Paper-shape regression tests: assert that the reproduction's headline
// numbers stay inside the paper's reported bands. If a model or
// protocol change breaks the reproduction, these fail before anyone
// re-reads EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "test_harness.h"

namespace panda {
namespace {

double MeasureNormalized(IoOp op, std::int64_t size_mb, const Shape& cn_mesh,
                         int servers, bool traditional, bool fast_disk) {
  const Sp2Params params =
      fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
  const int clients = static_cast<int>(Mesh(cn_mesh).size());
  const World world{clients, servers};
  const Shape shape{size_mb, 512, 512};
  ArrayMeta meta;
  meta.name = "r";
  meta.elem_size = 4;
  meta.memory =
      Schema(shape, Mesh(cn_mesh), std::vector<DimDist>(3, DimDist::Block()));
  meta.disk = traditional
                  ? Schema(shape, Mesh(Shape{servers}),
                           {DimDist::Block(), DimDist::None(), DimDist::None()})
                  : meta.memory;

  Machine machine =
      Machine::Simulated(clients, servers, params, false, true);
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        client.WriteArray(a);
        const double t =
            op == IoOp::kWrite ? client.WriteArray(a) : client.ReadArray(a);
        if (idx == 0) {
          elapsed = t;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  const double per_ion =
      static_cast<double>(meta.total_bytes()) / elapsed / servers;
  double peak;
  if (fast_disk) {
    peak = params.net.bandwidth_Bps;
  } else {
    const DiskModel aix = DiskModel::NasSp2Aix();
    peak = op == IoOp::kRead ? aix.ReadThroughput(1 * kMiB)
                             : aix.WriteThroughput(1 * kMiB);
  }
  return per_ion / peak;
}

// Figures 3/4: natural chunking, disk-bound — paper band 85-98%.
TEST(PaperShapeTest, Fig3ReadNaturalInBand) {
  for (const int ion : {2, 4, 8}) {
    const double n = MeasureNormalized(IoOp::kRead, 64, {2, 2, 2}, ion,
                                       false, false);
    EXPECT_GE(n, 0.85) << ion << " io nodes";
    EXPECT_LE(n, 0.98) << ion << " io nodes";
  }
}

TEST(PaperShapeTest, Fig4WriteNaturalInBand) {
  for (const int ion : {2, 4, 8}) {
    const double n = MeasureNormalized(IoOp::kWrite, 64, {2, 2, 2}, ion,
                                       false, false);
    EXPECT_GE(n, 0.85) << ion << " io nodes";
    EXPECT_LE(n, 0.98) << ion << " io nodes";
  }
}

// Figures 5/6: natural chunking, fast disk — "near 90% of peak MPI" at
// large sizes, declining for small arrays.
TEST(PaperShapeTest, Fig6FastDiskNear90Percent) {
  const double large = MeasureNormalized(IoOp::kWrite, 256, {4, 4, 2}, 4,
                                         false, true);
  EXPECT_GE(large, 0.85);
  EXPECT_LE(large, 0.95);
  const double small = MeasureNormalized(IoOp::kWrite, 16, {4, 4, 2}, 8,
                                         false, true);
  EXPECT_LT(small, large);  // startup overhead shows at the small end
}

// Figures 7/8: traditional order, disk-bound — paper band 68-95%,
// slightly below natural chunking.
TEST(PaperShapeTest, Fig8TraditionalOrderInBand) {
  for (const int ion : {2, 4, 6, 8}) {
    const double n = MeasureNormalized(IoOp::kWrite, 96, {4, 4, 2}, ion,
                                       true, false);
    EXPECT_GE(n, 0.68) << ion << " io nodes";
    EXPECT_LE(n, 0.95) << ion << " io nodes";
  }
}

TEST(PaperShapeTest, TraditionalOrderSlightlyBelowNatural) {
  const double natural =
      MeasureNormalized(IoOp::kWrite, 64, {4, 4, 2}, 4, false, false);
  const double traditional =
      MeasureNormalized(IoOp::kWrite, 64, {4, 4, 2}, 4, true, false);
  EXPECT_LT(traditional, natural);
  // "the overheads for reorganization ... are not significant": within
  // a few percent when the disk is the bottleneck.
  EXPECT_GT(traditional, 0.90 * natural);
}

// Figure 9: traditional order, fast disk — paper band 38-86%; the
// reorganization cost is now visible.
TEST(PaperShapeTest, Fig9ReorganizationVisibleOnFastDisk) {
  for (const int ion : {2, 4, 8}) {
    const double n = MeasureNormalized(IoOp::kWrite, 128, {4, 2, 2}, ion,
                                       true, true);
    EXPECT_GE(n, 0.38) << ion << " io nodes";
    EXPECT_LE(n, 0.86) << ion << " io nodes";
  }
  // And clearly below the natural-chunking fast-disk result.
  const double natural =
      MeasureNormalized(IoOp::kWrite, 128, {4, 2, 2}, 4, false, true);
  const double traditional =
      MeasureNormalized(IoOp::kWrite, 128, {4, 2, 2}, 4, true, true);
  EXPECT_LT(traditional, 0.95 * natural);
}

// Figure 7: traditional-order reads stay in the paper's 68-95% band.
TEST(PaperShapeTest, Fig7ReadTraditionalInBand) {
  for (const int ion : {2, 4, 6, 8}) {
    const double n = MeasureNormalized(IoOp::kRead, 96, {4, 4, 2}, ion,
                                       true, false);
    EXPECT_GE(n, 0.68) << ion << " io nodes";
    EXPECT_LE(n, 0.95) << ion << " io nodes";
  }
}

// Figure 5: fast-disk reads match fast-disk writes (the paper: "the
// throughputs will be similar for both reads and writes").
TEST(PaperShapeTest, Fig5FastDiskReadsMatchWrites) {
  const double read_n =
      MeasureNormalized(IoOp::kRead, 128, {4, 4, 2}, 4, false, true);
  const double write_n =
      MeasureNormalized(IoOp::kWrite, 128, {4, 4, 2}, 4, false, true);
  EXPECT_NEAR(read_n, write_n, 0.02);
  EXPECT_GE(read_n, 0.85);
}

// Reads outpace writes on the AIX model (2.85 vs 2.23 MB/s peaks).
TEST(PaperShapeTest, ReadsFasterThanWritesDiskBound) {
  const double read_n =
      MeasureNormalized(IoOp::kRead, 64, {2, 2, 2}, 2, false, false);
  const double write_n =
      MeasureNormalized(IoOp::kWrite, 64, {2, 2, 2}, 2, false, false);
  // Both normalized against their own peaks -> similar normalized values.
  EXPECT_NEAR(read_n, write_n, 0.05);
}

// Aggregate throughput scales with the number of i/o nodes (disk-bound).
TEST(PaperShapeTest, AggregateScalesWithIoNodes) {
  double prev_elapsed = 1e18;
  for (const int ion : {2, 4, 8}) {
    const Sp2Params params = Sp2Params::Nas();
    ArrayMeta meta;
    meta.name = "s";
    meta.elem_size = 4;
    meta.memory = Schema({64, 512, 512}, Mesh(Shape{2, 2, 2}),
                         std::vector<DimDist>(3, DimDist::Block()));
    meta.disk = meta.memory;
    const World world{8, ion};
    Machine machine = Machine::Simulated(8, ion, params, false, true);
    double elapsed = 0.0;
    machine.Run(
        [&](Endpoint& ep, int idx) {
          PandaClient client(ep, world, params);
          Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
          a.BindClient(idx, false);
          const double t = client.WriteArray(a);
          if (idx == 0) {
            elapsed = t;
            client.Shutdown();
          }
        },
        [&](Endpoint& ep, int sidx) {
          ServerMain(ep, machine.server_fs(sidx), world, params);
        });
    EXPECT_LT(elapsed, 0.60 * prev_elapsed) << ion;  // near-linear scaling
    prev_elapsed = elapsed;
  }
}

}  // namespace
}  // namespace panda
