// Failure injection: i/o nodes dying mid-collective must fail loudly
// (no hangs, no partial silence) and must never destroy the previous
// checkpoint (atomic checkpoint publication).
#include <gtest/gtest.h>

#include "iosim/faulty_fs.h"
#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::RunCluster;
using test::VerifyPattern;

TEST(FaultyFsTest, FailsAfterThreshold) {
  SimFileSystem base(SimFileSystem::Options{DiskModel::Instant(), true,
                                            nullptr});
  FaultyFileSystem fs(&base, 2);
  auto f = fs.Open("x", OpenMode::kWrite);
  std::vector<std::byte> data(4);
  f->WriteAt(0, {data.data(), data.size()}, 4);  // op 1
  f->WriteAt(4, {data.data(), data.size()}, 4);  // op 2
  EXPECT_THROW(f->WriteAt(8, {data.data(), data.size()}, 4), PandaError);
  EXPECT_EQ(fs.ops_seen(), 3);
}

TEST(FaultyFsTest, NegativeThresholdNeverFails) {
  SimFileSystem base(SimFileSystem::Options{DiskModel::Instant(), true,
                                            nullptr});
  FaultyFileSystem fs(&base, -1);
  auto f = fs.Open("x", OpenMode::kWrite);
  std::vector<std::byte> data(4);
  for (int i = 0; i < 100; ++i) {
    f->WriteAt(i * 4, {data.data(), data.size()}, 4);
  }
  f->Sync();
}

// A cluster whose server 0 dies after `fail_after` fs operations.
class FaultyCluster {
 public:
  FaultyCluster(int clients, int servers, std::int64_t fail_after) {
    Sp2Params params = Sp2Params::Functional();
    params.subchunk_bytes = 256;
    machine_ = std::make_unique<Machine>(Machine::Simulated(
        clients, servers, params, /*store_data=*/true, false));
    faulty_ = std::make_unique<FaultyFileSystem>(&machine_->server_fs(0),
                                                 fail_after);
  }

  // Runs `app` with the faulty FS on server 0; returns machine access.
  void Run(const std::function<void(PandaClient&, int)>& app) {
    const World world{machine_->num_clients(), machine_->num_servers()};
    machine_->Run(
        [&](Endpoint& ep, int idx) {
          PandaClient client(ep, world, machine_->params());
          app(client, idx);
          if (idx == 0) client.Shutdown();
        },
        [&](Endpoint& ep, int sidx) {
          FileSystem& fs =
              sidx == 0 ? static_cast<FileSystem&>(*faulty_)
                        : machine_->server_fs(sidx);
          ServerMain(ep, fs, world, machine_->params());
        });
  }

  Machine& machine() { return *machine_; }

 private:
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<FaultyFileSystem> faulty_;
};

TEST(FaultInjectionTest, DyingServerAbortsCollectiveLoudly) {
  FaultyCluster cluster(4, 2, 1);  // server 0 dies on its 2nd operation
  ArrayLayout memory("m", {2, 2});
  EXPECT_THROW(
      cluster.Run([&](PandaClient& client, int idx) {
        Array a("x", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                {BLOCK, BLOCK});
        a.BindClient(idx);
        FillPattern(a, 1);
        client.WriteArray(a);
      }),
      PandaError);
}

TEST(FaultInjectionTest, CrashedCheckpointPreservesPreviousOne) {
  // First run: a healthy checkpoint. Second run (same file systems): the
  // next checkpoint dies midway; the original must remain restorable.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine =
      Machine::Simulated(4, 2, params, /*store_data=*/true, false);
  const World world{4, 2};
  ArrayLayout memory("m", {2, 2});
  auto make_array = [&] {
    return Array("state", {16, 16}, 8, memory, {BLOCK, BLOCK}, memory,
                 {BLOCK, BLOCK});
  };

  // Healthy checkpoint with contents A.
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a = make_array();
        a.BindClient(idx);
        FillPattern(a, 1000);
        ArrayGroup group("g");
        group.Include(&a);
        group.Checkpoint(client);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });

  // Second checkpoint with contents B dies at server 0 mid-write.
  FaultyFileSystem faulty(&machine.server_fs(0), 1);
  EXPECT_THROW(
      machine.Run(
          [&](Endpoint& ep, int idx) {
            PandaClient client(ep, world, params);
            Array a = make_array();
            a.BindClient(idx);
            FillPattern(a, 2000);
            ArrayGroup group("g");
            group.Include(&a);
            group.Checkpoint(client);
            if (idx == 0) client.Shutdown();
          },
          [&](Endpoint& ep, int sidx) {
            FileSystem& fs = sidx == 0 ? static_cast<FileSystem&>(faulty)
                                       : machine.server_fs(sidx);
            ServerMain(ep, fs, world, params);
          }),
      PandaError);

  // The poisoned transport is unusable; restore from the surviving file
  // systems through the sequential path (no transport state involved).
  SequentialPanda seq({&machine.server_fs(0), &machine.server_fs(1)},
                      params);
  ArrayMeta meta;
  meta.name = "state";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  const auto restored =
      seq.ReadWhole(meta, Purpose::kCheckpoint, 0, "g");
  // Contents must be checkpoint A (salt 1000), not the torn B.
  for (std::int64_t i = 0; i < 16 * 16; ++i) {
    const std::uint64_t want =
        test::PatternValue(1000, static_cast<std::uint64_t>(i));
    EXPECT_EQ(std::memcmp(restored.data() + i * 8, &want, 8), 0)
        << "element " << i;
  }
}

TEST(FaultInjectionTest, DyingServerDuringReadAborts) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ArrayLayout memory("m", {2, 2});
  // Healthy write first.
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a("x", {32, 32}, 4, memory, {BLOCK, BLOCK}, memory,
                {BLOCK, BLOCK});
        a.BindClient(idx);
        FillPattern(a, 9);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  // Read with a failing server.
  FaultyFileSystem faulty(&machine.server_fs(0), 2);
  EXPECT_THROW(
      machine.Run(
          [&](Endpoint& ep, int idx) {
            PandaClient client(ep, world, params);
            Array a("x", {32, 32}, 4, memory, {BLOCK, BLOCK}, memory,
                    {BLOCK, BLOCK});
            a.BindClient(idx);
            client.ReadArray(a);
            if (idx == 0) client.Shutdown();
          },
          [&](Endpoint& ep, int sidx) {
            FileSystem& fs = sidx == 0 ? static_cast<FileSystem&>(faulty)
                                       : machine.server_fs(sidx);
            ServerMain(ep, fs, world, params);
          }),
      PandaError);
}

}  // namespace
}  // namespace panda
