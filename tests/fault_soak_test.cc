// Robustness soak: seeded transient-fault schedules against full
// collectives. Transient faults (EIO, torn writes, silently corrupted
// reads, faulted metadata ops) must heal invisibly — byte-exact results
// with only the retry/checksum counters betraying the weather — while a
// permanent fault must abort the whole cluster in bounded virtual time
// with every rank throwing the same structured PandaAbortError, and the
// previous checkpoint must stay restorable.
#include <gtest/gtest.h>

#include <cstring>
#include <exception>
#include <vector>

#include "iosim/faulty_fs.h"
#include "iosim/retry.h"
#include "test_harness.h"
#include "util/crc32c.h"

namespace panda {
namespace {

using test::FillPattern;
using test::PatternValue;
using test::VerifyPattern;

// ---------------------------------------------------------------------
// CRC32C

TEST(Crc32cTest, KnownAnswerVector) {
  // The canonical CRC32C check vector (RFC 3720 appendix B.4).
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(digits, 0), 0x00000000u);
}

TEST(Crc32cTest, SeedChainsDiscontiguousBuffers) {
  const char* digits = "123456789";
  const std::uint32_t head = Crc32c(digits, 4);
  EXPECT_EQ(Crc32c(digits + 4, 5, head), Crc32c(digits, 9));
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<std::byte> buf(1024);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = std::byte(i * 37);
  const std::uint32_t clean = Crc32c({buf.data(), buf.size()});
  for (const size_t at : {size_t{0}, size_t{511}, size_t{1023}}) {
    buf[at] ^= std::byte{0x01};
    EXPECT_NE(Crc32c({buf.data(), buf.size()}), clean);
    buf[at] ^= std::byte{0x01};
  }
}

// ---------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicyTest, TransientFaultsHealWithBackoff) {
  VirtualClock clock;
  RobustnessStats stats;
  RetryPolicy policy;  // 4 attempts, 1 ms backoff doubling
  int attempts = 0;
  policy.Run(&clock, &stats, [&] {
    if (++attempts < 3) throw TransientIoError("flaky");
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(stats.io_retries.load(), 2);
  EXPECT_EQ(stats.io_giveups.load(), 0);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.0e-3 + 2.0e-3);  // exponential backoff
}

TEST(RetryPolicyTest, ExhaustedBudgetRethrowsAndCountsGiveup) {
  VirtualClock clock;
  RobustnessStats stats;
  RetryPolicy policy;
  int attempts = 0;
  EXPECT_THROW(policy.Run(&clock, &stats,
                          [&] {
                            ++attempts;
                            throw TransientIoError("always");
                          }),
               TransientIoError);
  EXPECT_EQ(attempts, policy.max_attempts);
  EXPECT_EQ(stats.io_retries.load(), policy.max_attempts - 1);
  EXPECT_EQ(stats.io_giveups.load(), 1);
}

TEST(RetryPolicyTest, ZeroAttemptBudgetStillRunsTheOperationOnce) {
  // "Zero attempts" must mean zero *retries*, never a silently skipped
  // disk operation: the op runs exactly once and a failure counts as an
  // immediate give-up with no backoff charged.
  for (const int budget : {0, -5}) {
    VirtualClock clock;
    RobustnessStats stats;
    RetryPolicy policy;
    policy.max_attempts = budget;
    int attempts = 0;
    policy.Run(&clock, &stats, [&] { ++attempts; });
    EXPECT_EQ(attempts, 1) << "budget " << budget;

    attempts = 0;
    EXPECT_THROW(policy.Run(&clock, &stats,
                            [&] {
                              ++attempts;
                              throw TransientIoError("always");
                            }),
                 TransientIoError)
        << "budget " << budget;
    EXPECT_EQ(attempts, 1) << "budget " << budget;
    EXPECT_EQ(stats.io_retries.load(), 0) << "budget " << budget;
    EXPECT_EQ(stats.io_giveups.load(), 1) << "budget " << budget;
    EXPECT_DOUBLE_EQ(clock.Now(), 0.0) << "budget " << budget;
  }
}

TEST(RetryPolicyTest, BackoffSaturatesAtTheCap) {
  // With a large budget the exponential backoff must clamp at
  // max_backoff_s instead of doubling without bound (or overflowing).
  VirtualClock clock;
  RobustnessStats stats;
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.backoff_s = 1.0e-3;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 4.0e-3;  // caps after two doublings
  EXPECT_THROW(policy.Run(&clock, &stats,
                          [&] { throw TransientIoError("always"); }),
               TransientIoError);
  EXPECT_EQ(stats.io_retries.load(), 11);
  // 1ms + 2ms + 4ms + 8 more waits clamped at 4ms.
  EXPECT_DOUBLE_EQ(clock.Now(), 1.0e-3 + 2.0e-3 + 9 * 4.0e-3);
  // The same schedule with the cap disabled grows without clamping.
  VirtualClock unclamped;
  RetryPolicy free_policy = policy;
  free_policy.max_backoff_s = 0.0;  // 0 disables the cap
  EXPECT_THROW(free_policy.Run(&unclamped, nullptr,
                               [&] { throw TransientIoError("always"); }),
               TransientIoError);
  EXPECT_GT(unclamped.Now(), clock.Now());
}

TEST(RetryPolicyTest, PermanentErrorsAreNotRetried) {
  VirtualClock clock;
  RobustnessStats stats;
  int attempts = 0;
  EXPECT_THROW(RetryPolicy{}.Run(&clock, &stats,
                                 [&] {
                                   ++attempts;
                                   throw PandaError("disk died");
                                 }),
               PandaError);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(stats.io_retries.load(), 0);
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
}

// ---------------------------------------------------------------------
// FaultyFileSystem's transient model

SimFileSystem MakeBase() {
  return SimFileSystem(SimFileSystem::Options{DiskModel::Instant(), true,
                                              nullptr});
}

TEST(FaultyFsTransientTest, ScriptedFaultFiresAtExactOrdinalAndHeals) {
  SimFileSystem base = MakeBase();
  FaultModel model;
  model.fault_at_ops = {2};
  FaultyFileSystem fs(&base, model);
  auto f = fs.Open("x", OpenMode::kWrite);
  std::vector<std::byte> data(4, std::byte{0xab});
  f->WriteAt(0, {data.data(), data.size()}, 4);  // op 1: clean
  EXPECT_THROW(f->WriteAt(4, {data.data(), data.size()}, 4),
               TransientIoError);                // op 2: scripted fault
  f->WriteAt(4, {data.data(), data.size()}, 4);  // op 3: the retry heals
  EXPECT_EQ(fs.ops_seen(), 3);
  EXPECT_EQ(fs.faults_injected(), 1);
}

TEST(FaultyFsTransientTest, MetadataOpsFaultOnlyWhenEnabled) {
  {
    SimFileSystem base = MakeBase();
    FaultModel model;
    model.fault_at_ops = {1};
    FaultyFileSystem fs(&base, model);  // metadata_ops off (default)
    auto f = fs.Open("x", OpenMode::kWrite);  // not counted
    EXPECT_EQ(fs.ops_seen(), 0);
    std::vector<std::byte> data(4);
    EXPECT_THROW(f->WriteAt(0, {data.data(), data.size()}, 4),
                 TransientIoError);  // the first *data* op is ordinal 1
  }
  {
    SimFileSystem base = MakeBase();
    FaultModel model;
    model.fault_at_ops = {1};
    model.metadata_ops = true;
    FaultyFileSystem fs(&base, model);
    EXPECT_THROW(fs.Open("x", OpenMode::kWrite), TransientIoError);
    EXPECT_EQ(fs.ops_seen(), 1);
    fs.Open("x", OpenMode::kWrite);  // retry heals
    EXPECT_EQ(fs.ops_seen(), 2);
  }
}

TEST(FaultyFsTransientTest, SeededFaultsHealUnderRetryPolicy) {
  SimFileSystem base = MakeBase();
  FaultModel model = FaultModel::Transient(/*seed=*/7, /*probability=*/0.4);
  model.max_consecutive_transient = 2;
  FaultyFileSystem fs(&base, model);
  VirtualClock clock;
  RobustnessStats stats;
  const RetryPolicy policy;  // 4 attempts > max_consecutive_transient

  std::unique_ptr<File> f;
  policy.Run(&clock, &stats, [&] { f = fs.Open("x", OpenMode::kWrite); });
  std::vector<std::byte> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i);
  for (int block = 0; block < 32; ++block) {
    policy.Run(&clock, &stats, [&] {
      f->WriteAt(block * 64, {data.data(), data.size()}, 64);
    });
  }
  policy.Run(&clock, &stats, [&] { f->Sync(); });

  // With p=0.4 over 30+ ops the seeded schedule certainly fired — and
  // every fault (EIO or torn write) healed within the retry budget.
  EXPECT_GT(fs.faults_injected(), 0);
  EXPECT_GT(stats.io_retries.load(), 0);
  EXPECT_EQ(stats.io_giveups.load(), 0);

  // Byte-exact on the base file system (torn writes were rewritten).
  auto check = base.Open("x", OpenMode::kRead);
  std::vector<std::byte> got(64);
  for (int block = 0; block < 32; ++block) {
    check->ReadAt(block * 64, {got.data(), got.size()}, 64);
    EXPECT_EQ(std::memcmp(got.data(), data.data(), 64), 0) << block;
  }
}

// ---------------------------------------------------------------------
// Cluster soak under seeded transient faults

// Runs a cluster whose i/o nodes all sit behind seeded FaultyFileSystems.
class TransientCluster {
 public:
  TransientCluster(int clients, int servers,
                   const std::function<FaultModel(int)>& model_of_server) {
    Sp2Params params = Sp2Params::Functional();
    params.subchunk_bytes = 256;
    machine_ = std::make_unique<Machine>(Machine::Simulated(
        clients, servers, params, /*store_data=*/true, /*timing_only=*/false));
    for (int s = 0; s < servers; ++s) {
      faulty_.push_back(std::make_unique<FaultyFileSystem>(
          &machine_->server_fs(s), model_of_server(s)));
    }
  }

  void Run(const std::function<void(PandaClient&, int)>& app,
           ServerOptions options = {}) {
    const World world{machine_->num_clients(), machine_->num_servers()};
    options.robustness = &machine_->robustness();
    machine_->Run(
        [&](Endpoint& ep, int idx) {
          PandaClient client(ep, world, machine_->params());
          client.set_robustness(&machine_->robustness());
          app(client, idx);
          if (idx == 0) client.Shutdown();
        },
        [&](Endpoint& ep, int sidx) {
          ServerMain(ep, *faulty_[static_cast<size_t>(sidx)], world,
                     machine_->params(), options);
        });
  }

  Machine& machine() { return *machine_; }
  FaultyFileSystem& faulty(int s) { return *faulty_[static_cast<size_t>(s)]; }

 private:
  std::unique_ptr<Machine> machine_;
  std::vector<std::unique_ptr<FaultyFileSystem>> faulty_;
};

TEST(FaultSoakTest, TransientFaultsHealByteExactAcrossCollectives) {
  // EIO + torn writes + faulted metadata ops on every i/o node, across
  // plain writes, reads, a timestep stream and checkpoint + restart.
  TransientCluster cluster(4, 2, [](int s) {
    FaultModel m = FaultModel::Transient(/*seed=*/1000 + s,
                                         /*probability=*/0.10);
    m.metadata_ops = true;
    return m;
  });
  ServerOptions options;
  options.disk_checksums = true;
  // A deeper retry budget than the default: at a 10% fault rate,
  // back-to-back transients on one operation are likely enough across a
  // whole soak that success should not hinge on exactly 4 tries.
  options.retry.max_attempts = 6;

  ArrayLayout memory("m", {2, 2});
  cluster.Run(
      [&](PandaClient& client, int idx) {
        Array a("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                {BLOCK, BLOCK});
        a.BindClient(idx);

        // Plain write + read round trip.
        FillPattern(a, 1);
        client.WriteArray(a);
        std::memset(a.local_data().data(), 0, a.local_data().size());
        client.ReadArray(a);
        VerifyPattern(a, 1);

        // Timestep stream + checkpoint + restart through an ArrayGroup.
        ArrayGroup group("soak", "soak.schema");
        group.Include(&a);
        FillPattern(a, 100);
        group.Timestep(client);
        FillPattern(a, 101);
        group.Timestep(client);
        FillPattern(a, 500);
        group.Checkpoint(client);
        FillPattern(a, 999);  // scribble, then restore
        group.Restart(client);
        VerifyPattern(a, 500);
        group.ReadTimestep(client, 0);
        VerifyPattern(a, 100);
        group.ReadTimestep(client, 1);
        VerifyPattern(a, 101);
      },
      options);

  // The seeded schedules certainly fired; every fault healed invisibly.
  std::int64_t injected = 0;
  for (int s = 0; s < 2; ++s) injected += cluster.faulty(s).faults_injected();
  EXPECT_GT(injected, 0);
  const RobustnessCounters counters = cluster.machine().robustness().Snapshot();
  EXPECT_GT(counters.io_retries, 0);
  EXPECT_EQ(counters.io_giveups, 0);
  EXPECT_EQ(counters.wire_checksum_failures, 0);
  EXPECT_EQ(counters.disk_checksum_failures, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);

  // Offline verification agrees: every sidecar matches the bytes the
  // faults tried to tear.
  const GroupMeta meta =
      ReadGroupMeta(cluster.machine().server_fs(0), "soak.schema");
  FileSystem* fs[] = {&cluster.machine().server_fs(0),
                      &cluster.machine().server_fs(1)};
  std::string log;
  const IntegrityReport report = VerifyGroupChecksums(
      fs, meta, cluster.machine().params().subchunk_bytes, &log);
  EXPECT_TRUE(report.Clean()) << log;
  EXPECT_GT(report.subchunks_checked, 0);
  EXPECT_EQ(report.files_without_sidecar, 0);
}

TEST(FaultSoakTest, SilentReadCorruptionHealsByReread) {
  // Clean write, then a read pass whose i/o nodes silently corrupt read
  // buffers now and then. Only checksums can catch this; the one-re-read
  // policy heals it without aborting.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ArrayLayout memory("m", {2, 2});
  auto make_array = [&] {
    return Array("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                 {BLOCK, BLOCK});
  };
  ServerOptions options;
  options.disk_checksums = true;
  options.robustness = &machine.robustness();

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a = make_array();
        a.BindClient(idx);
        FillPattern(a, 42);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });

  std::vector<std::unique_ptr<FaultyFileSystem>> faulty;
  for (int s = 0; s < 2; ++s) {
    FaultModel m = FaultModel::Transient(/*seed=*/77 + s,
                                         /*probability=*/0.25);
    m.torn_writes = false;
    m.corrupt_reads = true;
    // After any fault the next 3 eligible ops are clean — covering the
    // whole verify window (record read, record re-read, data re-read),
    // so the one-re-read policy is *guaranteed* to heal.
    m.min_clean_after_fault = 3;
    faulty.push_back(
        std::make_unique<FaultyFileSystem>(&machine.server_fs(s), m));
  }
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        client.set_robustness(&machine.robustness());
        Array a = make_array();
        a.BindClient(idx);
        client.ReadArray(a);
        VerifyPattern(a, 42);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, *faulty[static_cast<size_t>(sidx)], world, params,
                   options);
      });

  std::int64_t injected = 0;
  for (int s = 0; s < 2; ++s) injected += faulty[s]->faults_injected();
  EXPECT_GT(injected, 0);
  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GT(counters.disk_checksum_rereads, 0);
  EXPECT_EQ(counters.disk_checksum_failures, 0);
  EXPECT_EQ(counters.collectives_aborted, 0);
}

TEST(FaultSoakTest, CorruptedDiskBlockAbortsReadCollective) {
  // Flip one byte *on disk* after a checksummed write: the read
  // collective must refuse to hand out the scrambled data.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ArrayLayout memory("m", {2, 2});
  auto make_array = [&] {
    return Array("field", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                 {BLOCK, BLOCK});
  };
  ServerOptions options;
  options.disk_checksums = true;
  options.robustness = &machine.robustness();

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a = make_array();
        a.BindClient(idx);
        FillPattern(a, 3);
        client.WriteArray(a);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });

  // Corrupt the stored bytes behind the sidecar's back.
  {
    const std::string name = DataFileName("", "field", Purpose::kGeneral, 0);
    auto f = machine.server_fs(0).Open(name, OpenMode::kReadWrite);
    std::vector<std::byte> b(1);
    f->ReadAt(100, {b.data(), 1}, 1);
    b[0] ^= std::byte{0x40};
    f->WriteAt(100, {b.data(), 1}, 1);
  }

  EXPECT_THROW(
      machine.Run(
          [&](Endpoint& ep, int idx) {
            PandaClient client(ep, world, params);
            client.set_robustness(&machine.robustness());
            Array a = make_array();
            a.BindClient(idx);
            client.ReadArray(a);
            if (idx == 0) client.Shutdown();
          },
          [&](Endpoint& ep, int sidx) {
            ServerMain(ep, machine.server_fs(sidx), world, params, options);
          }),
      PandaAbortError);
  const RobustnessCounters counters = machine.robustness().Snapshot();
  EXPECT_GE(counters.disk_checksum_failures, 1);
  EXPECT_GE(counters.collectives_aborted, 1);

  // Offline fsck sees the same corruption.
  ArrayMeta meta;
  meta.name = "field";
  meta.elem_size = 8;
  meta.memory = Schema({32, 32}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1)};
  std::string log;
  const IntegrityReport report = VerifyArrayChecksums(
      fs, meta, params.subchunk_bytes, Purpose::kGeneral, 1, "", &log);
  EXPECT_EQ(report.crc_mismatches, 1) << log;
  EXPECT_FALSE(report.Clean());
  EXPECT_FALSE(log.empty());
}

// ---------------------------------------------------------------------
// Structured cluster-wide abort

TEST(FaultSoakTest, PermanentFaultAbortsEveryRankWithOrigin) {
  // Server 0's disk dies permanently mid-collective. Every rank —
  // clients included — must throw PandaAbortError naming server 0's
  // rank as the origin, within bounded virtual time (no hangs).
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ArrayLayout memory("m", {2, 2});
  FaultyFileSystem faulty(&machine.server_fs(0), /*fail_after_ops=*/1);
  ServerOptions options;
  options.robustness = &machine.robustness();

  const int nranks = 6;
  std::vector<int> observed_origin(nranks, -2);
  auto record = [&](int rank, const std::function<void()>& body) {
    try {
      body();
      observed_origin[static_cast<size_t>(rank)] = -1;  // completed
    } catch (const PandaAbortError& e) {
      observed_origin[static_cast<size_t>(rank)] = e.origin_rank();
    }
  };

  machine.Run(
      [&](Endpoint& ep, int idx) {
        record(ep.rank(), [&] {
          PandaClient client(ep, world, params);
          client.set_robustness(&machine.robustness());
          Array a("x", {32, 32}, 8, memory, {BLOCK, BLOCK}, memory,
                  {BLOCK, BLOCK});
          a.BindClient(idx);
          FillPattern(a, 1);
          client.WriteArray(a);
          if (idx == 0) client.Shutdown();
        });
      },
      [&](Endpoint& ep, int sidx) {
        record(ep.rank(), [&] {
          FileSystem& fs = sidx == 0 ? static_cast<FileSystem&>(faulty)
                                     : machine.server_fs(sidx);
          ServerMain(ep, fs, world, params, options);
        });
      });

  const int origin = world.server_rank(0);  // rank 4
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(observed_origin[static_cast<size_t>(r)], origin)
        << "rank " << r << " did not observe the structured abort";
  }
  EXPECT_GE(machine.robustness().Snapshot().collectives_aborted, 1);
}

TEST(FaultSoakTest, AbortedCheckpointLeavesPreviousOneRestorable) {
  // Healthy checkpoint A; checkpoint B dies permanently on server 0.
  // The structured abort reaches every rank and checkpoint A (with its
  // sidecars) survives, verifiable and restorable.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  const World world{4, 2};
  ArrayLayout memory("m", {2, 2});
  auto make_array = [&] {
    return Array("state", {16, 16}, 8, memory, {BLOCK, BLOCK}, memory,
                 {BLOCK, BLOCK});
  };
  ServerOptions options;
  options.disk_checksums = true;
  options.robustness = &machine.robustness();

  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a = make_array();
        a.BindClient(idx);
        FillPattern(a, 1000);
        ArrayGroup group("g", "g.schema");
        group.Include(&a);
        group.Checkpoint(client);
        if (idx == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });

  FaultyFileSystem faulty(&machine.server_fs(0), /*fail_after_ops=*/1);
  EXPECT_THROW(
      machine.Run(
          [&](Endpoint& ep, int idx) {
            PandaClient client(ep, world, params);
            client.set_robustness(&machine.robustness());
            Array a = make_array();
            a.BindClient(idx);
            FillPattern(a, 2000);
            ArrayGroup group("g", "g.schema");
            group.Include(&a);
            group.Checkpoint(client);
            if (idx == 0) client.Shutdown();
          },
          [&](Endpoint& ep, int sidx) {
            FileSystem& fs = sidx == 0 ? static_cast<FileSystem&>(faulty)
                                       : machine.server_fs(sidx);
            ServerMain(ep, fs, world, params, options);
          }),
      PandaAbortError);

  // Checkpoint A still verifies against its sidecars...
  ArrayMeta meta;
  meta.name = "state";
  meta.elem_size = 8;
  meta.memory = Schema({16, 16}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;
  FileSystem* fs[] = {&machine.server_fs(0), &machine.server_fs(1)};
  std::string log;
  const IntegrityReport report = VerifyArrayChecksums(
      fs, meta, params.subchunk_bytes, Purpose::kCheckpoint, 1, "g", &log);
  EXPECT_TRUE(report.Clean()) << log;
  EXPECT_GT(report.subchunks_checked, 0);

  // ...and restores to contents A through the sequential path.
  SequentialPanda seq({&machine.server_fs(0), &machine.server_fs(1)}, params);
  const auto restored = seq.ReadWhole(meta, Purpose::kCheckpoint, 0, "g");
  for (std::int64_t i = 0; i < 16 * 16; ++i) {
    const std::uint64_t want =
        PatternValue(1000, static_cast<std::uint64_t>(i));
    EXPECT_EQ(std::memcmp(restored.data() + i * 8, &want, 8), 0)
        << "element " << i;
  }
}

TEST(FaultSoakTest, WireCorruptionCaughtByEndToEndChecksum) {
  // A FaultyFileSystem cannot corrupt the wire, so splice corruption in
  // at the message layer: flip one payload byte of a client->server
  // piece by writing through the array's local buffer *mid-collective*
  // is racy — instead corrupt the stored file and disable disk
  // checksums to show the *wire* checksum alone stays silent (the wire
  // was fine), then verify the wire checksum's failure path directly at
  // the unit level: a mismatched CRC must abort with the right counter.
  VirtualClock clock;
  RobustnessStats stats;
  // Unit-level: RetryPolicy must not retry a checksum failure (it is a
  // plain PandaError, not transient).
  EXPECT_THROW(RetryPolicy{}.Run(&clock, &stats,
                                 [&] {
                                   stats.wire_checksum_failures.fetch_add(1);
                                   throw PandaError("checksum mismatch");
                                 }),
               PandaError);
  EXPECT_EQ(stats.wire_checksum_failures.load(), 1);
  EXPECT_EQ(stats.io_retries.load(), 0);
}

}  // namespace
}  // namespace panda
