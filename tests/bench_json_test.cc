// The machine-readable bench schema is a contract: tools/bench.sh and
// downstream dashboards parse it. This test pins the schema keys and
// checks that the JSON's numbers are the table's numbers — throughput
// re-derived from the exported elapsed matches to 1e-9 (in fact
// bit-exactly, since doubles are printed with %.17g).
#include <gtest/gtest.h>

#include <cstdlib>

#include "../bench/bench_util.h"

namespace panda {
namespace bench {
namespace {

// Minimal scalar extraction: the first `"key":<number>` after `from`.
double NumberAfter(const std::string& json, const std::string& key,
                   size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle, from);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

FigureSpec SmokeSpec() {
  FigureSpec spec;
  spec.id = "smoke";
  spec.description = "bench json schema smoke";
  spec.op = IoOp::kWrite;
  spec.num_clients = 8;
  spec.cn_mesh = Shape{2, 2, 2};
  spec.io_nodes = {2};
  spec.sizes_mb = {16};
  spec.reps = 1;
  return spec;
}

TEST(BenchJson, SchemaKeysAndRoundTrip) {
  const FigureSpec spec = SmokeSpec();

  MeasureSpec ms;
  ms.op = spec.op;
  ms.params = Sp2Params::Nas();
  ms.num_clients = spec.num_clients;
  ms.io_nodes = spec.io_nodes[0];
  ms.reps = spec.reps;
  ms.trace = true;
  const ArrayMeta meta =
      PaperArrayMeta(spec.sizes_mb[0], spec.cn_mesh, spec.traditional,
                     spec.io_nodes[0]);
  const MeasureResult r = MeasureCollective(ms, meta);
  ASSERT_GT(r.elapsed_s, 0.0);

  std::vector<FigureRow> rows{FigureRow{spec.io_nodes[0], spec.sizes_mb[0], r,
                                        "smoke row",
                                        spec.num_clients + spec.io_nodes[0]}};
  const std::string json = BenchJson(spec, /*quick=*/true, spec.reps, rows);

  // Stable schema keys (tools/bench.sh greps for exactly these).
  // schema_version 2 added codec + the per-row byte/ratio fields; v3
  // added the top-level metrics block; v4 added the per-row disk_ops
  // operation count and label; v5 added the per-row ranks machine size
  // and sched_backend; all earlier keys are unchanged so v1..v4
  // consumers keep parsing.
  for (const char* key :
       {"\"schema_version\":5", "\"kind\":\"panda_bench\"", "\"bench\":",
        "\"description\":", "\"op\":\"write\"", "\"codec\":\"none\"",
        "\"quick\":true", "\"reps\":1", "\"rows\":[", "\"io_nodes\":",
        "\"size_mb\":", "\"elapsed_s\":", "\"aggregate_Bps\":",
        "\"per_ion_Bps\":", "\"normalized\":", "\"wire_bytes_sent\":",
        "\"disk_bytes_written\":", "\"codec_ratio\":", "\"disk_ops\":",
        "\"label\":\"smoke row\"", "\"ranks\":", "\"sched_backend\":",
        "\"spans\":", "\"metrics\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  // v3 metrics: the machine's robustness/transport counters ride along
  // in trace::MetricsJson shape (a fault-free timing run publishes them
  // at zero — presence, not value, is the contract).
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"transport.retransmits\":"), std::string::npos);
  EXPECT_NE(json.find("\"robustness."), std::string::npos);

  // The JSON's numbers ARE the table's numbers: %.17g round-trips
  // doubles exactly, so re-parsing gives back the same bits.
  const size_t row_pos = json.find("\"rows\":[");
  EXPECT_EQ(NumberAfter(json, "elapsed_s", row_pos), r.elapsed_s);
  EXPECT_EQ(NumberAfter(json, "aggregate_Bps", row_pos), r.aggregate_Bps);
  EXPECT_EQ(NumberAfter(json, "per_ion_Bps", row_pos), r.per_ion_Bps);
  EXPECT_EQ(NumberAfter(json, "normalized", row_pos), r.normalized);

  // Acceptance bound: throughput re-derived from the exported elapsed
  // matches the exported throughput within 1e-9 relative.
  const double elapsed = NumberAfter(json, "elapsed_s", row_pos);
  const double aggregate = NumberAfter(json, "aggregate_Bps", row_pos);
  const double bytes = static_cast<double>(meta.total_bytes());
  EXPECT_NEAR(bytes / elapsed, aggregate, 1e-9 * aggregate);
  const double per_ion = NumberAfter(json, "per_ion_Bps", row_pos);
  EXPECT_NEAR(aggregate / spec.io_nodes[0], per_ion, 1e-9 * per_ion);

  // v2 byte accounting: a timing-only codec=none run still counts the
  // modeled transport and disk bytes (warm-up + the measured rep).
  EXPECT_EQ(NumberAfter(json, "wire_bytes_sent", row_pos),
            static_cast<double>(r.wire_bytes_sent));
  EXPECT_GE(r.wire_bytes_sent, meta.total_bytes());
  EXPECT_GE(r.disk_bytes_written, meta.total_bytes());
  EXPECT_EQ(NumberAfter(json, "codec_ratio", row_pos), 1.0);

  // v4 op accounting: the run issued at least one disk op per
  // sub-chunk written, and the JSON carries the exact count.
  EXPECT_GT(r.disk_ops, 0);
  EXPECT_EQ(NumberAfter(json, "disk_ops", row_pos),
            static_cast<double>(r.disk_ops));

#if PANDA_TRACE_ENABLED
  // Spans rode along (MeasureSpec::trace was set): the row's span block
  // names at least the write path, and the top-level block sums rows.
  EXPECT_NE(json.find("\"server.write\":{\"count\":"), std::string::npos);
  EXPECT_NE(json.find("\"client.collective\":{\"count\":"),
            std::string::npos);
#else
  // Compiled out: the schema keeps its shape, the span blocks are empty.
  EXPECT_NE(json.find("\"spans\":{}"), std::string::npos);
#endif
}

TEST(BenchJson, QuickFalseAndReadOpSpelledOut) {
  FigureSpec spec = SmokeSpec();
  spec.op = IoOp::kRead;
  spec.codec = CodecId::kShuffleRle;
  std::vector<FigureRow> rows;
  const std::string json = BenchJson(spec, /*quick=*/false, 3, rows);
  EXPECT_NE(json.find("\"op\":\"read\""), std::string::npos);
  EXPECT_NE(json.find("\"codec\":\"shuffle+rle\""), std::string::npos);
  EXPECT_NE(json.find("\"quick\":false"), std::string::npos);
  EXPECT_NE(json.find("\"reps\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":[]"), std::string::npos);
  // An empty sweep still carries a well-formed (empty) metrics block.
  EXPECT_NE(json.find(
                "\"metrics\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}"),
            std::string::npos);
}

TEST(BenchUtil, MaxOverRanksIsSharedReduction) {
  // The bench's per-rep elapsed reduction and the report's clock line
  // use the same helper (the dedup satellite): pin its semantics.
  const std::vector<double> values{0.25, 1.5, 0.75};
  EXPECT_DOUBLE_EQ(MaxOverRanks(values), 1.5);
  EXPECT_DOUBLE_EQ(MaxOverRanks(std::span<const double>{}), 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace panda
