// Sequential-platform tests: the SequentialPanda path must interoperate
// byte-exactly with the parallel library in both directions.
#include <gtest/gtest.h>

#include "panda/sequential.h"
#include "test_harness.h"

namespace panda {
namespace {

using test::FillPattern;
using test::PatternValue;
using test::RunCluster;
using test::VerifyPattern;

ArrayMeta TestMeta(int servers) {
  ArrayMeta meta;
  meta.name = "seq";
  meta.elem_size = 4;
  meta.memory = Schema({12, 8, 6}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = Schema({12, 8, 6}, Mesh(Shape{servers}), {BLOCK, NONE, NONE});
  return meta;
}

std::vector<std::byte> WholePattern(const ArrayMeta& meta,
                                    std::uint64_t salt) {
  const Shape& shape = meta.memory.array_shape();
  std::vector<std::byte> data(static_cast<size_t>(meta.total_bytes()));
  for (std::int64_t i = 0; i < shape.Volume(); ++i) {
    const std::uint64_t v = PatternValue(salt, static_cast<std::uint64_t>(i));
    std::memcpy(data.data() + i * meta.elem_size, &v,
                std::min<size_t>(static_cast<size_t>(meta.elem_size),
                                 sizeof(v)));
  }
  return data;
}

TEST(SequentialTest, RoundTrip) {
  SimFileSystem::Options opt;
  opt.disk = DiskModel::Instant();
  SimFileSystem fs0(opt), fs1(opt), fs2(opt);
  SequentialPanda seq({&fs0, &fs1, &fs2}, Sp2Params::Functional());

  const ArrayMeta meta = TestMeta(3);
  const auto data = WholePattern(meta, 10);
  seq.Write(meta, {data.data(), data.size()});
  const auto back = seq.ReadWhole(meta);
  EXPECT_EQ(back, data);
}

TEST(SequentialTest, SequentialWriteParallelRead) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(8, 2, params, true, false);
  const ArrayMeta meta = TestMeta(2);

  // Sequential producer writes straight to the machine's server FSs.
  {
    SequentialPanda seq({&machine.server_fs(0), &machine.server_fs(1)},
                        params);
    const auto data = WholePattern(meta, 66);
    seq.Write(meta, {data.data(), data.size()});
  }

  // Parallel consumer reads collectively and verifies its cells.
  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    client.ReadArray(a);
    VerifyPattern(a, 66);
  });
}

TEST(SequentialTest, ParallelWriteSequentialRead) {
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 512;
  Machine machine = Machine::Simulated(8, 3, params, true, false);
  const ArrayMeta meta = TestMeta(3);

  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    FillPattern(a, 44);
    client.WriteArray(a);
  });

  SequentialPanda seq(
      {&machine.server_fs(0), &machine.server_fs(1), &machine.server_fs(2)},
      params);
  const auto back = seq.ReadWhole(meta);
  EXPECT_EQ(back, WholePattern(meta, 44));
}

TEST(SequentialTest, TimestepAppendAndReadBack) {
  SimFileSystem::Options opt;
  opt.disk = DiskModel::Instant();
  SimFileSystem fs0(opt), fs1(opt);
  SequentialPanda seq({&fs0, &fs1}, Sp2Params::Functional());
  const ArrayMeta meta = TestMeta(2);

  for (std::uint64_t t = 0; t < 3; ++t) {
    const auto data = WholePattern(meta, 100 + t);
    seq.Write(meta, {data.data(), data.size()}, Purpose::kTimestep,
              static_cast<std::int64_t>(t), "g");
  }
  for (std::uint64_t t = 0; t < 3; ++t) {
    const auto back = seq.ReadWhole(meta, Purpose::kTimestep,
                                    static_cast<std::int64_t>(t), "g");
    EXPECT_EQ(back, WholePattern(meta, 100 + t)) << "timestep " << t;
  }
}

TEST(SequentialTest, SubarrayReadReturnsDenseSlice) {
  SimFileSystem::Options opt;
  opt.disk = DiskModel::Instant();
  SimFileSystem fs0(opt), fs1(opt);
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  SequentialPanda seq({&fs0, &fs1}, params);
  const ArrayMeta meta = TestMeta(2);
  const auto data = WholePattern(meta, 91);
  seq.Write(meta, {data.data(), data.size()});

  const Region slice({3, 2, 1}, {5, 4, 3});
  const auto out = seq.ReadSubarray(meta, slice);
  ASSERT_EQ(out.size(),
            static_cast<size_t>(slice.Volume() * meta.elem_size));
  // Compare against the dense pattern, element by element.
  const Shape& shape = meta.memory.array_shape();
  Index off = Index::Zeros(3);
  Shape ext = slice.extent();
  size_t n = 0;
  do {
    Index g = slice.lo();
    for (int d = 0; d < 3; ++d) g[d] += off[d];
    const std::int64_t lin = (g[0] * shape[1] + g[1]) * shape[2] + g[2];
    const std::uint64_t v =
        PatternValue(91, static_cast<std::uint64_t>(lin));
    EXPECT_EQ(std::memcmp(out.data() + n * 4, &v, 4), 0) << g.ToString();
    ++n;
  } while (NextIndexRowMajor(ext, off));

  // Economy: a slice in server 0's slab alone must not touch server 1.
  fs0.ResetStats();
  fs1.ResetStats();
  (void)seq.ReadSubarray(meta, Region({0, 0, 0}, {2, 8, 6}));
  EXPECT_GT(fs0.stats().reads, 0);
  EXPECT_EQ(fs1.stats().reads, 0);
}

TEST(SequentialTest, SubarrayOutsideArrayThrows) {
  SimFileSystem::Options opt;
  SimFileSystem fs0(opt);
  SequentialPanda seq({&fs0}, Sp2Params::Functional());
  const ArrayMeta meta = TestMeta(1);
  EXPECT_THROW(seq.ReadSubarray(meta, Region({10, 0, 0}, {10, 8, 6})),
               PandaError);
}

TEST(SequentialTest, SizeMismatchThrows) {
  SimFileSystem::Options opt;
  SimFileSystem fs0(opt);
  SequentialPanda seq({&fs0}, Sp2Params::Functional());
  const ArrayMeta meta = TestMeta(1);
  std::vector<std::byte> wrong(10);
  EXPECT_THROW(seq.Write(meta, {wrong.data(), wrong.size()}), PandaError);
  EXPECT_THROW(seq.Read(meta, {wrong.data(), wrong.size()}), PandaError);
}

TEST(SequentialTest, NaturalChunkingFilesInteroperate) {
  // Natural chunking (disk schema == a parallel memory schema) written
  // by the parallel library, consumed sequentially.
  Sp2Params params = Sp2Params::Functional();
  params.subchunk_bytes = 256;
  Machine machine = Machine::Simulated(4, 2, params, true, false);
  ArrayMeta meta;
  meta.name = "nat";
  meta.elem_size = 8;
  meta.memory = Schema({10, 14}, Mesh(Shape{2, 2}), {BLOCK, BLOCK});
  meta.disk = meta.memory;

  RunCluster(machine, [&](PandaClient& client, int idx) {
    Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
    a.BindClient(idx);
    FillPattern(a, 3);
    client.WriteArray(a);
  });

  SequentialPanda seq({&machine.server_fs(0), &machine.server_fs(1)}, params);
  EXPECT_EQ(seq.ReadWhole(meta), WholePattern(meta, 3));
}

}  // namespace
}  // namespace panda
