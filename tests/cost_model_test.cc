// Validates the analytic cost model (the paper's announced future work)
// against the full virtual-time protocol simulation across schemas,
// node counts and operations.
#include <gtest/gtest.h>

#include "test_harness.h"

namespace panda {
namespace {

struct CostCase {
  const char* name;
  std::int64_t size_mb;
  Shape cn_mesh;
  int servers;
  bool traditional;
  IoOp op;
  bool fast_disk;
};

double SimulateCollective(const ArrayMeta& meta, const World& world,
                          const Sp2Params& params, IoOp op) {
  Machine machine = Machine::Simulated(world.num_clients, world.num_servers,
                                       params, /*store_data=*/false,
                                       /*timing_only=*/true);
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, false);
        client.WriteArray(a);  // ensure files exist for reads
        const double t =
            op == IoOp::kWrite ? client.WriteArray(a) : client.ReadArray(a);
        if (idx == 0) {
          elapsed = t;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  return elapsed;
}

class CostModelAccuracy : public ::testing::TestWithParam<CostCase> {};

TEST_P(CostModelAccuracy, PredictsWithinTolerance) {
  const CostCase& cc = GetParam();
  const Sp2Params params =
      cc.fast_disk ? Sp2Params::NasFastDisk() : Sp2Params::Nas();
  ArrayMeta meta;
  meta.name = "c";
  meta.elem_size = 4;
  const Shape shape{cc.size_mb, 512, 512};
  meta.memory = Schema(shape, Mesh(cc.cn_mesh),
                       std::vector<DimDist>(3, DimDist::Block()));
  meta.disk = cc.traditional
                  ? Schema(shape, Mesh(Shape{cc.servers}),
                           {DimDist::Block(), DimDist::None(),
                            DimDist::None()})
                  : meta.memory;
  const World world{static_cast<int>(Mesh(cc.cn_mesh).size()), cc.servers};

  const double measured = SimulateCollective(meta, world, params, cc.op);
  const CostEstimate predicted = PredictArrayIo(meta, cc.op, world, params);
  EXPECT_NEAR(predicted.elapsed_s, measured, 0.20 * measured)
      << "measured " << measured << "s, predicted " << predicted.elapsed_s
      << "s";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CostModelAccuracy,
    ::testing::Values(
        CostCase{"nat_write", 16, {2, 2, 2}, 2, false, IoOp::kWrite, false},
        CostCase{"nat_read", 16, {2, 2, 2}, 2, false, IoOp::kRead, false},
        CostCase{"nat_write_8ion", 32, {2, 2, 2}, 8, false, IoOp::kWrite,
                 false},
        CostCase{"trad_write", 16, {2, 2, 2}, 4, true, IoOp::kWrite, false},
        CostCase{"trad_read", 16, {2, 2, 2}, 4, true, IoOp::kRead, false},
        CostCase{"trad_write_32cn", 16, {4, 4, 2}, 4, true, IoOp::kWrite,
                 false},
        CostCase{"fast_nat_write", 32, {4, 4, 2}, 4, false, IoOp::kWrite,
                 true},
        CostCase{"fast_trad_write", 32, {4, 2, 2}, 4, true, IoOp::kWrite,
                 true},
        CostCase{"uneven_servers", 16, {2, 2, 2}, 3, false, IoOp::kWrite,
                 false}),
    [](const ::testing::TestParamInfo<CostCase>& info) {
      return info.param.name;
    });

TEST(CostModelTest, StartupMatchesPaperOrderOfMagnitude) {
  // The paper measured ~13 ms of per-collective overhead; the model's
  // fixed term must be the same order of magnitude.
  const Sp2Params params = Sp2Params::Nas();
  ArrayMeta meta;
  meta.name = "tiny";
  meta.elem_size = 4;
  meta.memory = Schema({8}, Mesh(Shape{8}), {DimDist::Block()});
  meta.disk = meta.memory;
  const CostEstimate est =
      PredictArrayIo(meta, IoOp::kWrite, World{8, 2}, params);
  EXPECT_GT(est.startup_s, 0.005);
  EXPECT_LT(est.startup_s, 0.040);
}

TEST(CostModelTest, DiskBoundConfigurationsAreDiskDominated) {
  const Sp2Params params = Sp2Params::Nas();
  ArrayMeta meta;
  meta.name = "d";
  meta.elem_size = 4;
  meta.memory = Schema({64, 512, 512}, Mesh(Shape{2, 2, 2}),
                       std::vector<DimDist>(3, DimDist::Block()));
  meta.disk = meta.memory;
  const CostEstimate est =
      PredictArrayIo(meta, IoOp::kWrite, World{8, 2}, params);
  EXPECT_GT(est.disk_s, 0.8 * est.elapsed_s);
}

TEST(CostModelTest, MoreServersPredictLowerElapsed) {
  const Sp2Params params = Sp2Params::Nas();
  ArrayMeta meta;
  meta.name = "s";
  meta.elem_size = 4;
  meta.memory = Schema({64, 512, 512}, Mesh(Shape{2, 2, 2}),
                       std::vector<DimDist>(3, DimDist::Block()));
  meta.disk = meta.memory;
  double prev = 1e18;
  for (const int servers : {1, 2, 4, 8}) {
    const double t =
        PredictArrayIo(meta, IoOp::kWrite, World{8, servers}, params)
            .elapsed_s;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(CostModelTest, SubarrayPredictionsScaleWithTheSlice) {
  const Sp2Params params = Sp2Params::Nas();
  ArrayMeta meta;
  meta.name = "sub";
  meta.elem_size = 4;
  meta.memory = Schema({64, 512, 512}, Mesh(Shape{2, 2, 2}),
                       std::vector<DimDist>(3, DimDist::Block()));
  meta.disk = Schema({64, 512, 512}, Mesh(Shape{4}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});
  const World world{8, 4};
  const double full =
      PredictArrayIo(meta, IoOp::kRead, world, params).elapsed_s;
  const Region plane({32, 0, 0}, {1, 512, 512});
  const double slice =
      PredictArrayIo(meta, IoOp::kRead, world, params, &plane).elapsed_s;
  EXPECT_LT(slice, 0.1 * full);  // one plane of 64
  // Subarray writes are rejected.
  EXPECT_THROW(PredictArrayIo(meta, IoOp::kWrite, world, params, &plane),
               PandaError);
}

TEST(CostModelTest, ReorganizationCostsMoreOnFastDisks) {
  // The Figure 6 vs Figure 9 contrast, as predictions.
  const Sp2Params params = Sp2Params::NasFastDisk();
  const Shape shape{64, 512, 512};
  ArrayMeta natural;
  natural.name = "n";
  natural.elem_size = 4;
  natural.memory = Schema(shape, Mesh(Shape{4, 2, 2}),
                          std::vector<DimDist>(3, DimDist::Block()));
  natural.disk = natural.memory;
  ArrayMeta traditional = natural;
  traditional.disk = Schema(shape, Mesh(Shape{4}),
                            {DimDist::Block(), DimDist::None(),
                             DimDist::None()});
  const World world{16, 4};
  const double tn =
      PredictArrayIo(natural, IoOp::kWrite, world, params).elapsed_s;
  const double tt =
      PredictArrayIo(traditional, IoOp::kWrite, world, params).elapsed_s;
  EXPECT_GT(tt, 1.05 * tn);
}

// ---------------------------------------------------------------------------
// Codec-aware predictions (ISSUE 5: the advisor samples a ratio via
// AdviseCodec and feeds it here before choosing whether to compress).

ArrayMeta CodecMeta(CodecId codec) {
  ArrayMeta meta;
  meta.name = "cz";
  meta.elem_size = 4;
  const Shape shape{16, 512, 512};
  meta.memory = Schema(shape, Mesh(Shape{2, 2, 2}),
                       std::vector<DimDist>(3, DimDist::Block()));
  meta.disk = Schema(shape, Mesh(Shape{2}),
                     {DimDist::Block(), DimDist::None(), DimDist::None()});
  meta.codec = codec;
  return meta;
}

TEST(CostModelTest, CodecRatioShrinksCodedPredictions) {
  const Sp2Params params = Sp2Params::Nas();
  const World world{8, 2};
  const ArrayMeta coded = CodecMeta(CodecId::kShuffleRle);
  for (const IoOp op : {IoOp::kWrite, IoOp::kRead}) {
    const double at_unity =
        PredictArrayIo(coded, op, world, params, nullptr, 1.0).elapsed_s;
    const double at_half =
        PredictArrayIo(coded, op, world, params, nullptr, 0.5).elapsed_s;
    // Half the wire+disk bytes must predict faster, even after paying
    // the encode/decode compute terms.
    EXPECT_LT(at_half, at_unity) << "op " << static_cast<int>(op);
  }
}

TEST(CostModelTest, NoneArraysIgnoreTheRatio) {
  // codec=none must predict exactly the pre-codec formulas no matter
  // what ratio is passed — bit-identical baseline, like the runtime.
  const Sp2Params params = Sp2Params::Nas();
  const World world{8, 2};
  const ArrayMeta plain = CodecMeta(CodecId::kNone);
  const double base =
      PredictArrayIo(plain, IoOp::kWrite, world, params).elapsed_s;
  const double with_ratio =
      PredictArrayIo(plain, IoOp::kWrite, world, params, nullptr, 0.25)
          .elapsed_s;
  EXPECT_DOUBLE_EQ(base, with_ratio);
}

TEST(CostModelTest, CodedArrayPaysComputeAtUnityRatio) {
  // With ratio 1.0 (incompressible data someone forced through a
  // codec), the coded prediction can only be slower than none: same
  // bytes plus encode/decode compute.
  const Sp2Params params = Sp2Params::Nas();
  const World world{8, 2};
  const double plain =
      PredictArrayIo(CodecMeta(CodecId::kNone), IoOp::kWrite, world, params)
          .elapsed_s;
  const double coded =
      PredictArrayIo(CodecMeta(CodecId::kRle), IoOp::kWrite, world, params,
                     nullptr, 1.0)
          .elapsed_s;
  EXPECT_GT(coded, plain);
}

TEST(CostModelTest, InvalidRatioRejected) {
  const Sp2Params params = Sp2Params::Nas();
  const World world{8, 2};
  EXPECT_THROW(PredictArrayIo(CodecMeta(CodecId::kRle), IoOp::kWrite, world,
                              params, nullptr, 0.0),
               PandaError);
}

}  // namespace
}  // namespace panda
