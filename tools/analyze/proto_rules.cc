#include "analyze/proto_rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "analyze/symbols.h"

namespace panda {
namespace lint {

namespace {

bool IsPunct(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::size_t MatchParen(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], '(')) ++depth;
    if (IsPunct(toks[j], ')') && --depth == 0) return j;
  }
  return toks.size();
}

void Diag(std::vector<Diagnostic>* out, const std::string& rule,
          const std::string& file, int line, const std::string& message) {
  out->push_back({rule, file, line, message});
}

// The catch clauses that cover a PeerDeadError in flight: the type
// itself, its bases, and catch-all. catch (PandaAbortError) alone does
// NOT cover (PeerDeadError derives from PandaError, not AbortError).
const std::set<std::string>& EscapeHandlers() {
  static const std::set<std::string>* kSet = new std::set<std::string>{
      "PeerDeadError", "PandaError", "exception", "runtime_error"};
  return *kSet;
}

// Directed-receive primitive names: the ONLY calls that can throw
// PeerDeadError (msg/mailbox.h: BlockingReceiveAny backing RecvAny /
// RecvAnyDelivery never throws it — no specific awaited peer; the
// ReceiveWithin deadline path backing TryRecv / TryRecvAny does not
// either).
bool IsDirectedRecv(const std::string& name) { return name == "Recv"; }

// Maps a file to the protocol role its subsystem plays. Empty string =
// exempt from role checks (the transport layer src/msg/ and the model
// checker src/mc/ speak every side of the protocol by design; unknown
// files stay silent rather than guessing).
std::string RoleOf(const std::string& path) {
  if (StartsWith(path, "src/msg/") || StartsWith(path, "src/mc/")) return "";
  if (StartsWith(path, "src/panda/client")) return "client";
  if (StartsWith(path, "src/panda/")) return "server";
  if (StartsWith(path, "src/baselines/") || StartsWith(path, "examples/") ||
      StartsWith(path, "tests/") || StartsWith(path, "bench/")) {
    return "app";
  }
  return "";
}

// "src/msg/hb.cc" -> "src/msg/hb", so the .h/.cc halves of one
// component share a mutex namespace.
std::string FileStem(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

// First kTag*-prefixed identifier inside the call's parens (any
// nesting depth: the tag argument is the only kTag in scope at Panda
// call sites). Empty string = tag is a variable/expression; the
// analyses degrade by skipping the site.
std::string TagArgOf(const std::vector<Token>& toks, std::size_t call_tok) {
  if (call_tok + 1 >= toks.size() || !IsPunct(toks[call_tok + 1], '(')) {
    return "";
  }
  const std::size_t close = MatchParen(toks, call_tok + 1);
  for (std::size_t k = call_tok + 2; k < close && k < toks.size(); ++k) {
    if (toks[k].kind == TokKind::kIdent &&
        StartsWith(toks[k].text, "kTag")) {
      return toks[k].text;
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// proto-tag: Send/Recv sites conform to the spec's direction roles, and
// the spec tracks src/msg/message.h's MsgTag enum bidirectionally.
// ---------------------------------------------------------------------------

class TagConformanceCheck : public CrossFileCheck {
 public:
  explicit TagConformanceCheck(const ProtocolSpec& spec) : spec_(spec) {}

  void Scan(const SourceFile& file, const LintConfig& config) override {
    (void)config;
    static const std::map<std::string, bool> kOps = {
        // op name -> is this the sending end?
        {"Send", true},           {"SendResponse", true},
        {"Recv", false},          {"RecvAny", false},
        {"TryRecv", false},       {"TryRecvAny", false},
        {"RecvAnyDelivery", false},
    };
    const std::string role = RoleOf(file.rel_path);
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (StartsWith(t.text, "kTag")) seen_idents_.insert(t.text);
      const auto op = kOps.find(t.text);
      if (op == kOps.end() || !IsPunct(toks[i + 1], '(')) continue;
      const std::string tag = TagArgOf(toks, i);
      if (tag.empty()) continue;  // variable tag: degrade, don't guess
      sites_.push_back({file.rel_path, t.line, t.text, tag, role,
                        op->second});
    }
    if (file.rel_path == "src/msg/message.h") {
      CollectEnum(file);
    }
  }

  void Report(std::vector<Diagnostic>* out) override {
    for (const Site& s : sites_) {
      const MessageSpec* msg = spec_.Find(s.tag);
      if (msg == nullptr) {
        Diag(out, "proto-tag", s.file, s.line,
             s.op + " of " + s.tag +
                 " which is not declared in tools/analyze/protocol.spec — "
                 "every wire tag needs a message entry (phase, integrity, "
                 "direction roles)");
        continue;
      }
      if (s.role.empty()) continue;  // transport/harness layer
      const std::set<std::string>& roles =
          s.is_send ? msg->send_roles : msg->recv_roles;
      if (roles.count(s.role) == 0 && roles.count("any") == 0) {
        Diag(out, "proto-tag", s.file, s.line,
             s.op + " of " + s.tag + " from the " + s.role +
                 " subsystem, but protocol.spec:" +
                 std::to_string(msg->line) + " allows " +
                 (s.is_send ? "send=" : "recv=") + RoleList(roles) +
                 " — wrong-direction use of a protocol message");
      }
    }
    // Bidirectional drift guard, gated on having actually seen the
    // MsgTag enum (unit-test corpora without message.h skip it).
    if (!enum_tags_.empty()) {
      for (const auto& [name, line] : enum_tags_) {
        if (spec_.Find(name) == nullptr) {
          Diag(out, "proto-tag", "src/msg/message.h", line,
               "MsgTag enumerator " + name +
                   " has no message entry in tools/analyze/protocol.spec "
                   "— declare its phase, integrity class and direction "
                   "roles");
        }
      }
      for (const MessageSpec& m : spec_.messages) {
        if (!m.aux && enum_tags_.count(m.name) == 0) {
          Diag(out, "proto-tag", "src/msg/message.h", 1,
               "protocol.spec:" + std::to_string(m.line) + " declares " +
                   m.name +
                   " but src/msg/message.h has no such MsgTag enumerator "
                   "— stale spec entry (mark it aux if it lives outside "
                   "the enum)");
        }
        if (m.aux && seen_idents_.count(m.name) == 0) {
          Diag(out, "proto-tag", "src/msg/message.h", 1,
               "protocol.spec:" + std::to_string(m.line) +
                   " declares aux tag " + m.name +
                   " but no source file mentions it — stale spec entry");
        }
      }
    }
  }

 private:
  struct Site {
    std::string file;
    int line;
    std::string op;
    std::string tag;
    std::string role;
    bool is_send;
  };

  static std::string RoleList(const std::set<std::string>& roles) {
    std::string out;
    for (const std::string& r : roles) {
      if (!out.empty()) out += ",";
      out += r;
    }
    return out;
  }

  void CollectEnum(const SourceFile& file) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || toks[i].text != "MsgTag") {
        continue;
      }
      std::size_t j = i + 1;
      while (j < toks.size() && !IsPunct(toks[j], '{') &&
             !IsPunct(toks[j], ';')) {
        ++j;
      }
      if (j >= toks.size() || !IsPunct(toks[j], '{')) continue;
      bool expect_name = true;
      for (std::size_t k = j + 1; k < toks.size(); ++k) {
        if (IsPunct(toks[k], '}')) break;
        if (IsPunct(toks[k], ',')) {
          expect_name = true;
          continue;
        }
        if (expect_name && toks[k].kind == TokKind::kIdent) {
          enum_tags_.emplace(toks[k].text, toks[k].line);
          expect_name = false;
        }
      }
      break;
    }
  }

  const ProtocolSpec& spec_;
  std::vector<Site> sites_;
  std::set<std::string> seen_idents_;
  std::map<std::string, int> enum_tags_;  // enumerator -> line
};

// ---------------------------------------------------------------------------
// proto-escape: no spec boundary function may transitively reach a
// directed Recv through unguarded call sites — PeerDeadError must
// convert to the structured abort inside the boundary, never escape raw
// (the master-kill class panda_mc caught dynamically in
// tests/schedules/master-kill-abort.mctrace).
// ---------------------------------------------------------------------------

class EscapeCheck : public CrossFileCheck {
 public:
  explicit EscapeCheck(const ProtocolSpec& spec) : spec_(spec) {}

  void Scan(const SourceFile& file, const LintConfig& config) override {
    (void)config;
    // The boundaries live in src/ and so must the graph: folding app
    // harness code (examples/, tests/) into the name-merged graph
    // manufactures false edges when an app helper shares a name with a
    // library function (e.g. a local `Run` that does a raw kTagApp
    // Recv would taint RetryPolicy::Run).
    if (!StartsWith(file.rel_path, "src/")) return;
    symbols_.push_back(
        std::make_unique<FileSymbols>(AnalyzeFile(file)));
  }

  void Report(std::vector<Diagnostic>* out) override {
    CallGraph graph;
    for (const auto& syms : symbols_) graph.Add(*syms);

    // leaks(name): some definition of `name` has an unguarded call site
    // whose callee is a directed Recv or itself leaks. Name-merged
    // fixpoint — sound for "could a PeerDeadError get out of here?".
    std::map<std::string, bool> leaks;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, defs] : graph.defs()) {
        if (leaks[name]) continue;
        for (const FunctionDef* def : defs) {
          for (const CallSite& c : def->calls) {
            if (!IsDirectedRecv(c.callee) && !leaks[c.callee]) continue;
            if (GuardedBy(*def, c.tok, EscapeHandlers())) continue;
            leaks[name] = true;
            changed = true;
            break;
          }
          if (leaks[name]) break;
        }
      }
    }

    for (const BoundarySpec& b : spec_.boundaries) {
      const std::vector<const FunctionDef*>* defs = graph.DefsOf(b.function);
      if (defs == nullptr) {
        Diag(out, "proto-escape", "tools/analyze/protocol.spec", b.line,
             "boundary '" + b.function +
                 "' names no function definition in the corpus — the "
                 "escape analysis for it is vacuous (renamed boundary?)");
        continue;
      }
      for (const FunctionDef* def : *defs) {
        for (const CallSite& c : def->calls) {
          const bool direct = IsDirectedRecv(c.callee);
          if (!direct && !leaks[c.callee]) continue;
          if (GuardedBy(*def, c.tok, EscapeHandlers())) continue;
          std::string chain = b.function;
          if (direct) {
            chain += " -> Recv (" + def->file + ":" +
                     std::to_string(c.line) + ")";
          } else {
            chain += " -> " + Witness(graph, leaks, c.callee);
          }
          Diag(out, "proto-escape", def->file, c.line,
               "PeerDeadError can escape boundary '" + b.function +
                   "' uncaught via " + chain +
                   " — catch PandaError here and convert to the "
                   "structured PandaAbortError (see "
                   "tests/schedules/master-kill-abort.mctrace)");
        }
      }
    }
  }

 private:
  // Greedy witness walk from a leaking callee down to a concrete Recv
  // site; depth-capped, cycle-safe. Prefers a direct Recv edge at each
  // hop so the chain stays short.
  static std::string Witness(const CallGraph& graph,
                             const std::map<std::string, bool>& leaks,
                             const std::string& start) {
    std::string chain = start;
    std::string cur = start;
    std::set<std::string> visited;
    for (int depth = 0; depth < 20; ++depth) {
      if (!visited.insert(cur).second) break;
      const std::vector<const FunctionDef*>* defs = graph.DefsOf(cur);
      if (defs == nullptr) break;
      const CallSite* next = nullptr;
      const FunctionDef* next_def = nullptr;
      for (const FunctionDef* def : *defs) {
        for (const CallSite& c : def->calls) {
          if (GuardedBy(*def, c.tok, EscapeHandlers())) continue;
          if (IsDirectedRecv(c.callee)) {
            next = &c;
            next_def = def;
            break;
          }
          const auto it = leaks.find(c.callee);
          if (next == nullptr && it != leaks.end() && it->second) {
            next = &c;
            next_def = def;
          }
        }
        if (next != nullptr && IsDirectedRecv(next->callee)) break;
      }
      if (next == nullptr) break;
      if (IsDirectedRecv(next->callee)) {
        chain += " -> Recv (" + next_def->file + ":" +
                 std::to_string(next->line) + ")";
        return chain;
      }
      chain += " -> " + next->callee;
      cur = next->callee;
    }
    return chain + " -> ... -> Recv";
  }

  const ProtocolSpec& spec_;
  std::vector<std::unique_ptr<FileSymbols>> symbols_;
};

// ---------------------------------------------------------------------------
// proto-deadline: a blocking directed Recv of a tag whose phase is
// failure-capable must sit under a PeerDeadError-capable catch (so the
// lease-based detector has a consumer), use a TryRecv deadline variant,
// or carry a justified allow(proto-deadline). src/msg/ is the layer
// that implements the primitives — exempt.
// ---------------------------------------------------------------------------

class DeadlineCheck : public CrossFileCheck {
 public:
  explicit DeadlineCheck(const ProtocolSpec& spec) : spec_(spec) {}

  void Scan(const SourceFile& file, const LintConfig& config) override {
    (void)config;
    if (StartsWith(file.rel_path, "src/msg/")) return;
    const FileSymbols syms = AnalyzeFile(file);
    for (const FunctionDef& def : syms.functions) {
      for (const CallSite& c : def.calls) {
        if (!IsDirectedRecv(c.callee)) continue;
        const std::string tag = TagArgOf(file.tokens, c.tok);
        if (tag.empty()) continue;  // variable tag: degrade
        const MessageSpec* msg = spec_.Find(tag);
        if (msg == nullptr || !spec_.FailureCapable(msg->phase)) continue;
        if (GuardedBy(def, c.tok, EscapeHandlers())) continue;
        Diag(&pending_, "proto-deadline", file.rel_path, c.line,
             "blocking Recv of " + tag + " (phase '" + msg->phase +
                 "' is failure-capable) with no PeerDeadError-capable "
                 "catch in scope — the peer can legally die here; catch "
                 "the error, use TryRecv with a deadline, or suppress "
                 "with a justification");
      }
    }
  }

  void Report(std::vector<Diagnostic>* out) override {
    for (Diagnostic& d : pending_) out->push_back(std::move(d));
    pending_.clear();
  }

 private:
  const ProtocolSpec& spec_;
  std::vector<Diagnostic> pending_;
};

// ---------------------------------------------------------------------------
// proto-lock-order: collect guard-object acquisition order across TUs
// (mutexes identified per file stem, so a component's .h/.cc halves
// share a namespace) and report static lock-order cycles, following
// calls made while a lock is held.
// ---------------------------------------------------------------------------

class LockOrderCheck : public CrossFileCheck {
 public:
  explicit LockOrderCheck(const ProtocolSpec& spec) { (void)spec; }

  void Scan(const SourceFile& file, const LintConfig& config) override {
    (void)config;
    symbols_.push_back(
        std::make_unique<FileSymbols>(AnalyzeFile(file)));
  }

  void Report(std::vector<Diagnostic>* out) override {
    CallGraph graph;
    for (const auto& syms : symbols_) graph.Add(*syms);

    // locks_of(name): every lock id acquired anywhere in the dynamic
    // extent of `name` (its own body or any callee, transitively).
    std::map<std::string, std::set<std::string>> locks_of;
    for (const auto& [name, defs] : graph.defs()) {
      for (const FunctionDef* def : defs) {
        for (const LockSite& l : def->locks) {
          locks_of[name].insert(LockId(*def, l));
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, defs] : graph.defs()) {
        std::set<std::string>& mine = locks_of[name];
        for (const FunctionDef* def : defs) {
          for (const CallSite& c : def->calls) {
            const auto it = locks_of.find(c.callee);
            if (it == locks_of.end()) continue;
            for (const std::string& lid : it->second) {
              if (mine.insert(lid).second) changed = true;
            }
          }
        }
      }
    }

    // Edges: lock A held, then lock B acquired (directly or via a call)
    // before A's scope ends. One exemplar site per edge.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::string, int>>
        edges;  // (from, to) -> (file, line)
    for (const auto& syms : symbols_) {
      for (const FunctionDef& def : syms->functions) {
        for (const LockSite& held : def.locks) {
          const std::string from = LockId(def, held);
          for (const LockSite& later : def.locks) {
            if (!(held.tok < later.tok && later.tok < held.scope_end)) {
              continue;
            }
            const std::string to = LockId(def, later);
            if (to != from) {
              edges.emplace(std::make_pair(from, to),
                            std::make_pair(def.file, later.line));
            }
          }
          for (const CallSite& c : def.calls) {
            if (!(held.tok < c.tok && c.tok < held.scope_end)) continue;
            const auto it = locks_of.find(c.callee);
            if (it == locks_of.end()) continue;
            for (const std::string& to : it->second) {
              if (to != from) {
                edges.emplace(std::make_pair(from, to),
                              std::make_pair(def.file, c.line));
              }
            }
          }
        }
      }
    }

    // Cycle detection over the order graph; each distinct cycle
    // (rotation-normalized) reported once, anchored at the exemplar of
    // its first edge.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [edge, site] : edges) {
      (void)site;
      adj[edge.first].push_back(edge.second);
    }
    std::set<std::string> reported;
    std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
    std::vector<std::string> stack;
    for (const auto& [start, unused] : adj) {
      (void)unused;
      Dfs(start, adj, &color, &stack, &edges, &reported, out);
    }
  }

 private:
  static std::string LockId(const FunctionDef& def, const LockSite& l) {
    return FileStem(def.file) + ":" + l.mutex_name;
  }

  static void Dfs(
      const std::string& node,
      const std::map<std::string, std::vector<std::string>>& adj,
      std::map<std::string, int>* color, std::vector<std::string>* stack,
      const std::map<std::pair<std::string, std::string>,
                     std::pair<std::string, int>>* edges,
      std::set<std::string>* reported, std::vector<Diagnostic>* out) {
    const int c = (*color)[node];
    if (c == 2) return;
    if (c == 1) {
      // Back edge: the cycle is the stack suffix starting at `node`.
      std::vector<std::string> cycle;
      bool in = false;
      for (const std::string& n : *stack) {
        if (n == node) in = true;
        if (in) cycle.push_back(n);
      }
      if (cycle.empty()) return;
      // Normalize: rotate the smallest lock id to the front.
      const auto min_it = std::min_element(cycle.begin(), cycle.end());
      std::rotate(cycle.begin(), min_it, cycle.end());
      std::string key;
      for (const std::string& n : cycle) key += n + "->";
      if (!reported->insert(key).second) return;
      std::string pretty;
      for (const std::string& n : cycle) pretty += n + " -> ";
      pretty += cycle.front();
      const auto site = edges->find(
          {cycle.front(), cycle.size() > 1 ? cycle[1] : cycle.front()});
      const std::string file =
          site != edges->end() ? site->second.first : "src";
      const int line = site != edges->end() ? site->second.second : 1;
      Diag(out, "proto-lock-order", file, line,
           "static lock-order cycle: " + pretty +
               " — two threads taking these locks in opposite orders "
               "can deadlock; establish one global order");
      return;
    }
    (*color)[node] = 1;
    stack->push_back(node);
    const auto it = adj.find(node);
    if (it != adj.end()) {
      for (const std::string& next : it->second) {
        Dfs(next, adj, color, stack, edges, reported, out);
      }
    }
    stack->pop_back();
    (*color)[node] = 2;
  }

  std::vector<std::unique_ptr<FileSymbols>> symbols_;
};

}  // namespace

const std::vector<ProtoRule>& ProtoRegistry() {
  static const std::vector<ProtoRule>* kRules = new std::vector<ProtoRule>{
      {"proto-tag",
       "Send/Recv sites use spec-declared tags with matching direction "
       "roles; spec and MsgTag enum stay in sync",
       [](const ProtocolSpec& spec) {
         return std::unique_ptr<CrossFileCheck>(
             new TagConformanceCheck(spec));
       }},
      {"proto-escape",
       "no spec boundary reaches a directed Recv without a "
       "PeerDeadError-capable catch on the path",
       [](const ProtocolSpec& spec) {
         return std::unique_ptr<CrossFileCheck>(new EscapeCheck(spec));
       }},
      {"proto-deadline",
       "blocking directed Recv in a failure-capable phase needs a "
       "catch, a deadline variant, or a justified suppression",
       [](const ProtocolSpec& spec) {
         return std::unique_ptr<CrossFileCheck>(new DeadlineCheck(spec));
       }},
      {"proto-lock-order",
       "guard-object acquisition order is cycle-free across TUs",
       [](const ProtocolSpec& spec) {
         return std::unique_ptr<CrossFileCheck>(new LockOrderCheck(spec));
       }},
  };
  return *kRules;
}

std::vector<Diagnostic> CheckProtoFiles(const std::vector<SourceFile>& files,
                                        const ProtocolSpec& spec,
                                        const LintConfig& config) {
  std::vector<std::unique_ptr<CrossFileCheck>> checks;
  for (const ProtoRule& rule : ProtoRegistry()) {
    if (config.disabled_rules.count(rule.id) != 0) continue;
    checks.push_back(rule.make(spec));
  }
  for (const SourceFile& file : files) {
    for (auto& check : checks) check->Scan(file, config);
  }
  std::vector<Diagnostic> raw;
  for (auto& check : checks) check->Report(&raw);

  // Same suppression contract as panda_lint: cross-file diagnostics
  // resolve against the file they anchor to.
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : raw) {
    const SourceFile* anchor = nullptr;
    for (const SourceFile& file : files) {
      if (file.rel_path == d.file) {
        anchor = &file;
        break;
      }
    }
    if (anchor != nullptr && anchor->Suppressed(d.rule, d.line)) continue;
    kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return kept;
}

std::vector<Diagnostic> RunProto(const LintConfig& config,
                                 const std::string& spec_path,
                                 std::string* error) {
  const std::string path =
      spec_path.empty()
          ? config.root + "/tools/analyze/protocol.spec"
          : spec_path;
  ProtocolSpec spec;
  if (!LoadProtocolSpec(path, &spec, error)) return {};
  const std::vector<SourceFile> sources = LoadCorpus(config);
  return CheckProtoFiles(sources, spec, config);
}

}  // namespace lint
}  // namespace panda
