// panda_lint rule registry and driver (tools/analyze).
//
// Each rule enforces one project invariant that the codebase previously
// relied on by convention (docs/ANALYSIS.md has the full catalogue):
//
//   wall-clock      no wall-clock reads outside src/sp2/, src/msg/ and
//                   the POSIX file-system backend — virtual time is the
//                   only clock the simulation may observe.
//   raw-io          every server disk op in src/panda/ goes through
//                   RetryPolicy::Run (transient faults must heal).
//   raw-send        mailbox/transport internals (Deposit, BlockingReceive,
//                   Poison, ...) are used only inside src/msg/.
//   span-coverage   protocol stage functions listed in the manifest
//                   (tools/analyze/span_manifest.txt) contain a
//                   PANDA_SPAN / RecordSpan instrumentation site.
//   tag-coverage    every MsgTag enumerator in src/msg/message.h has a
//                   `tag <name> <mechanism>` manifest line declaring
//                   how its payload is integrity-protected (wire-crc,
//                   header-checked, or control).
//   header-hygiene  headers use #pragma once exactly once, never
//                   `using namespace`, and src/ headers never include
//                   <iostream>.
//   report-silence  no printf/cout/cerr in src/ outside the designated
//                   sinks (report.cc, trace/export.cc, util diagnostics)
//                   — reports stay silent-when-clean.
//   trace-no-clock  src/trace/ never advances a virtual clock — tracing
//                   observes time, it must not create it.
//
// Diagnostics are suppressible in source with
//   // panda-lint: allow(<rule>)        (this line and the next)
//   // panda-lint: allow-file(<rule>)   (whole file)
#pragma once

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/lexer.h"

namespace panda {
namespace lint {

struct Diagnostic {
  std::string rule;
  std::string file;  // relative to the lint root
  int line = 0;
  std::string message;

  std::string ToString() const;
};

struct LintConfig {
  // Directory walked by RunLint; rules see paths relative to it.
  std::string root = ".";
  // Subdirectories (relative to root) to scan.
  std::vector<std::string> dirs = {"src", "bench", "examples", "tests"};
  // span-coverage manifest entries: (relative file, function name).
  // When empty, RunLint loads tools/analyze/span_manifest.txt under
  // `root` (rule skipped when that file does not exist).
  std::vector<std::pair<std::string, std::string>> span_manifest;
  // tag-coverage manifest entries: (MsgTag enumerator, integrity
  // mechanism). When empty, RunLint loads the `tag <name> <mechanism>`
  // lines of the same manifest file (rule skipped when none exist).
  std::vector<std::pair<std::string, std::string>> tag_manifest;
  // Rule ids to skip entirely.
  std::set<std::string> disabled_rules;
};

struct Rule {
  std::string id;
  std::string description;
  // Appends diagnostics for one file (suppressions applied by caller).
  std::function<void(const SourceFile&, const LintConfig&,
                     std::vector<Diagnostic>*)>
      check;
};

// The registered rules, in reporting order.
const std::vector<Rule>& Registry();

// Runs every enabled rule over one tokenized file; returns unsuppressed
// diagnostics. (Unit-test entry point; RunLint uses it per file.)
std::vector<Diagnostic> CheckFile(const SourceFile& file,
                                  const LintConfig& config);

// Walks config.root/config.dirs for *.h / *.cc files, lints each, and
// returns every unsuppressed diagnostic sorted by (file, line, rule).
std::vector<Diagnostic> RunLint(const LintConfig& config);

// Parses span manifest text ("relative/path FunctionName" per line; '#'
// comments and blank lines ignored). `tag ...` lines (see
// ParseTagManifest) come back as ("tag", <name>) pairs; harmless, since
// "tag" never matches a real file path.
std::vector<std::pair<std::string, std::string>> ParseSpanManifest(
    const std::string& text);

// Parses the message-tag coverage lines of the same manifest text:
// "tag <MsgTag enumerator> <integrity mechanism>". Other lines, '#'
// comments and blanks are ignored.
std::vector<std::pair<std::string, std::string>> ParseTagManifest(
    const std::string& text);

}  // namespace lint
}  // namespace panda
