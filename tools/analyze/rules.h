// panda_lint rule registry and driver (tools/analyze).
//
// Each rule enforces one project invariant that the codebase previously
// relied on by convention (docs/ANALYSIS.md has the full catalogue):
//
//   wall-clock      no wall-clock reads outside src/sp2/, src/msg/,
//                   src/sched/ and the POSIX file-system backend —
//                   virtual time is the only clock the simulation may
//                   observe.
//   raw-io          every server disk op in src/panda/ goes through
//                   RetryPolicy::Run (transient faults must heal).
//   raw-send        mailbox/transport internals (Deposit, BlockingReceive,
//                   Poison, ...) are used only inside src/msg/ and
//                   src/sched/ (the WaitCV blocking seam).
//   raw-thread      OS threads (std::thread, std::jthread,
//                   pthread_create) are spawned only by src/msg/ and
//                   src/sched/ — everything else runs ranks through the
//                   scheduler backend seam.
//   span-coverage   protocol stage functions listed in the manifest
//                   (tools/analyze/span_manifest.txt) contain a
//                   PANDA_SPAN / RecordSpan instrumentation site.
//   tag-coverage    every MsgTag enumerator in src/msg/message.h has a
//                   `message <name> ... integrity=<class>` entry in
//                   tools/analyze/protocol.spec declaring how its
//                   payload is integrity-protected (wire-crc,
//                   header-checked, control, or unchecked).
//   header-hygiene  headers use #pragma once exactly once, never
//                   `using namespace`, and src/ headers never include
//                   <iostream>.
//   report-silence  no printf/cout/cerr in src/ outside the designated
//                   sinks (report.cc, trace/export.cc, util diagnostics)
//                   — reports stay silent-when-clean.
//   trace-no-clock  src/trace/ never advances a virtual clock — tracing
//                   observes time, it must not create it.
//
// Cross-file rules (two-phase: Scan every file, then Report with the
// whole tree in view):
//
//   error-caught    every PandaError subclass declared in src/ is
//                   caught by its exact name somewhere — an error type
//                   nobody catches is either dead weight or a protocol
//                   path nobody handles.
//   options-tested  every ServerOptions field is referenced by at least
//                   one test — an untested server knob is a config
//                   surface that can rot silently.
//
// Diagnostics are suppressible in source with
//   // panda-lint: allow(<rule>)        (this line and the next)
//   // panda-lint: allow-file(<rule>)   (whole file)
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/lexer.h"

namespace panda {
namespace lint {

struct Diagnostic {
  std::string rule;
  std::string file;  // relative to the lint root
  int line = 0;
  std::string message;

  std::string ToString() const;
};

struct LintConfig {
  // Directory walked by RunLint; rules see paths relative to it.
  std::string root = ".";
  // Subdirectories (relative to root) to scan.
  std::vector<std::string> dirs = {"src", "bench", "examples", "tests"};
  // span-coverage manifest entries: (relative file, function name).
  // When empty, RunLint loads tools/analyze/span_manifest.txt under
  // `root` (rule skipped when that file does not exist).
  std::vector<std::pair<std::string, std::string>> span_manifest;
  // tag-coverage manifest entries: (MsgTag enumerator, integrity
  // class). When empty, RunLint loads the non-aux `message` lines of
  // tools/analyze/protocol.spec under `root` (rule skipped when that
  // file does not exist).
  std::vector<std::pair<std::string, std::string>> tag_manifest;
  // Rule ids to skip entirely.
  std::set<std::string> disabled_rules;
};

struct Rule {
  std::string id;
  std::string description;
  // Appends diagnostics for one file (suppressions applied by caller).
  std::function<void(const SourceFile&, const LintConfig&,
                     std::vector<Diagnostic>*)>
      check;
};

// The registered rules, in reporting order.
const std::vector<Rule>& Registry();

// A cross-file check instance: Scan() observes each file in turn,
// Report() emits diagnostics once the whole corpus has been seen. One
// fresh instance per lint run (Scan accumulates state).
class CrossFileCheck {
 public:
  virtual ~CrossFileCheck() = default;
  virtual void Scan(const SourceFile& file, const LintConfig& config) = 0;
  virtual void Report(std::vector<Diagnostic>* out) = 0;
};

struct CrossFileRule {
  std::string id;
  std::string description;
  std::function<std::unique_ptr<CrossFileCheck>()> make;
};

// The registered cross-file rules, in reporting order.
const std::vector<CrossFileRule>& CrossFileRegistry();

// Runs every enabled rule over one tokenized file; returns unsuppressed
// diagnostics. (Unit-test entry point; RunLint uses it per file.)
std::vector<Diagnostic> CheckFile(const SourceFile& file,
                                  const LintConfig& config);

// Lints a whole corpus: per-file rules on each file plus the cross-file
// rules over the full set, suppressions applied, sorted by (file, line,
// rule). (Unit-test entry point; RunLint tokenizes the tree and calls
// this.)
std::vector<Diagnostic> CheckFiles(const std::vector<SourceFile>& files,
                                   const LintConfig& config);

// Walks config.root/config.dirs for *.h / *.cc files, lints each, and
// returns every unsuppressed diagnostic sorted by (file, line, rule).
std::vector<Diagnostic> RunLint(const LintConfig& config);

// Walks config.root/config.dirs for *.h / *.cc files and tokenizes
// each, paths relative to root, sorted. Shared corpus loader for
// RunLint and panda_proto's RunProto.
std::vector<SourceFile> LoadCorpus(const LintConfig& config);

// Parses span manifest text ("relative/path FunctionName" per line; '#'
// comments and blank lines ignored).
std::vector<std::pair<std::string, std::string>> ParseSpanManifest(
    const std::string& text);

// Extracts tag-coverage entries from protocol.spec text: each non-aux
// `message <tag> ... integrity=<class> ...` line yields a
// (tag, integrity class) pair. Other lines, '#' comments and blanks are
// ignored (full spec grammar: protocol_spec.h).
std::vector<std::pair<std::string, std::string>> ParseTagManifest(
    const std::string& text);

}  // namespace lint
}  // namespace panda
