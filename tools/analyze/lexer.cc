#include "analyze/lexer.h"

#include <cctype>
#include <cstddef>

namespace panda {
namespace lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "panda-lint: allow(rule-a, rule-b)" / "allow-file(rule)"
// markers out of one comment's text.
void ParseSuppressions(const std::string& comment, int line, SourceFile* out) {
  const std::string kMarker = "panda-lint:";
  size_t pos = comment.find(kMarker);
  if (pos == std::string::npos) return;
  pos += kMarker.size();
  while (pos < comment.size()) {
    while (pos < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[pos]))) {
      ++pos;
    }
    size_t word_end = pos;
    while (word_end < comment.size() &&
           (IsIdentChar(comment[word_end]) || comment[word_end] == '-')) {
      ++word_end;
    }
    const std::string verb = comment.substr(pos, word_end - pos);
    if (verb != "allow" && verb != "allow-file") return;
    size_t open = comment.find('(', word_end);
    if (open == std::string::npos) return;
    size_t close = comment.find(')', open);
    if (close == std::string::npos) return;
    // Split the rule list on commas/whitespace.
    size_t i = open + 1;
    while (i < close) {
      while (i < close && (comment[i] == ',' ||
                           std::isspace(static_cast<unsigned char>(comment[i])))) {
        ++i;
      }
      size_t j = i;
      while (j < close && comment[j] != ',' &&
             !std::isspace(static_cast<unsigned char>(comment[j]))) {
        ++j;
      }
      if (j > i) {
        const std::string rule = comment.substr(i, j - i);
        if (verb == "allow") {
          out->allow_lines[line].insert(rule);
        } else {
          out->allow_file.insert(rule);
        }
      }
      i = j;
    }
    pos = close + 1;
  }
}

}  // namespace

bool SourceFile::IsHeader() const {
  return rel_path.size() >= 2 &&
         rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

bool SourceFile::Suppressed(const std::string& rule, int line) const {
  if (allow_file.count(rule) != 0 || allow_file.count("*") != 0) return true;
  for (int l : {line, line - 1}) {
    auto it = allow_lines.find(l);
    if (it == allow_lines.end()) continue;
    if (it->second.count(rule) != 0 || it->second.count("*") != 0) return true;
  }
  return false;
}

SourceFile Tokenize(const std::string& rel_path, const std::string& content) {
  SourceFile out;
  out.rel_path = rel_path;

  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (content[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = content[i];

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const int start_line = line;
      size_t end = i;
      while (end < n && content[end] != '\n') ++end;
      ParseSuppressions(content.substr(i, end - i), start_line, &out);
      advance(end - i);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      ParseSuppressions(content.substr(i, end - i), start_line, &out);
      advance(end - i);
      continue;
    }

    // Preprocessor logical line (joins backslash continuations).
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      size_t end = i;
      while (end < n) {
        if (content[end] == '\n') {
          if (!text.empty() && text.back() == '\\') {
            text.pop_back();
            text.push_back(' ');
            ++end;
            continue;
          }
          break;
        }
        text.push_back(content[end]);
        ++end;
      }
      // Strip a trailing // comment from the directive text.
      const size_t slashes = text.find("//");
      if (slashes != std::string::npos) text.resize(slashes);
      out.tokens.push_back({TokKind::kPrepro, text, start_line});
      // Side tables: pragma once and includes.
      if (text.find("pragma") != std::string::npos &&
          text.find("once") != std::string::npos) {
        ++out.pragma_once_count;
        if (out.pragma_once_line == 0) out.pragma_once_line = start_line;
      }
      const size_t inc = text.find("include");
      if (text.find("#") == 0 && inc != std::string::npos) {
        size_t q = text.find_first_of("<\"", inc);
        if (q != std::string::npos) {
          const char close = text[q] == '<' ? '>' : '"';
          const size_t qe = text.find(close, q + 1);
          if (qe != std::string::npos) {
            out.includes.emplace_back(start_line,
                                      text.substr(q, qe - q + 1));
          }
        }
      }
      advance(end - i);
      continue;
    }
    at_line_start = false;

    // Identifier (with raw-string lookahead: R"( u8R"( ...).
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < n && IsIdentChar(content[end])) ++end;
      std::string ident = content.substr(i, end - i);
      const bool raw_prefix =
          !ident.empty() && ident.back() == 'R' && end < n && content[end] == '"';
      if (raw_prefix) {
        // Raw string literal: R"delim( ... )delim".
        const int start_line = line;
        size_t p = end + 1;
        std::string delim;
        while (p < n && content[p] != '(') delim.push_back(content[p++]);
        const std::string closer = ")" + delim + "\"";
        size_t close = content.find(closer, p);
        if (close == std::string::npos) close = n;
        else close += closer.size();
        out.tokens.push_back(
            {TokKind::kString, content.substr(i, close - i), start_line});
        advance(close - i);
        continue;
      }
      out.tokens.push_back({TokKind::kIdent, std::move(ident), line});
      advance(end - i);
      continue;
    }

    // Number (pp-number: digits, idents chars, quotes-as-separators,
    // dots, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      size_t end = i;
      while (end < n) {
        const char d = content[end];
        if (IsIdentChar(d) || d == '.') {
          ++end;
        } else if (d == '\'' && end + 1 < n &&
                   IsIdentChar(content[end + 1])) {
          end += 2;  // digit separator
        } else if ((d == '+' || d == '-') && end > i &&
                   (content[end - 1] == 'e' || content[end - 1] == 'E' ||
                    content[end - 1] == 'p' || content[end - 1] == 'P')) {
          ++end;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, content.substr(i, end - i), line});
      advance(end - i);
      continue;
    }

    // String literal.
    if (c == '"') {
      const int start_line = line;
      size_t end = i + 1;
      while (end < n && content[end] != '"') {
        if (content[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      if (end < n) ++end;
      out.tokens.push_back(
          {TokKind::kString, content.substr(i, end - i), start_line});
      advance(end - i);
      continue;
    }

    // Char literal.
    if (c == '\'') {
      const int start_line = line;
      size_t end = i + 1;
      while (end < n && content[end] != '\'') {
        if (content[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      if (end < n) ++end;
      out.tokens.push_back(
          {TokKind::kChar, content.substr(i, end - i), start_line});
      advance(end - i);
      continue;
    }

    // Everything else: one punctuation character per token.
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }

  return out;
}

}  // namespace lint
}  // namespace panda
