// The machine-readable Panda wire-protocol specification
// (tools/analyze/protocol.spec), companion to docs/PROTOCOL.md and
// input to the panda_proto analyses (proto_rules.h) and to panda_lint's
// tag-coverage rule (the integrity classes superseded the `tag` lines
// that used to live in span_manifest.txt).
//
// Grammar ('#' comments and blank lines ignored; order free except that
// a message may only reference an already-declared phase):
//
//   phase <name> [failure-capable]
//   message <tag> phase=<phase> integrity=<class> send=<roles>
//           recv=<roles> [aux]
//   boundary <function>
//
// Roles: client, server, app, any (comma-separated lists allowed).
// Integrity classes: wire-crc, header-checked, control, unchecked.
// `failure-capable` marks a phase in which a peer can legally
// crash-stop while this end is parked on a receive — the deadline
// analysis only polices those phases. `aux` marks tags that are not
// MsgTag enumerators (the baseline tag space kTagApp+n declared in
// src/baselines/baseline_util.h). `boundary` names a function that
// converts transport errors into the structured PandaAbortError —
// the sinks of the error-flow escape analysis.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace panda {
namespace lint {

struct PhaseSpec {
  std::string name;
  bool failure_capable = false;
  int line = 0;  // line in the spec file (for error messages)
};

struct MessageSpec {
  std::string name;
  std::string phase;
  std::string integrity;
  std::set<std::string> send_roles;
  std::set<std::string> recv_roles;
  bool aux = false;
  int line = 0;
};

struct BoundarySpec {
  std::string function;
  int line = 0;
};

struct ProtocolSpec {
  std::vector<PhaseSpec> phases;
  std::vector<MessageSpec> messages;
  std::vector<BoundarySpec> boundaries;

  const MessageSpec* Find(const std::string& tag) const;
  const PhaseSpec* FindPhase(const std::string& name) const;
  bool FailureCapable(const std::string& phase) const;
};

// Parses spec text. On malformed input returns false and describes the
// first problem (with its line number) in *error.
bool ParseProtocolSpec(const std::string& text, ProtocolSpec* spec,
                       std::string* error);

// Reads and parses `path`. False (with *error) when unreadable or
// malformed.
bool LoadProtocolSpec(const std::string& path, ProtocolSpec* spec,
                      std::string* error);

// Graphviz export of the message choreography: one role-to-role edge
// per message, labeled with tag/phase/integrity; failure-capable-phase
// edges drawn in red. Deterministic output (spec order), so the
// checked-in docs/protocol_diagram.dot can be diffed against it in CI.
std::string ProtocolDot(const ProtocolSpec& spec);

}  // namespace lint
}  // namespace panda
