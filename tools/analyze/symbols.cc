#include "analyze/symbols.h"

#include <algorithm>

namespace panda {
namespace lint {

namespace {

bool IsPunct(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

// Identifiers that look like `name (` but never are function
// definitions or interesting call sites (control flow, operators,
// specifiers). Keeping macro invocations (PANDA_REQUIRE, TEST, ...) is
// deliberate: they register as calls to names with no definition, which
// every analysis treats as "no edge".
const std::set<std::string>& NotAFunction() {
  static const std::set<std::string>* kSet = new std::set<std::string>{
      "if",       "for",      "while",     "switch",        "catch",
      "return",   "throw",    "sizeof",    "alignof",       "alignas",
      "noexcept", "decltype", "new",       "delete",        "do",
      "else",     "try",      "operator",  "constexpr",     "consteval",
      "constinit", "defined", "co_await",  "co_return",     "co_yield",
      "static_assert", "requires", "assert"};
  return *kSet;
}

// Matches a bracketed region starting at the opener token `open`
// (counting only `oc`/`cc`); returns the index of the matching closer,
// or toks.size() when unbalanced.
std::size_t MatchFrom(const std::vector<Token>& toks, std::size_t open,
                      char oc, char cc) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], oc)) ++depth;
    if (IsPunct(toks[j], cc) && --depth == 0) return j;
  }
  return toks.size();
}

// Parses the try/catch structure inside [body_open, body_close].
void CollectTries(const std::vector<Token>& toks, std::size_t body_open,
                  std::size_t body_close, std::vector<TryBlock>* out) {
  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "try") continue;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], '{')) continue;
    TryBlock tb;
    tb.open = i + 1;
    tb.close = MatchFrom(toks, tb.open, '{', '}');
    if (tb.close >= toks.size()) return;  // unbalanced: give up on file
    std::size_t j = tb.close + 1;
    while (j + 1 < toks.size() && toks[j].kind == TokKind::kIdent &&
           toks[j].text == "catch" && IsPunct(toks[j + 1], '(')) {
      const std::size_t close_paren = MatchFrom(toks, j + 1, '(', ')');
      if (close_paren >= toks.size()) break;
      for (std::size_t k = j + 2; k < close_paren; ++k) {
        if (toks[k].kind == TokKind::kIdent && toks[k].text != "const" &&
            toks[k].text != "std") {
          tb.caught.insert(toks[k].text);
        }
        if (IsPunct(toks[k], '.')) tb.caught.insert("...");
      }
      std::size_t cb = close_paren + 1;
      if (cb >= toks.size() || !IsPunct(toks[cb], '{')) break;
      const std::size_t cb_close = MatchFrom(toks, cb, '{', '}');
      if (cb_close >= toks.size()) break;
      j = cb_close + 1;
    }
    tb.caught.erase("");
    out->push_back(std::move(tb));
  }
}

// Guard-object mutex tags that are not mutexes.
const std::set<std::string>& LockTagArgs() {
  static const std::set<std::string>* kSet = new std::set<std::string>{
      "std", "defer_lock", "try_to_lock", "adopt_lock", "this"};
  return *kSet;
}

// Parses `lock_guard<...> name(mu_);`-style acquisitions inside the
// body. The guarded range runs to the end of the enclosing brace scope.
void CollectLocks(const std::vector<Token>& toks, std::size_t body_open,
                  std::size_t body_close, std::vector<LockSite>* out) {
  static const std::set<std::string> kGuards = {"lock_guard", "unique_lock",
                                                "scoped_lock"};
  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    if (toks[i].kind != TokKind::kIdent || kGuards.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < body_close && IsPunct(toks[j], '<')) {
      int tdepth = 0;
      for (; j < body_close; ++j) {
        if (IsPunct(toks[j], '<')) ++tdepth;
        if (IsPunct(toks[j], '>') && --tdepth == 0) break;
      }
      ++j;  // past '>'
    }
    // Guard variable name, then the argument list.
    if (j >= body_close || toks[j].kind != TokKind::kIdent) continue;
    ++j;
    if (j >= body_close || !IsPunct(toks[j], '(')) continue;
    const std::size_t close_paren = MatchFrom(toks, j, '(', ')');
    if (close_paren >= toks.size()) continue;
    // One mutex per top-level comma-separated argument: its last
    // identifier (`*mu`, `this->mu_`, `other.mu_` all end in the name).
    int depth = 0;
    std::string last_ident;
    std::vector<std::pair<std::string, int>> mutexes;  // (name, line)
    int last_line = toks[i].line;
    for (std::size_t k = j; k <= close_paren; ++k) {
      if (IsPunct(toks[k], '(')) ++depth;
      if (IsPunct(toks[k], ')')) --depth;
      if (depth == 1 && toks[k].kind == TokKind::kIdent &&
          LockTagArgs().count(toks[k].text) == 0) {
        last_ident = toks[k].text;
        last_line = toks[k].line;
      }
      if ((depth == 1 && IsPunct(toks[k], ',')) ||
          (depth == 0 && IsPunct(toks[k], ')'))) {
        if (!last_ident.empty()) mutexes.emplace_back(last_ident, last_line);
        last_ident.clear();
      }
    }
    // Enclosing scope end: the first '}' that closes a brace opened at
    // or before the acquisition.
    std::size_t scope_end = body_close;
    int bdepth = 0;
    for (std::size_t k = close_paren + 1; k <= body_close; ++k) {
      if (IsPunct(toks[k], '{')) ++bdepth;
      if (IsPunct(toks[k], '}')) {
        if (bdepth == 0) {
          scope_end = k;
          break;
        }
        --bdepth;
      }
    }
    for (const auto& [name, line] : mutexes) {
      out->push_back({name, close_paren, line, scope_end});
    }
    i = close_paren;
  }
}

}  // namespace

FileSymbols AnalyzeFile(const SourceFile& file) {
  FileSymbols out;
  out.rel_path = file.rel_path;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (NotAFunction().count(toks[i].text) != 0) continue;
    if (!IsPunct(toks[i + 1], '(')) continue;
    const std::size_t params_close = MatchFrom(toks, i + 1, '(', ')');
    if (params_close >= toks.size()) break;
    // Scan qualifiers until '{' (a definition) or ';'/'='/':'/','/')'
    // (a declaration, call, or constructor with an init list — skipped,
    // matching rules.cc's FindDefinitions heuristic).
    std::size_t k = params_close + 1;
    bool is_def = false;
    for (std::size_t steps = 0; k < toks.size() && steps < 32; ++k, ++steps) {
      const Token& t = toks[k];
      if (IsPunct(t, '{')) {
        is_def = true;
        break;
      }
      if (IsPunct(t, ';') || IsPunct(t, '=') || IsPunct(t, ':') ||
          IsPunct(t, ',') || IsPunct(t, ')')) {
        break;
      }
    }
    if (!is_def) continue;
    const std::size_t body_close = MatchFrom(toks, k, '{', '}');
    if (body_close >= toks.size()) break;

    FunctionDef def;
    def.name = toks[i].text;
    def.file = file.rel_path;
    def.line = toks[i].line;
    def.body_open = k;
    def.body_close = body_close;
    for (std::size_t c = k + 1; c < body_close; ++c) {
      if (toks[c].kind == TokKind::kIdent && IsPunct(toks[c + 1], '(') &&
          NotAFunction().count(toks[c].text) == 0) {
        def.calls.push_back({toks[c].text, c, toks[c].line});
      }
    }
    CollectTries(toks, k, body_close, &def.tries);
    CollectLocks(toks, k, body_close, &def.locks);
    out.functions.push_back(std::move(def));
    i = k;  // resume inside the body: nested lambdas carry no defs, but
            // nothing else should be skipped
  }
  return out;
}

bool GuardedBy(const FunctionDef& fn, std::size_t idx,
               const std::set<std::string>& handlers) {
  for (const TryBlock& tb : fn.tries) {
    if (!(tb.open < idx && idx < tb.close)) continue;
    if (tb.caught.count("...") != 0) return true;
    for (const std::string& h : handlers) {
      if (tb.caught.count(h) != 0) return true;
    }
  }
  return false;
}

void CallGraph::Add(const FileSymbols& syms) {
  for (const FunctionDef& def : syms.functions) {
    defs_[def.name].push_back(&def);
  }
}

const std::vector<const FunctionDef*>* CallGraph::DefsOf(
    const std::string& name) const {
  const auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

}  // namespace lint
}  // namespace panda
