// panda_lint — the project-invariant linter (tools/analyze).
//
//   panda_lint [--root=DIR] [--dir=a,b,...] [--disable=rule-a,rule-b]
//              [--list_rules]
//
// Exits 0 when the tree is clean, 1 when any diagnostic fires, 2 on
// usage errors. Diagnostics print one per line as
//   path:line: [rule-id] message
// so editors and CI logs can jump straight to the offending line.
// Suppress a finding in source with `// panda-lint: allow(<rule>)`
// (docs/ANALYSIS.md documents every rule and the suppression contract).
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/rules.h"

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  panda::lint::LintConfig config;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (name == "--root") {
      config.root = value;
    } else if (name == "--dir") {
      config.dirs = SplitCommas(value);
    } else if (name == "--disable") {
      for (const std::string& r : SplitCommas(value)) {
        config.disabled_rules.insert(r);
      }
    } else if (name == "--list_rules") {
      list_rules = true;
    } else {
      std::fprintf(stderr, "panda_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (list_rules) {
    for (const panda::lint::Rule& rule : panda::lint::Registry()) {
      std::printf("%-16s %s\n", rule.id.c_str(), rule.description.c_str());
    }
    return 0;
  }

  try {
    const std::vector<panda::lint::Diagnostic> diags =
        panda::lint::RunLint(config);
    for (const panda::lint::Diagnostic& d : diags) {
      std::printf("%s\n", d.ToString().c_str());
    }
    if (!diags.empty()) {
      std::printf("panda_lint: %zu violation(s)\n", diags.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "panda_lint: %s\n", e.what());
    return 2;
  }
}
