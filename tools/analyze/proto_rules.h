// panda_proto rule registry and driver (tools/analyze): cross-TU
// protocol-conformance and error-flow analyses built on the symbol
// layer (symbols.h) and the machine-readable wire spec
// (protocol_spec.h / tools/analyze/protocol.spec). Catalogue
// (docs/ANALYSIS.md has the long form):
//
//   proto-tag        every Send/Recv site naming a kTag* enumerator
//                    must appear in the spec with a send/recv role
//                    matching the file's subsystem (src/panda/client*
//                    -> client, src/panda/ -> server, baselines/
//                    examples/tests/bench -> app; src/msg/ and src/mc/
//                    are the transport and harness layers — exempt from
//                    role checks, unknown tags still flagged). Drift
//                    guard both ways: every MsgTag enumerator in
//                    src/msg/message.h needs a spec entry, every
//                    non-aux spec entry needs an enumerator.
//   proto-escape     no spec `boundary` function may transitively reach
//                    a directed Endpoint::Recv through call sites that
//                    are not covered by a catch of PeerDeadError (or a
//                    base: PandaError, exception, runtime_error, ...).
//                    Directed Recv is the only primitive that throws
//                    PeerDeadError (msg/mailbox.h: RecvAny/TryRecv
//                    never do) — the raw-escape class panda_mc found
//                    dynamically in tests/schedules/
//                    master-kill-abort.mctrace.
//   proto-deadline   a blocking directed Recv of a tag whose spec phase
//                    is failure-capable must sit under a PeerDeadError-
//                    capable catch, use a TryRecv deadline variant, or
//                    carry a justified allow() suppression.
//   proto-lock-order collects guard-object lock acquisition order
//                    across TUs (mutexes identified per file stem) and
//                    reports static lock-order cycles, following calls
//                    made while a lock is held.
//
// Diagnostics use the panda_lint format and suppression contract
// (`// panda-lint: allow(<rule>)`, rules.h).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analyze/protocol_spec.h"
#include "analyze/rules.h"

namespace panda {
namespace lint {

struct ProtoRule {
  std::string id;
  std::string description;
  // Builds a fresh two-phase check instance bound to the spec (which
  // must outlive it).
  std::function<std::unique_ptr<CrossFileCheck>(const ProtocolSpec&)> make;
};

// The registered panda_proto rules, in reporting order.
const std::vector<ProtoRule>& ProtoRegistry();

// Runs every enabled proto rule over the corpus: Scan each file, then
// Report with the whole tree in view; suppressions resolved against the
// anchoring file; sorted by (file, line, rule). (Unit-test entry point;
// RunProto loads the tree and calls this.)
std::vector<Diagnostic> CheckProtoFiles(const std::vector<SourceFile>& files,
                                        const ProtocolSpec& spec,
                                        const LintConfig& config);

// Walks config.root/config.dirs (LoadCorpus), loads the spec from
// `spec_path` (empty = <root>/tools/analyze/protocol.spec) and runs the
// proto analyses. On a spec load/parse failure returns an empty vector
// and sets *error (callers exit 2: a broken spec is a usage error, not
// a clean tree).
std::vector<Diagnostic> RunProto(const LintConfig& config,
                                 const std::string& spec_path,
                                 std::string* error);

}  // namespace lint
}  // namespace panda
