#include "analyze/protocol_spec.h"

#include <fstream>
#include <sstream>

namespace panda {
namespace lint {

namespace {

const std::set<std::string>& KnownRoles() {
  static const std::set<std::string>* kRoles =
      new std::set<std::string>{"client", "server", "app", "any"};
  return *kRoles;
}

const std::set<std::string>& KnownIntegrity() {
  static const std::set<std::string>* kClasses = new std::set<std::string>{
      "wire-crc", "header-checked", "control", "unchecked"};
  return *kClasses;
}

bool Fail(std::string* error, int line, const std::string& what) {
  std::ostringstream os;
  os << "protocol.spec:" << line << ": " << what;
  *error = os.str();
  return false;
}

bool ParseRoles(const std::string& value, std::set<std::string>* out) {
  std::istringstream is(value);
  std::string role;
  while (std::getline(is, role, ',')) {
    if (role.empty() || KnownRoles().count(role) == 0) return false;
    out->insert(role);
  }
  return !out->empty();
}

}  // namespace

const MessageSpec* ProtocolSpec::Find(const std::string& tag) const {
  for (const MessageSpec& m : messages) {
    if (m.name == tag) return &m;
  }
  return nullptr;
}

const PhaseSpec* ProtocolSpec::FindPhase(const std::string& name) const {
  for (const PhaseSpec& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

bool ProtocolSpec::FailureCapable(const std::string& phase) const {
  const PhaseSpec* p = FindPhase(phase);
  return p != nullptr && p->failure_capable;
}

bool ParseProtocolSpec(const std::string& text, ProtocolSpec* spec,
                       std::string* error) {
  *spec = ProtocolSpec{};
  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream fields(raw);
    std::string keyword;
    if (!(fields >> keyword)) continue;

    if (keyword == "phase") {
      PhaseSpec phase;
      phase.line = lineno;
      if (!(fields >> phase.name)) {
        return Fail(error, lineno, "phase needs a name");
      }
      std::string flag;
      if (fields >> flag) {
        if (flag != "failure-capable") {
          return Fail(error, lineno, "unknown phase flag '" + flag + "'");
        }
        phase.failure_capable = true;
      }
      if (spec->FindPhase(phase.name) != nullptr) {
        return Fail(error, lineno, "duplicate phase '" + phase.name + "'");
      }
      spec->phases.push_back(std::move(phase));
    } else if (keyword == "message") {
      MessageSpec msg;
      msg.line = lineno;
      if (!(fields >> msg.name)) {
        return Fail(error, lineno, "message needs a tag name");
      }
      if (spec->Find(msg.name) != nullptr) {
        return Fail(error, lineno, "duplicate message '" + msg.name + "'");
      }
      std::string attr;
      while (fields >> attr) {
        const std::size_t eq = attr.find('=');
        if (eq == std::string::npos) {
          if (attr == "aux") {
            msg.aux = true;
            continue;
          }
          return Fail(error, lineno,
                      "unknown message attribute '" + attr + "'");
        }
        const std::string key = attr.substr(0, eq);
        const std::string value = attr.substr(eq + 1);
        if (key == "phase") {
          msg.phase = value;
        } else if (key == "integrity") {
          msg.integrity = value;
        } else if (key == "send") {
          if (!ParseRoles(value, &msg.send_roles)) {
            return Fail(error, lineno, "bad send roles '" + value + "'");
          }
        } else if (key == "recv") {
          if (!ParseRoles(value, &msg.recv_roles)) {
            return Fail(error, lineno, "bad recv roles '" + value + "'");
          }
        } else {
          return Fail(error, lineno, "unknown message key '" + key + "'");
        }
      }
      if (msg.phase.empty() || spec->FindPhase(msg.phase) == nullptr) {
        return Fail(error, lineno, "message '" + msg.name +
                                       "' references undeclared phase '" +
                                       msg.phase + "'");
      }
      if (KnownIntegrity().count(msg.integrity) == 0) {
        return Fail(error, lineno, "message '" + msg.name +
                                       "' has unknown integrity class '" +
                                       msg.integrity + "'");
      }
      if (msg.send_roles.empty() || msg.recv_roles.empty()) {
        return Fail(error, lineno,
                    "message '" + msg.name + "' needs send= and recv= roles");
      }
      spec->messages.push_back(std::move(msg));
    } else if (keyword == "boundary") {
      BoundarySpec boundary;
      boundary.line = lineno;
      if (!(fields >> boundary.function)) {
        return Fail(error, lineno, "boundary needs a function name");
      }
      spec->boundaries.push_back(std::move(boundary));
    } else {
      return Fail(error, lineno, "unknown keyword '" + keyword + "'");
    }
  }
  if (spec->messages.empty()) {
    return Fail(error, lineno, "spec declares no messages");
  }
  return true;
}

bool LoadProtocolSpec(const std::string& path, ProtocolSpec* spec,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read protocol spec at " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseProtocolSpec(buf.str(), spec, error);
}

std::string ProtocolDot(const ProtocolSpec& spec) {
  std::ostringstream os;
  os << "// Generated by `panda_proto --dot` from"
     << " tools/analyze/protocol.spec.\n"
     << "// Red edges travel in failure-capable phases (docs/PROTOCOL.md).\n"
     << "digraph panda_protocol {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n"
     << "  edge [fontname=\"monospace\", fontsize=10];\n";
  for (const MessageSpec& m : spec.messages) {
    const bool fc = spec.FailureCapable(m.phase);
    for (const std::string& s : m.send_roles) {
      for (const std::string& r : m.recv_roles) {
        os << "  \"" << s << "\" -> \"" << r << "\" [label=\"" << m.name
           << "\\n(" << m.phase << ", " << m.integrity << ")\"";
        if (fc) os << ", color=\"#b22222\"";
        os << "];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace lint
}  // namespace panda
