// panda_proto — the cross-TU protocol-conformance and error-flow
// analyzer (tools/analyze).
//
//   panda_proto [--root=DIR] [--dir=a,b,...] [--spec=FILE]
//               [--disable=rule-a,rule-b] [--list_rules]
//               [--dot[=FILE]] [--json_out=FILE]
//
// Exits 0 when the tree conforms to the wire spec, 1 when any
// diagnostic fires, 2 on usage errors (including an unreadable or
// malformed spec — a broken spec is never a clean tree). Diagnostics
// print one per line in the panda_lint format
//   path:line: [rule-id] message
// and honor the same suppression contract
// (`// panda-lint: allow(<rule>)`; docs/ANALYSIS.md).
//
// --dot renders the spec's message choreography as Graphviz (stdout, or
// FILE) and exits; CI diffs it against docs/protocol_diagram.dot.
// --json_out additionally writes the findings as a JSON array (a CI
// artifact; the human-readable lines still go to stdout).
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/proto_rules.h"
#include "analyze/protocol_spec.h"

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool WriteJson(const std::string& path,
               const std::vector<panda::lint::Diagnostic>& diags) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const panda::lint::Diagnostic& d = diags[i];
    out << "  {\"rule\": \"" << JsonEscape(d.rule) << "\", \"file\": \""
        << JsonEscape(d.file) << "\", \"line\": " << d.line
        << ", \"message\": \"" << JsonEscape(d.message) << "\"}"
        << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  panda::lint::LintConfig config;
  std::string spec_path;
  std::string json_out;
  std::string dot_out;
  bool list_rules = false;
  bool want_dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (name == "--root") {
      config.root = value;
    } else if (name == "--dir") {
      config.dirs = SplitCommas(value);
    } else if (name == "--spec") {
      spec_path = value;
    } else if (name == "--disable") {
      for (const std::string& r : SplitCommas(value)) {
        config.disabled_rules.insert(r);
      }
    } else if (name == "--list_rules") {
      list_rules = true;
    } else if (name == "--dot") {
      want_dot = true;
      dot_out = value;
    } else if (name == "--json_out") {
      json_out = value;
    } else {
      std::fprintf(stderr, "panda_proto: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  if (list_rules) {
    for (const panda::lint::ProtoRule& rule : panda::lint::ProtoRegistry()) {
      std::printf("%-18s %s\n", rule.id.c_str(), rule.description.c_str());
    }
    return 0;
  }

  if (want_dot) {
    panda::lint::ProtocolSpec spec;
    std::string error;
    const std::string path =
        spec_path.empty() ? config.root + "/tools/analyze/protocol.spec"
                          : spec_path;
    if (!panda::lint::LoadProtocolSpec(path, &spec, &error)) {
      std::fprintf(stderr, "panda_proto: %s\n", error.c_str());
      return 2;
    }
    const std::string dot = panda::lint::ProtocolDot(spec);
    if (dot_out.empty()) {
      std::printf("%s", dot.c_str());
    } else {
      std::ofstream out(dot_out);
      out << dot;
      if (!out.good()) {
        std::fprintf(stderr, "panda_proto: cannot write %s\n",
                     dot_out.c_str());
        return 2;
      }
    }
    return 0;
  }

  try {
    std::string error;
    const std::vector<panda::lint::Diagnostic> diags =
        panda::lint::RunProto(config, spec_path, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "panda_proto: %s\n", error.c_str());
      return 2;
    }
    for (const panda::lint::Diagnostic& d : diags) {
      std::printf("%s\n", d.ToString().c_str());
    }
    if (!json_out.empty() && !WriteJson(json_out, diags)) {
      std::fprintf(stderr, "panda_proto: cannot write %s\n",
                   json_out.c_str());
      return 2;
    }
    if (!diags.empty()) {
      std::printf("panda_proto: %zu violation(s)\n", diags.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "panda_proto: %s\n", e.what());
    return 2;
  }
}
