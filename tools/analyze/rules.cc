#include "analyze/rules.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <tuple>

namespace panda {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool AnyPrefix(const std::string& path, const std::vector<std::string>& pres) {
  for (const auto& p : pres) {
    if (StartsWith(path, p)) return true;
  }
  return false;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool IsPunct(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

// True when tokens[i] is an identifier immediately invoked: `ident(`.
bool IsCall(const std::vector<Token>& toks, size_t i) {
  return toks[i].kind == TokKind::kIdent && i + 1 < toks.size() &&
         IsPunct(toks[i + 1], '(');
}

// Backward lexical walk from `idx`: true when the token at `idx` sits
// inside the argument list (directly or via nested lambdas/calls) of a
// call whose callee identifier is `callee`. This is how raw-io decides
// that `file->WriteAt(...)` is wrapped by `retry.Run(..., [&] { ... })`.
// Bounded to `budget` tokens so a pathological file cannot stall lint.
bool EnclosedByCall(const std::vector<Token>& toks, size_t idx,
                    const char* callee, size_t budget = 800) {
  int depth = 0;
  size_t steps = 0;
  for (size_t j = idx; j-- > 0;) {
    if (++steps > budget) return false;
    const Token& t = toks[j];
    if (t.kind == TokKind::kPrepro) continue;
    if (t.kind != TokKind::kPunct || t.text.size() != 1) continue;
    const char c = t.text[0];
    if (c == ')' || c == ']' || c == '}') {
      ++depth;
    } else if (c == '(' || c == '[' || c == '{') {
      if (depth > 0) {
        --depth;
        continue;
      }
      // Unmatched opener: we just stepped out one enclosing level.
      if (c == '(') {
        // Find the callee identifier directly before the paren.
        size_t k = j;
        while (k-- > 0 && toks[k].kind == TokKind::kPrepro) {
        }
        if (k < toks.size() && toks[k].kind == TokKind::kIdent &&
            toks[k].text == callee) {
          return true;
        }
      }
      // Keep walking outward (depth stays 0).
    }
  }
  return false;
}

// A function definition's body: token index of its '{' and the def line.
struct BodyRange {
  size_t open = 0;   // index of '{'
  size_t close = 0;  // index of matching '}'
  int line = 0;
};

// Finds definitions of `name` in the token stream (heuristic: `name (`
// whose parameter list is followed by qualifiers and then '{'; a ';' or
// '=' means declaration/deleted — skipped, as are constructors with
// init lists).
std::vector<BodyRange> FindDefinitions(const std::vector<Token>& toks,
                                       const std::string& name) {
  std::vector<BodyRange> out;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != name) continue;
    if (!IsPunct(toks[i + 1], '(')) continue;
    // Match the parameter list.
    int depth = 0;
    size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      if (IsPunct(toks[j], '(')) ++depth;
      if (IsPunct(toks[j], ')') && --depth == 0) break;
    }
    if (j >= toks.size()) break;
    // Scan qualifiers until '{' (definition) or ';'/'='/':' (not one).
    size_t k = j + 1;
    bool is_def = false;
    for (size_t steps = 0; k < toks.size() && steps < 32; ++k, ++steps) {
      const Token& t = toks[k];
      if (IsPunct(t, '{')) {
        is_def = true;
        break;
      }
      if (IsPunct(t, ';') || IsPunct(t, '=') || IsPunct(t, ':') ||
          IsPunct(t, ',') || IsPunct(t, ')')) {
        break;
      }
      // const / noexcept / override / -> Type / && qualifiers: keep going.
    }
    if (!is_def) continue;
    // Match the body braces.
    size_t close = k;
    int bdepth = 0;
    for (; close < toks.size(); ++close) {
      if (IsPunct(toks[close], '{')) ++bdepth;
      if (IsPunct(toks[close], '}') && --bdepth == 0) break;
    }
    if (close >= toks.size()) break;
    out.push_back({k, close, toks[i].line});
    i = k;  // resume after the signature (bodies may nest lambdas)
  }
  return out;
}

void Diag(std::vector<Diagnostic>* out, const std::string& rule,
          const SourceFile& f, int line, std::string message) {
  out->push_back({rule, f.rel_path, line, std::move(message)});
}

// ---- wall-clock ------------------------------------------------------

void CheckWallClock(const SourceFile& f, const LintConfig&,
                    std::vector<Diagnostic>* out) {
  // src/sched/ is a wall-schedule layer like src/msg/: carrier dozing,
  // park deadlines and probe pacing are OS-thread mechanics, never part
  // of the virtual-time model.
  static const std::vector<std::string> kAllowed = {
      "src/sp2/", "src/msg/", "src/sched/", "src/iosim/posix_fs"};
  if (AnyPrefix(f.rel_path, kAllowed)) return;
  static const std::set<std::string> kBanned = {
      "gettimeofday",          "clock_gettime", "timespec_get",
      "system_clock",          "steady_clock",  "high_resolution_clock",
      "QueryPerformanceCounter"};
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool banned_name = kBanned.count(toks[i].text) != 0;
    const bool time_call = toks[i].text == "time" && IsCall(toks, i);
    if (banned_name || time_call) {
      Diag(out, "wall-clock", f, toks[i].line,
           "wall-clock source '" + toks[i].text +
               "' outside src/sp2//src/msg/ — the simulation may only "
               "observe virtual time");
    }
  }
}

// ---- raw-io ----------------------------------------------------------

void CheckRawIo(const SourceFile& f, const LintConfig&,
                std::vector<Diagnostic>* out) {
  if (!StartsWith(f.rel_path, "src/panda/") &&
      !StartsWith(f.rel_path, "src/store/")) {
    return;
  }
  // Designated raw-I/O layers: the WAL, checksum sidecars, schema
  // metadata, the codec frame reader (its offline-verify entry points
  // deliberately run without retries), the sequential baseline and the
  // shard-table codec (pure in-memory framing plus offline table reads)
  // own their durability story.
  static const std::vector<std::string> kAllowed = {
      "src/panda/journal.", "src/panda/integrity.", "src/panda/schema_io.",
      "src/panda/frame_io.", "src/panda/sequential.",
      "src/store/shard_table."};
  if (AnyPrefix(f.rel_path, kAllowed)) return;
  static const std::set<std::string> kOps = {"WriteAt", "ReadAt", "Sync"};
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kOps.count(toks[i].text) == 0) {
      continue;
    }
    if (!IsCall(toks, i)) continue;
    if (EnclosedByCall(toks, i, "Run")) continue;  // RetryPolicy::Run wrap
    Diag(out, "raw-io", f, toks[i].line,
         "direct FileSystem::" + toks[i].text +
             " outside RetryPolicy::Run — transient disk faults would "
             "not heal");
  }
}

// ---- raw-send --------------------------------------------------------

void CheckRawSend(const SourceFile& f, const LintConfig&,
                  std::vector<Diagnostic>* out) {
  // src/sched/ defines WaitCV::NotifyAll — the blocking-point seam the
  // mailbox parks fibers on — so it shares the transport's exemption.
  if (StartsWith(f.rel_path, "src/msg/") ||
      StartsWith(f.rel_path, "src/sched/")) {
    return;
  }
  static const std::set<std::string> kInternals = {
      "Deposit",        "BlockingReceive", "BlockingReceiveAny",
      "ReceiveWithin",  "ForceAbort",      "PurgeIf",
      "InstallHooks",   "NotifyAll",       "Poison"};
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        kInternals.count(toks[i].text) == 0) {
      continue;
    }
    if (!IsCall(toks, i)) continue;
    Diag(out, "raw-send", f, toks[i].line,
         "mailbox/transport internal '" + toks[i].text +
             "' used outside src/msg/ — go through Endpoint "
             "send/receive");
  }
}

// ---- raw-thread ------------------------------------------------------

// Rank concurrency belongs to the scheduler seam: src/sched/ owns the
// carriers (and the thread-per-rank backend), src/msg/ targets it. A
// bare std::thread anywhere else bypasses that seam — its blocking
// points would park a real OS thread the fiber backend cannot multiplex,
// quietly breaking the --sched=fiber 4096-rank scaling story. Auxiliary
// OS threads that are genuinely outside the rank world (a test poking a
// mailbox from the side) escape with `// panda-lint: allow(raw-thread)`.
void CheckRawThread(const SourceFile& f, const LintConfig&,
                    std::vector<Diagnostic>* out) {
  static const std::vector<std::string> kAllowed = {"src/msg/",
                                                    "src/sched/"};
  if (AnyPrefix(f.rel_path, kAllowed)) return;
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& name = toks[i].text;
    const bool std_thread =
        (name == "thread" || name == "jthread") && i >= 3 &&
        IsIdent(toks[i - 3], "std") && IsPunct(toks[i - 2], ':') &&
        IsPunct(toks[i - 1], ':');
    const bool pthread = name == "pthread_create" && IsCall(toks, i);
    if (std_thread || pthread) {
      Diag(out, "raw-thread", f, toks[i].line,
           "raw OS thread '" + name +
               "' outside src/msg//src/sched/ — ranks run on the "
               "scheduler backend (Machine::SetSchedBackend), not ad-hoc "
               "threads");
    }
  }
}

// ---- span-coverage ---------------------------------------------------

void CheckSpanCoverage(const SourceFile& f, const LintConfig& config,
                       std::vector<Diagnostic>* out) {
  static const std::set<std::string> kSpanIdents = {
      "PANDA_SPAN", "RecordSpan", "RecordInstant", "SpanScope"};
  for (const auto& entry : config.span_manifest) {
    if (entry.first != f.rel_path) continue;
    const std::vector<BodyRange> defs =
        FindDefinitions(f.tokens, entry.second);
    if (defs.empty()) {
      Diag(out, "span-coverage", f, 1,
           "manifest function '" + entry.second +
               "' not found — update tools/analyze/span_manifest.txt");
      continue;
    }
    for (const BodyRange& body : defs) {
      bool has_span = false;
      for (size_t i = body.open; i <= body.close && i < f.tokens.size();
           ++i) {
        if (f.tokens[i].kind == TokKind::kIdent &&
            kSpanIdents.count(f.tokens[i].text) != 0) {
          has_span = true;
          break;
        }
      }
      if (!has_span) {
        Diag(out, "span-coverage", f, body.line,
             "protocol stage '" + entry.second +
                 "' has no PANDA_SPAN/RecordSpan — observability "
                 "coverage regressed (docs/OBSERVABILITY.md)");
      }
    }
  }
}

// ---- tag-coverage ----------------------------------------------------

// Every message tag must declare how its payload is integrity-protected
// (docs/PROTOCOL.md): `wire-crc` (payload carries a CRC32C checked by
// the receiver), `header-checked` (fixed framing fully validated on
// decode), `control` (no data payload to protect), or `unchecked`
// (application-owned payload the transport makes no promises about —
// the kTagApp space). A tag added to the enum without a spec entry is
// exactly the regression this rule exists to catch: data moving with no
// declared integrity story. The entries live in the `message` lines of
// tools/analyze/protocol.spec (which superseded the `tag` lines that
// used to sit in span_manifest.txt).
void CheckTagCoverage(const SourceFile& f, const LintConfig& config,
                      std::vector<Diagnostic>* out) {
  if (f.rel_path != "src/msg/message.h") return;
  if (config.tag_manifest.empty()) return;  // manifest not loaded
  static const std::set<std::string> kMechanisms = {
      "wire-crc", "header-checked", "control", "unchecked"};
  // Collect the MsgTag enumerators: identifiers directly following '{'
  // or ',' inside `enum ... MsgTag ... { ... }`.
  const auto& toks = f.tokens;
  std::vector<std::pair<std::string, int>> tags;  // (name, line)
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "enum")) continue;
    size_t j = i + 1;
    bool is_msgtag = false;
    for (; j < toks.size() && !IsPunct(toks[j], '{'); ++j) {
      if (IsIdent(toks[j], "MsgTag")) is_msgtag = true;
      if (IsPunct(toks[j], ';')) break;  // forward declaration
    }
    if (!is_msgtag || j >= toks.size() || !IsPunct(toks[j], '{')) continue;
    for (size_t k = j + 1; k < toks.size() && !IsPunct(toks[k], '}'); ++k) {
      if (toks[k].kind == TokKind::kIdent &&
          (IsPunct(toks[k - 1], '{') || IsPunct(toks[k - 1], ','))) {
        tags.emplace_back(toks[k].text, toks[k].line);
      }
    }
    i = j;
  }

  for (const auto& [name, line] : tags) {
    const auto it = std::find_if(
        config.tag_manifest.begin(), config.tag_manifest.end(),
        [&name](const auto& e) { return e.first == name; });
    if (it == config.tag_manifest.end()) {
      Diag(out, "tag-coverage", f, line,
           "message tag '" + name +
               "' has no coverage entry — declare it with a `message " +
               name + " ... integrity=<class>` line in "
               "tools/analyze/protocol.spec");
    } else if (kMechanisms.count(it->second) == 0) {
      Diag(out, "tag-coverage", f, line,
           "message tag '" + name + "' declares unknown integrity "
               "mechanism '" + it->second +
               "' (expected wire-crc, header-checked, control or "
               "unchecked)");
    }
  }
  // Stale manifest entries are as misleading as missing ones.
  for (const auto& entry : config.tag_manifest) {
    const auto it = std::find_if(
        tags.begin(), tags.end(),
        [&entry](const auto& t) { return t.first == entry.first; });
    if (it == tags.end()) {
      Diag(out, "tag-coverage", f, 1,
           "spec covers unknown message tag '" + entry.first +
               "' — remove it from tools/analyze/protocol.spec or mark "
               "it aux");
    }
  }
}

// ---- header-hygiene --------------------------------------------------

void CheckHeaderHygiene(const SourceFile& f, const LintConfig&,
                        std::vector<Diagnostic>* out) {
  if (!f.IsHeader()) return;
  if (f.pragma_once_count == 0) {
    Diag(out, "header-hygiene", f, 1,
         "header is missing #pragma once");
  } else if (f.pragma_once_count > 1) {
    Diag(out, "header-hygiene", f, f.pragma_once_line,
         "duplicate #pragma once");
  }
  const auto& toks = f.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdent(toks[i], "using") && IsIdent(toks[i + 1], "namespace")) {
      Diag(out, "header-hygiene", f, toks[i].line,
           "'using namespace' in a header leaks into every includer");
    }
  }
  if (StartsWith(f.rel_path, "src/")) {
    for (const auto& inc : f.includes) {
      if (inc.second == "<iostream>") {
        Diag(out, "header-hygiene", f, inc.first,
             "<iostream> in a src/ header (static-initializer cost in "
             "every TU; include it in the .cc that prints)");
      }
    }
  }
}

// ---- report-silence --------------------------------------------------

void CheckReportSilence(const SourceFile& f, const LintConfig&,
                        std::vector<Diagnostic>* out) {
  if (!StartsWith(f.rel_path, "src/")) return;
  // Designated output sinks: the report printer, trace exporters and
  // the util diagnostics (PANDA_CHECK abort path, PANDA_LOG).
  static const std::vector<std::string> kAllowed = {
      "src/panda/report.cc", "src/trace/export.", "src/util/error.",
      "src/util/logging."};
  if (AnyPrefix(f.rel_path, kAllowed)) return;
  static const std::set<std::string> kPrintCalls = {
      "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs",
      "putchar"};
  static const std::set<std::string> kStreams = {"cout", "cerr", "clog"};
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (kPrintCalls.count(toks[i].text) != 0 && IsCall(toks, i)) {
      Diag(out, "report-silence", f, toks[i].line,
           "'" + toks[i].text +
               "' in src/ — reports are silent-when-clean; print only "
               "from report.cc / trace/export.cc");
    } else if (kStreams.count(toks[i].text) != 0) {
      Diag(out, "report-silence", f, toks[i].line,
           "std::" + toks[i].text +
               " in src/ — reports are silent-when-clean; print only "
               "from report.cc / trace/export.cc");
    }
  }
}

// ---- trace-no-clock --------------------------------------------------

void CheckTraceNoClock(const SourceFile& f, const LintConfig&,
                       std::vector<Diagnostic>* out) {
  if (!StartsWith(f.rel_path, "src/trace/")) return;
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if ((toks[i].text == "Advance" || toks[i].text == "SyncTo") &&
        IsCall(toks, i)) {
      Diag(out, "trace-no-clock", f, toks[i].line,
           "src/trace/ calls VirtualClock::" + toks[i].text +
               " — tracing must observe time, never advance it "
               "(traced and untraced runs are bit-identical)");
    }
  }
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

const std::vector<Rule>& Registry() {
  static const std::vector<Rule>* kRules = new std::vector<Rule>{
      {"wall-clock",
       "no wall-clock sources outside src/sp2/, src/msg/, src/sched/, "
       "posix_fs",
       CheckWallClock},
      {"raw-io",
       "server disk ops in src/panda/ must go through RetryPolicy::Run",
       CheckRawIo},
      {"raw-send",
       "mailbox/transport internals stay inside src/msg/ and src/sched/",
       CheckRawSend},
      {"raw-thread",
       "OS threads are spawned only by src/msg/ and src/sched/",
       CheckRawThread},
      {"span-coverage",
       "manifest protocol stages carry PANDA_SPAN instrumentation",
       CheckSpanCoverage},
      {"tag-coverage",
       "every MsgTag declares its integrity mechanism in the manifest",
       CheckTagCoverage},
      {"header-hygiene",
       "#pragma once exactly once; no using-namespace / <iostream> in "
       "headers",
       CheckHeaderHygiene},
      {"report-silence",
       "no printing from src/ outside report.cc and trace/export.cc",
       CheckReportSilence},
      {"trace-no-clock",
       "src/trace/ never advances virtual clocks",
       CheckTraceNoClock},
  };
  return *kRules;
}

// ---- cross-file rules ------------------------------------------------

namespace {

// error-caught: every PandaError subclass declared in src/ must be
// caught by its exact name somewhere in the tree. Phase 1 collects
// class declarations (derived -> bases) and `catch (const X&)` names;
// phase 2 walks the inheritance edges transitively from PandaError and
// flags subclasses nobody names in a catch clause.
class ErrorCaughtCheck : public CrossFileCheck {
 public:
  void Scan(const SourceFile& file, const LintConfig&) override {
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
      // `class X : ... Base1 ... , ... Base2 ... {`
      if ((IsIdent(toks[i], "class") || IsIdent(toks[i], "struct")) &&
          toks[i + 1].kind == TokKind::kIdent && IsPunct(toks[i + 2], ':')) {
        Decl decl;
        decl.name = toks[i + 1].text;
        decl.file = file.rel_path;
        decl.line = toks[i + 1].line;
        decl.in_src = StartsWith(file.rel_path, "src/");
        for (size_t j = i + 3; j < toks.size() && !IsPunct(toks[j], '{') &&
                               !IsPunct(toks[j], ';');
             ++j) {
          if (toks[j].kind == TokKind::kIdent && !IsIdent(toks[j], "public") &&
              !IsIdent(toks[j], "protected") &&
              !IsIdent(toks[j], "private") && !IsIdent(toks[j], "virtual") &&
              !IsIdent(toks[j], "std")) {
            decl.bases.push_back(toks[j].text);
          }
        }
        decls_.push_back(std::move(decl));
      }
      // `catch ( const? Ns :: X &? name? )` — the caught type is the
      // last identifier inside the parens (skipping `const`).
      if (IsIdent(toks[i], "catch") && IsPunct(toks[i + 1], '(')) {
        std::string caught;
        for (size_t j = i + 2; j < toks.size() && !IsPunct(toks[j], ')');
             ++j) {
          if (toks[j].kind == TokKind::kIdent && !IsIdent(toks[j], "const")) {
            caught = toks[j].text;
          }
          if (IsPunct(toks[j], '&')) break;  // past the type, into the name
        }
        if (!caught.empty()) caught_.insert(caught);
      }
    }
  }

  void Report(std::vector<Diagnostic>* out) override {
    // Transitive closure of "derives from PandaError".
    std::set<std::string> error_types = {"PandaError"};
    for (bool grew = true; grew;) {
      grew = false;
      for (const Decl& decl : decls_) {
        if (error_types.count(decl.name) != 0) continue;
        for (const std::string& base : decl.bases) {
          if (error_types.count(base) != 0) {
            error_types.insert(decl.name);
            grew = true;
            break;
          }
        }
      }
    }
    for (const Decl& decl : decls_) {
      if (!decl.in_src || decl.name == "PandaError") continue;
      if (error_types.count(decl.name) == 0) continue;
      if (caught_.count(decl.name) != 0) continue;
      out->push_back(
          {"error-caught", decl.file, decl.line,
           "PandaError subclass '" + decl.name +
               "' is never caught by name anywhere in the tree — either "
               "some protocol path should handle it, or the type is dead"});
    }
  }

 private:
  struct Decl {
    std::string name;
    std::vector<std::string> bases;
    std::string file;
    int line = 0;
    bool in_src = false;
  };
  std::vector<Decl> decls_;
  std::set<std::string> caught_;
};

// options-tested: every field of `struct ServerOptions` (src/) must be
// referenced by at least one file under tests/. Phase 1 records the
// field declarations and every identifier the tests mention; phase 2
// flags unreferenced fields.
class OptionsTestedCheck : public CrossFileCheck {
 public:
  void Scan(const SourceFile& file, const LintConfig&) override {
    const std::vector<Token>& toks = file.tokens;
    if (StartsWith(file.rel_path, "tests/")) {
      for (const Token& t : toks) {
        if (t.kind == TokKind::kIdent) test_idents_.insert(t.text);
      }
    }
    if (!StartsWith(file.rel_path, "src/")) return;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "struct") ||
          !IsIdent(toks[i + 1], "ServerOptions") ||
          !IsPunct(toks[i + 2], '{')) {
        continue;
      }
      // Walk the struct body at depth 1. A field statement ends in `;`;
      // its name is the last identifier before the first `=` or the
      // terminating `;` (`bool x = false;`, `RetryPolicy retry;`,
      // `RobustnessStats* robustness = nullptr;`).
      int depth = 1;
      const Token* last_ident = nullptr;
      bool in_initializer = false;
      for (size_t j = i + 3; j < toks.size() && depth > 0; ++j) {
        const Token& t = toks[j];
        if (t.kind == TokKind::kPunct && t.text.size() == 1) {
          const char c = t.text[0];
          if (c == '{' || c == '(') ++depth;
          if (c == '}' || c == ')') --depth;
          if (depth == 1 && c == '=' && !in_initializer) {
            if (last_ident != nullptr) {
              fields_.push_back({last_ident->text, file.rel_path,
                                 last_ident->line});
            }
            in_initializer = true;
          }
          if (depth == 1 && c == ';') {
            if (!in_initializer && last_ident != nullptr) {
              fields_.push_back({last_ident->text, file.rel_path,
                                 last_ident->line});
            }
            in_initializer = false;
            last_ident = nullptr;
          }
        } else if (t.kind == TokKind::kIdent && depth == 1 &&
                   !in_initializer) {
          last_ident = &t;
        }
      }
    }
  }

  void Report(std::vector<Diagnostic>* out) override {
    for (const Field& field : fields_) {
      if (test_idents_.count(field.name) != 0) continue;
      out->push_back(
          {"options-tested", field.file, field.line,
           "ServerOptions field '" + field.name +
               "' is never referenced by any test — an untested server "
               "knob rots silently"});
    }
  }

 private:
  struct Field {
    std::string name;
    std::string file;
    int line = 0;
  };
  std::vector<Field> fields_;
  std::set<std::string> test_idents_;
};

}  // namespace

const std::vector<CrossFileRule>& CrossFileRegistry() {
  static const auto* kRules = new std::vector<CrossFileRule>{
      {"error-caught",
       "every PandaError subclass is caught by name somewhere",
       [] { return std::unique_ptr<CrossFileCheck>(new ErrorCaughtCheck); }},
      {"options-tested",
       "every ServerOptions field is referenced by a test",
       [] {
         return std::unique_ptr<CrossFileCheck>(new OptionsTestedCheck);
       }},
  };
  return *kRules;
}

std::vector<Diagnostic> CheckFiles(const std::vector<SourceFile>& files,
                                   const LintConfig& config) {
  std::vector<Diagnostic> diags;
  for (const SourceFile& file : files) {
    std::vector<Diagnostic> d = CheckFile(file, config);
    diags.insert(diags.end(), std::make_move_iterator(d.begin()),
                 std::make_move_iterator(d.end()));
  }

  std::vector<std::unique_ptr<CrossFileCheck>> checks;
  for (const CrossFileRule& rule : CrossFileRegistry()) {
    if (config.disabled_rules.count(rule.id) != 0) continue;
    checks.push_back(rule.make());
  }
  for (const SourceFile& file : files) {
    for (auto& check : checks) check->Scan(file, config);
  }
  std::vector<Diagnostic> cross;
  for (auto& check : checks) check->Report(&cross);
  // Suppressions for cross-file diagnostics resolve against the file
  // the diagnostic anchors to.
  for (Diagnostic& d : cross) {
    const SourceFile* anchor = nullptr;
    for (const SourceFile& file : files) {
      if (file.rel_path == d.file) {
        anchor = &file;
        break;
      }
    }
    if (anchor != nullptr && anchor->Suppressed(d.rule, d.line)) continue;
    diags.push_back(std::move(d));
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return diags;
}

std::vector<Diagnostic> CheckFile(const SourceFile& file,
                                  const LintConfig& config) {
  std::vector<Diagnostic> raw;
  for (const Rule& rule : Registry()) {
    if (config.disabled_rules.count(rule.id) != 0) continue;
    rule.check(file, config, &raw);
  }
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : raw) {
    if (!file.Suppressed(d.rule, d.line)) kept.push_back(std::move(d));
  }
  return kept;
}

std::vector<std::pair<std::string, std::string>> ParseSpanManifest(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string path;
    std::string fn;
    if (fields >> path >> fn) out.emplace_back(path, fn);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseTagManifest(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    std::string tag;
    if (!(fields >> keyword >> tag) || keyword != "message") continue;
    std::string attr;
    std::string integrity;
    bool aux = false;
    while (fields >> attr) {
      if (attr == "aux") aux = true;
      const std::string kKey = "integrity=";
      if (attr.rfind(kKey, 0) == 0) integrity = attr.substr(kKey.size());
    }
    // aux tags live outside the MsgTag enum (the kTagApp+n baseline
    // space) — the enum-coverage rule must not expect them there.
    if (!aux && !integrity.empty()) out.emplace_back(tag, integrity);
  }
  return out;
}

std::vector<SourceFile> LoadCorpus(const LintConfig& config) {
  // Deterministic file order: collect, sort, tokenize.
  std::vector<fs::path> files;
  for (const std::string& dir : config.dirs) {
    const fs::path base = fs::path(config.root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::path(fs::relative(path, config.root)).generic_string();
    sources.push_back(Tokenize(rel, buf.str()));
  }
  return sources;
}

std::vector<Diagnostic> RunLint(const LintConfig& config) {
  LintConfig cfg = config;
  if (cfg.span_manifest.empty()) {
    const fs::path manifest =
        fs::path(cfg.root) / "tools" / "analyze" / "span_manifest.txt";
    std::ifstream in(manifest);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      cfg.span_manifest = ParseSpanManifest(buf.str());
    }
  }
  if (cfg.tag_manifest.empty()) {
    // Tag integrity classes live in the wire spec since panda_proto
    // subsumed the old span_manifest `tag` lines.
    const fs::path spec =
        fs::path(cfg.root) / "tools" / "analyze" / "protocol.spec";
    std::ifstream in(spec);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      cfg.tag_manifest = ParseTagManifest(buf.str());
    }
  }

  // Tokenize the whole corpus first: the cross-file rules need every
  // file in view before they can report (CheckFiles runs both phases).
  return CheckFiles(LoadCorpus(cfg), cfg);
}

}  // namespace lint
}  // namespace panda
