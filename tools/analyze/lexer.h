// A lightweight C++ tokenizer for panda_lint (tools/analyze).
//
// This is deliberately NOT a compiler front end: no preprocessing, no
// name lookup, no libclang dependency. The linter's rules are lexical
// invariants ("this identifier must not be called outside that
// directory"), so a token stream with line numbers — comments stripped,
// string/char literals collapsed to single tokens, preprocessor logical
// lines kept whole — is exactly the right level of abstraction. It
// tokenizes the whole repository in a few milliseconds, which is what
// lets panda_lint run as a pre-commit/CI gate with zero build-system
// coupling.
//
// Comments are not discarded entirely: `// panda-lint: allow(<rule>)`
// markers are parsed into a per-line suppression table (see
// docs/ANALYSIS.md for the suppression contract).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace panda {
namespace lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-numbers (including 0x1'000 digit separators)
  kString,   // "..." including raw strings; text holds the full literal
  kChar,     // '...'
  kPunct,    // single punctuation character
  kPrepro,   // one full preprocessor logical line (continuations joined)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// One tokenized source file plus the side tables the rules consume.
struct SourceFile {
  std::string rel_path;  // forward-slash path relative to the lint root
  std::vector<Token> tokens;

  // line -> rules allowed on that line (via "// panda-lint: allow(x)");
  // "*" means every rule. A marker suppresses diagnostics on its own
  // line and on the line directly below it (so a standalone comment can
  // shield the statement it precedes).
  std::map<int, std::set<std::string>> allow_lines;

  // Rules allowed for the entire file ("// panda-lint: allow-file(x)").
  std::set<std::string> allow_file;

  // Convenience extracts from kPrepro tokens.
  int pragma_once_count = 0;
  int pragma_once_line = 0;
  std::vector<std::pair<int, std::string>> includes;  // line, "<x>" or "\"x\""

  bool IsHeader() const;

  // True when a diagnostic of `rule` at `line` is suppressed.
  bool Suppressed(const std::string& rule, int line) const;
};

// Tokenizes `content`. Never fails: unrecognized bytes become kPunct
// tokens (the rules simply won't match them).
SourceFile Tokenize(const std::string& rel_path, const std::string& content);

}  // namespace lint
}  // namespace panda
