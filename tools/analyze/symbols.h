// A lightweight symbol layer on top of the panda_lint lexer
// (tools/analyze). Still deliberately NOT a compiler front end: function
// boundaries, call sites, try/catch structure and lock acquisitions are
// recovered heuristically from the token stream, which is exactly the
// level the panda_proto analyses need (docs/ANALYSIS.md):
//
//   * function definitions — every `name ( params ) quals {` shape, with
//     the body's token range. Out-of-line members (`Cls::Fn`) register
//     under their unqualified name; lambdas are folded into the
//     enclosing function (a call inside `retry.Run(..., [&] { ... })`
//     belongs to the caller, which is the right attribution for
//     error-flow analysis).
//   * call sites — `ident (` inside a body. Calls through function
//     pointers, std::function values or virtual dispatch have no callee
//     identifier worth resolving and are simply absent: the analyses
//     degrade to "unknown callee, no edge" rather than guessing.
//   * try/catch regions — the try body's token range plus every
//     identifier named in its catch clauses ("..." recorded literally),
//     so a call site can be asked "is any enclosing try prepared to
//     catch X here?".
//   * lock acquisitions — std::lock_guard / unique_lock / scoped_lock
//     guard objects with the guarded mutex name(s) and the token range
//     the guard covers (to the end of its enclosing brace scope).
//     Bare mutex.lock() calls are not modeled (nothing in the tree uses
//     them; the degrade is documented in docs/ANALYSIS.md).
//
// The project-wide CallGraph merges definitions by unqualified name
// across translation units — the same two-phase corpus view the
// CrossFileCheck API (rules.h) already provides.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace panda {
namespace lint {

// One try statement inside a function: the body's token range and the
// identifiers appearing in its catch clauses (type names; also the
// exception variable name, which is harmless, and "..." for catch-all).
struct TryBlock {
  std::size_t open = 0;   // token index of the try body's '{'
  std::size_t close = 0;  // token index of its matching '}'
  std::set<std::string> caught;
};

// A direct call site: `callee (` at token index `tok`.
struct CallSite {
  std::string callee;
  std::size_t tok = 0;
  int line = 0;
};

// One guard-object lock acquisition. `scope_end` is the token index of
// the '}' closing the guard's enclosing scope: the range (tok,
// scope_end) is held-under-this-lock territory.
struct LockSite {
  std::string mutex_name;  // unqualified, as written (e.g. "mu_")
  std::size_t tok = 0;
  int line = 0;
  std::size_t scope_end = 0;
};

struct FunctionDef {
  std::string name;  // unqualified
  std::string file;  // rel_path of the defining file
  int line = 0;
  std::size_t body_open = 0;   // token index of the body '{'
  std::size_t body_close = 0;  // token index of the matching '}'
  std::vector<CallSite> calls;
  std::vector<TryBlock> tries;
  std::vector<LockSite> locks;
};

struct FileSymbols {
  std::string rel_path;
  std::vector<FunctionDef> functions;
};

// Extracts every function definition (with calls, tries, locks) from a
// tokenized file. Never fails; shapes it cannot parse are skipped.
FileSymbols AnalyzeFile(const SourceFile& file);

// True when token index `idx` (inside fn's body) sits inside a try
// whose catch clauses name one of `handlers`, or use catch(...).
bool GuardedBy(const FunctionDef& fn, std::size_t idx,
               const std::set<std::string>& handlers);

// Project-wide call graph, keyed by unqualified function name. Multiple
// definitions of the same name (overloads, same-named members of
// different classes, per-TU statics) merge: a property holds for the
// name if it holds for any definition — the sound direction for
// escape-style analyses.
class CallGraph {
 public:
  // Registers every function of `syms`. The FileSymbols object must
  // outlive the graph (the graph stores pointers into it).
  void Add(const FileSymbols& syms);

  // All definitions of `name`, or nullptr when none was seen.
  const std::vector<const FunctionDef*>* DefsOf(const std::string& name) const;

  const std::map<std::string, std::vector<const FunctionDef*>>& defs() const {
    return defs_;
  }

 private:
  std::map<std::string, std::vector<const FunctionDef*>> defs_;
};

}  // namespace lint
}  // namespace panda
