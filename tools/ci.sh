#!/bin/sh
# Tier-1 CI: builds and runs the full test suite twice — once plain,
# once under AddressSanitizer + UBSan (the PANDA_SANITIZE cache option).
# The sanitizer pass is what catches the bugs the fault-injection tests
# provoke on purpose: use-after-free across abort unwinding, races on
# the robustness counters, buffer arithmetic in the checksum paths.
#
#   tools/ci.sh [--skip-sanitizers]
set -eu

SKIP_SAN=""
[ "${1:-}" = "--skip-sanitizers" ] && SKIP_SAN=1

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

echo "== plain build + tests"
run_suite build-ci

if [ -z "$SKIP_SAN" ]; then
  echo "== asan/ubsan build + tests"
  run_suite build-ci-asan "-DPANDA_SANITIZE=address;undefined"
fi

echo "CI OK"
