#!/bin/sh
# Tier-1 CI: builds and runs the full test suite three times — plain,
# under AddressSanitizer + UBSan, and under ThreadSanitizer (the
# PANDA_SANITIZE cache option). The ASan pass catches what the
# fault-injection tests provoke on purpose: use-after-free across abort
# unwinding, buffer arithmetic in the checksum paths. The TSan pass
# polices the transport's fault machinery — the lossy/reliable layer,
# the kill injector and the failover protocol all touch cross-thread
# state that a data race would corrupt silently.
#
# Every test carries a ctest TIMEOUT (PANDA_TEST_TIMEOUT, default 120 s;
# raised for the ~10x-slower sanitizer builds), so a protocol bug that
# shows up as a hang — a rank blocked on a message that will never
# arrive — fails the suite instead of wedging CI. An explicit
# `ctest --timeout` backstop covers tests added without the property.
#
# Between the plain suite and the sanitizers, tools/bench.sh runs a
# quick Figure 4 sweep, guards the machine-readable bench schema
# (including the 1024-rank fiber scale bar), and archives one Chrome
# trace artifact (docs/OBSERVABILITY.md); a fiber-scheduler smoke runs
# the same workload at 1024 simulated ranks through the CLI surface
# (docs/SCHEDULER.md); then a budgeted panda_mc smoke exhausts the 2x2
# no-fault and bounded kill+drop decision spaces with zero invariant
# violations (docs/MODEL_CHECKING.md).
#
# Static-analysis gates (docs/ANALYSIS.md):
#  * tools/lint.sh runs BEFORE any compile: clang-format and clang-tidy
#    when installed (skipped loudly otherwise — the container bakes in
#    only g++), plus panda_lint and panda_proto (tools/analyze) always —
#    the project-invariant linter and the protocol-conformance analyzer
#    need nothing but a C++ compiler.
#  * The plain suite builds with -DPANDA_WERROR=ON: warnings are errors
#    in CI, advisory on developer machines.
#  * A fourth suite builds with -DPANDA_HB=ON: the vector-clock
#    happens-before checker is compiled in, hb_race_test's machine-level
#    tests arm it, and a protocol-level ordering bug fails CI here
#    before it ever becomes a seed-dependent flake.
#
#   tools/ci.sh [--skip-sanitizers]
set -eu

SKIP_SAN=""
[ "${1:-}" = "--skip-sanitizers" ] && SKIP_SAN=1

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  build_dir="$1"
  timeout_s="$2"
  shift 2
  cmake -B "$build_dir" -S . "-DPANDA_TEST_TIMEOUT=$timeout_s" "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"         --timeout "$timeout_s"
}

echo "== lint (pre-build)"
tools/lint.sh

echo "== plain build + tests (-Werror)"
run_suite build-ci 120 -DPANDA_WERROR=ON

echo "== panda_lint (CMake-built binary over the full tree)"
cmake --build build-ci -j "$JOBS" --target panda_lint
build-ci/tools-analyze/panda_lint --root=.

echo "== panda_proto (protocol conformance over the full tree)"
# The cross-TU analyzer gates at -Werror severity: zero unsuppressed
# findings, findings archived as a CI artifact, and the checked-in
# protocol diagram must match the spec it was generated from
# (docs/ANALYSIS.md).
cmake --build build-ci -j "$JOBS" --target panda_proto
mkdir -p build-ci/artifacts
build-ci/tools-analyze/panda_proto --root=. \
    --json_out=build-ci/artifacts/PROTO_findings.json
build-ci/tools-analyze/panda_proto --root=. --dot=build-ci/proto.dot
diff -u docs/protocol_diagram.dot build-ci/proto.dot

echo "== header hygiene (every src/ header compiles standalone)"
cmake --build build-ci -j "$JOBS" --target header_compile_test

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy (compile_commands.json from build-ci)"
  tools/lint.sh --tidy build-ci build-ci/tools-analyze/panda_lint \
      build-ci/tools-analyze/panda_proto
fi

echo "== smoke bench + schema check"
# Runs the Figure 4 quick sweep, writes BENCH_fig4_smoke.json and a
# Chrome trace, and fails on panda_bench schema drift
# (docs/OBSERVABILITY.md). The trace is the CI run's archived
# observability artifact.
tools/bench.sh build-ci build-ci/bench-out
mkdir -p build-ci/artifacts
cp build-ci/bench-out/TRACE_fig4_smoke.json \
   build-ci/bench-out/BENCH_fig4_smoke.json build-ci/artifacts/
echo "archived artifacts: build-ci/artifacts/"

echo "== fiber scheduler smoke (--ranks=1024 --sched=fiber)"
# The event-driven rank scheduler (docs/SCHEDULER.md) at CI scale: the
# CLI surface runs the weak-scaled fig4 write collective at 1024 total
# ranks multiplexed onto a handful of OS threads. tools/bench.sh above
# already guards the bench JSON row for the same point
# (BENCH_scale_ranks.json); this stage exercises the Machine/CLI path.
build-ci/examples/sp2_experiment --ranks=1024 --sched=fiber

echo "== panda_mc smoke (docs/MODEL_CHECKING.md)"
# Budgeted model-checker smoke, ~15 s total. Three configs:
#  1. the 2x2 no-fault space — must EXHAUST with zero violations and
#     exactly one terminal state (the clean run);
#  2. a bounded kill+drop space (both servers killable across their
#     first six sends, two-fault budget; ~2.2k runs, ~8 s) — must
#     exhaust with zero violations. A protocol regression in the
#     failover/abort paths shows up here as a minimized
#     counter-schedule in the CI log.
#  3. the closed fault loop: kill the non-master i/o node anywhere in a
#     wide send window, rejoin it after the degraded commit, and allow a
#     RE-kill inside the rejoin run (the window reaches the rejoin run's
#     send ordinals because they keep counting across the revive). Must
#     exhaust with zero violations — this is the kill -> rejoin ->
#     re-kill space from docs/PROTOCOL.md's rejoin section.
# The >=10k-interleaving acceptance sweep is a manual run (too slow
# for CI); its corpus pins live in tests/schedules/ via mc_replay_test.
MC=build-ci/tools-mc/panda_mc
$MC --budget=50 > build-ci/mc_nofault.txt
grep -q "space exhausted" build-ci/mc_nofault.txt
grep -q "no invariant violations" build-ci/mc_nofault.txt
grep -q " 1 distinct states" build-ci/mc_nofault.txt
$MC --kill=0,1 --kill_lo=0 --kill_hi=6 --actions=drop --max_faults=2 \
    --budget=12000 --json_out=build-ci/artifacts/MC_smoke.json \
    > build-ci/mc_faulty.txt
grep -q "space exhausted" build-ci/mc_faulty.txt
grep -q "no invariant violations" build-ci/mc_faulty.txt
$MC --kill=1 --kill_lo=0 --kill_hi=40 --max_kills=2 --rejoin \
    --budget=2000 --json_out=build-ci/artifacts/MC_rejoin_smoke.json \
    > build-ci/mc_rejoin.txt
grep -q "space exhausted" build-ci/mc_rejoin.txt
grep -q "no invariant violations" build-ci/mc_rejoin.txt
echo "panda_mc smoke OK"

if [ -z "$SKIP_SAN" ]; then
  # Sanitizer passes build with tracing compiled in (PANDA_TRACE=ON is
  # the default, passed explicitly so a default flip cannot silently
  # shrink sanitizer coverage of the span/metrics hot paths).
  echo "== asan/ubsan build + tests"
  run_suite build-ci-asan 600 "-DPANDA_SANITIZE=address;undefined" \
            -DPANDA_TRACE=ON
  echo "== tsan build + tests"
  run_suite build-ci-tsan 600 "-DPANDA_SANITIZE=thread" -DPANDA_TRACE=ON

  # TSan polices C++-level data races; the happens-before build polices
  # PROTOCOL-level ones — individually-synchronized accesses whose order
  # the message graph does not fix (docs/ANALYSIS.md).
  echo "== happens-before build + tests"
  run_suite build-ci-hb 240 -DPANDA_HB=ON -DPANDA_WERROR=ON
fi

echo "CI OK"
