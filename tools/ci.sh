#!/bin/sh
# Tier-1 CI: builds and runs the full test suite three times — plain,
# under AddressSanitizer + UBSan, and under ThreadSanitizer (the
# PANDA_SANITIZE cache option). The ASan pass catches what the
# fault-injection tests provoke on purpose: use-after-free across abort
# unwinding, buffer arithmetic in the checksum paths. The TSan pass
# polices the transport's fault machinery — the lossy/reliable layer,
# the kill injector and the failover protocol all touch cross-thread
# state that a data race would corrupt silently.
#
# Every test carries a ctest TIMEOUT (PANDA_TEST_TIMEOUT, default 120 s;
# raised for the ~10x-slower sanitizer builds), so a protocol bug that
# shows up as a hang — a rank blocked on a message that will never
# arrive — fails the suite instead of wedging CI. An explicit
# `ctest --timeout` backstop covers tests added without the property.
#
#   tools/ci.sh [--skip-sanitizers]
set -eu

SKIP_SAN=""
[ "${1:-}" = "--skip-sanitizers" ] && SKIP_SAN=1

JOBS="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  build_dir="$1"
  timeout_s="$2"
  shift 2
  cmake -B "$build_dir" -S . "-DPANDA_TEST_TIMEOUT=$timeout_s" "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"         --timeout "$timeout_s"
}

echo "== plain build + tests"
run_suite build-ci 120

if [ -z "$SKIP_SAN" ]; then
  echo "== asan/ubsan build + tests"
  run_suite build-ci-asan 600 "-DPANDA_SANITIZE=address;undefined"
  echo "== tsan build + tests"
  run_suite build-ci-tsan 600 "-DPANDA_SANITIZE=thread"
fi

echo "CI OK"
