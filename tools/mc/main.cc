// panda_mc: systematic state-space exploration of the failover /
// recovery protocol (docs/MODEL_CHECKING.md).
//
// Modes:
//   panda_mc [config flags]            DFS-explore the decision space
//   panda_mc --walk --budget=N         seeded random walks instead
//   panda_mc --replay=FILE.mctrace     replay one decision trace
//   panda_mc --replay=FILE --update    re-run and rewrite expect lines
//
// Every terminal state is checked against the four safety invariants
// (outcome coherence, committed-checkpoint restorability, offline fsck
// cleanliness, untorn group metadata). The first violation is minimized
// to its essential decisions and written as a .mctrace (--out=FILE),
// replayable as a deterministic regression test.
//
// Exit status: 0 = explored clean, 1 = violation found, 2 = usage /
// replay-expectation errors.
#include <fstream>
#include <iostream>
#include <sstream>

#include "mc/explorer.h"
#include "trace/export.h"
#include "trace/metrics.h"
#include "util/error.h"
#include "util/options.h"

namespace panda::mc {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PandaError("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Bench-schema JSON (v3) for the explorer run: kind panda_bench, an
// empty sweep table, and the mc.* statistics in the metrics block, so
// bench-consuming tooling ingests explorer runs unchanged.
std::string ExplorerJson(const ExploreResult& result) {
  trace::MetricsRegistry registry;
  PublishMetrics(result, &registry);
  std::ostringstream out;
  out << "{\"schema_version\":3,\"kind\":\"panda_bench\","
      << "\"bench\":\"panda_mc\","
      << "\"description\":\"failover protocol state-space exploration\","
      << "\"op\":\"explore\",\"codec\":\"none\",\"quick\":false,"
      << "\"reps\":1,\"rows\":[],"
      << "\"metrics\":" << trace::MetricsJson(registry.Snapshot()) << "}";
  return out.str();
}

int Main(int argc, char** argv) {
  Options options(argc, argv);

  const std::string replay_path = options.GetString("replay", "");
  const std::string out_path = options.GetString("out", "");
  const std::string json_path = options.GetString("json_out", "");

  if (!replay_path.empty()) {
    const McTrace trace = DecodeMcTrace(ReadFileOrDie(replay_path));
    if (options.GetBool("update", false)) {
      // Trace refresh: after an intentional protocol change shifts a
      // counter-schedule's outcome, re-derive the expect lines from the
      // recorded decisions instead of hand-editing them.
      options.CheckAllConsumed();
      const McConfig cfg = McConfig::FromConfigLines(trace.config);
      const McRunResult rerun = RunWorkload(cfg, trace.assignment);
      const McTrace fresh = MakeTrace(cfg, trace.assignment, rerun);
      trace::WriteTextFile(replay_path, EncodeMcTrace(fresh));
      std::cout << "updated " << replay_path << " ("
                << trace.assignment.size() << " forced decisions, "
                << rerun.violations.size() << " violations)\n";
      return 0;
    }
    options.CheckAllConsumed();
    std::string why;
    if (!ReplayTrace(trace, &why)) {
      std::cerr << "replay " << replay_path << ": MISMATCH: " << why << "\n";
      return 2;
    }
    std::cout << "replay " << replay_path << ": outcome matches ("
              << trace.assignment.size() << " forced decisions)\n";
    return 0;
  }

  McConfig config;
  config.clients = static_cast<int>(options.GetInt("clients", 2));
  config.servers = static_cast<int>(options.GetInt("servers", 2));
  config.arrays = static_cast<int>(options.GetInt("arrays", 1));
  config.rows = static_cast<int>(options.GetInt("rows", 8));
  config.cols = static_cast<int>(options.GetInt("cols", 8));
  config.subchunk_bytes = options.GetInt("subchunk", 128);
  config.timesteps = static_cast<int>(options.GetInt("timesteps", 1));
  // --actions=drop,dup,reorder,delay arms the loss choice surface.
  {
    const std::string actions = options.GetString("actions", "");
    std::istringstream in(actions);
    std::string item;
    while (std::getline(in, item, ',')) {
      if (item == "drop") config.drop = true;
      else if (item == "dup") config.dup = true;
      else if (item == "reorder") config.reorder = true;
      else if (item == "delay") config.delay = true;
      else if (!item.empty())
        throw PandaError("unknown --actions item '" + item + "'");
    }
  }
  // --kill=S1,S2 surfaces kill choices for those server indices inside
  // the send window [--kill_lo, --kill_hi).
  {
    const std::string kill = options.GetString("kill", "");
    std::istringstream in(kill);
    std::string item;
    while (std::getline(in, item, ',')) {
      if (!item.empty()) config.kill_servers.push_back(std::stoi(item));
    }
  }
  config.kill_lo = options.GetInt("kill_lo", 0);
  config.kill_hi = options.GetInt("kill_hi", 6);
  config.deliver_choices = options.GetBool("deliver", false);
  // --rejoin revives the killed servers after eligible runs and
  // model-checks the rejoin protocol too (kill -> rejoin -> re-kill).
  config.rejoin = options.GetBool("rejoin", false);
  config.max_faults = static_cast<int>(options.GetInt("max_faults", 2));
  config.max_kills = static_cast<int>(options.GetInt("max_kills", 1));
  config.expect_no_aborts = options.GetBool("expect_no_aborts", false);

  ExploreOptions explore;
  explore.max_runs = options.GetInt("budget", 10000);
  explore.max_depth = static_cast<int>(options.GetInt("max_depth", 16));
  explore.por = options.GetBool("por", true);
  explore.minimize = options.GetBool("minimize", true);
  explore.stop_on_violation = options.GetBool("stop_on_violation", true);
  if (options.GetBool("walk", false)) {
    explore.walk_seed = static_cast<std::uint64_t>(
        options.GetInt("walk_seed", 1));
  }
  options.CheckAllConsumed();

  const ExploreResult result = Explore(config, explore);

  std::cout << "panda_mc: " << result.runs << " runs, "
            << result.distinct_states << " distinct states, "
            << result.outcomes.size() << " outcomes"
            << (result.exhausted ? " (space exhausted)" : "") << "\n"
            << "  pruned: " << result.pruned_por << " por, "
            << result.pruned_budget << " budget, " << result.pruned_depth
            << " depth; " << result.duplicates << " duplicates, "
            << result.divergences << " divergences\n";

  if (!json_path.empty()) {
    trace::WriteTextFile(json_path, ExplorerJson(result));
  }

  if (result.violations.empty()) {
    std::cout << "  no invariant violations\n";
    return 0;
  }
  const McViolation& violation = result.violations.front();
  std::cout << "  VIOLATION (" << violation.assignment.size()
            << " decisions after minimization):\n";
  for (const std::string& message : violation.messages) {
    std::cout << "    " << message << "\n";
  }
  for (const auto& [key, decision] : violation.assignment) {
    std::cout << "    " << DescribeKey(key) << " -> " << decision << "\n";
  }
  if (!out_path.empty()) {
    const McRunResult rerun = RunWorkload(config, violation.assignment);
    const McTrace trace = MakeTrace(config, violation.assignment, rerun);
    trace::WriteTextFile(out_path, EncodeMcTrace(trace));
    std::cout << "  wrote " << out_path << "\n";
  }
  return 1;
}

}  // namespace
}  // namespace panda::mc

int main(int argc, char** argv) {
  try {
    return panda::mc::Main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "panda_mc: " << e.what() << "\n";
    return 2;
  }
}
