#!/bin/sh
# Regenerates every table and figure of the paper plus the extension
# ablations, writing one output file per bench under results/.
#
#   tools/run_experiments.sh [build-dir] [--quick]
set -eu

BUILD="${1:-build}"
QUICK=""
if [ "${2:-}" = "--quick" ] || [ "${1:-}" = "--quick" ]; then
  QUICK="--quick"
  [ "${1:-}" = "--quick" ] && BUILD="build"
fi

if [ ! -d "$BUILD/bench" ]; then
  echo "no $BUILD/bench; run: cmake -B $BUILD -G Ninja && cmake --build $BUILD" >&2
  exit 1
fi

mkdir -p results
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  echo "== $name"
  if [ "$name" = "bench_kernels" ]; then
    "$b" > "results/$name.txt" 2>&1
  else
    "$b" $QUICK > "results/$name.txt" 2>&1
  fi
done
echo "done: results/*.txt"
