#!/bin/sh
# Fast pre-build lint stage (wired into tools/ci.sh before any compile):
#
#   1. clang-format --dry-run -Werror over the tree   (skipped if absent)
#   2. clang-tidy over src/, driven by the curated .clang-tidy
#      (needs a configured build dir with compile_commands.json;
#       skipped if clang-tidy is absent)            [--tidy BUILD_DIR]
#   3. panda_lint — the project-invariant linter (tools/analyze). This
#      stage has no external dependency: the linter is built from a few
#      translation units with the host C++ compiler if no build dir
#      provides it, so it ALWAYS runs, even on a box with no clang
#      tooling installed.
#   4. panda_proto — the cross-TU protocol-conformance / error-flow
#      analyzer, checked against tools/analyze/protocol.spec. Same
#      self-build story as panda_lint.
#
# Exit status is non-zero if any stage that actually ran found a
# violation. Missing optional tools are reported but do not fail the
# gate (the container image bakes in only the C++ toolchain).
#
#   tools/lint.sh [--tidy BUILD_DIR] [PANDA_LINT_BINARY] [PANDA_PROTO_BINARY]
set -eu

cd "$(dirname "$0")/.."

TIDY_BUILD=""
if [ "${1:-}" = "--tidy" ]; then
  TIDY_BUILD="$2"
  shift 2
fi
LINT_BIN="${1:-}"
PROTO_BIN="${2:-}"

FAIL=0

# ---- 1. clang-format -------------------------------------------------
if command -v clang-format > /dev/null 2>&1; then
  echo "== lint: clang-format"
  # shellcheck disable=SC2046
  if ! find src tests bench examples tools/analyze \
        -name '*.h' -o -name '*.cc' | sort \
        | xargs clang-format --dry-run -Werror; then
    FAIL=1
  fi
else
  echo "== lint: clang-format not installed — stage skipped"
fi

# ---- 2. clang-tidy ---------------------------------------------------
if [ -n "$TIDY_BUILD" ]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    if [ -f "$TIDY_BUILD/compile_commands.json" ]; then
      echo "== lint: clang-tidy ($TIDY_BUILD)"
      if ! find src -name '*.cc' | sort \
            | xargs clang-tidy -p "$TIDY_BUILD" --quiet; then
        FAIL=1
      fi
    else
      echo "== lint: no $TIDY_BUILD/compile_commands.json — tidy skipped"
    fi
  else
    echo "== lint: clang-tidy not installed — stage skipped"
  fi
fi

# ---- 3. panda_lint ---------------------------------------------------
echo "== lint: panda_lint"
if [ -z "$LINT_BIN" ] || [ ! -x "$LINT_BIN" ]; then
  # Build the linter directly: a few TUs, no dependencies beyond the
  # standard library. ~3 s, cached by mtime.
  LINT_BIN="build-lint/panda_lint"
  if [ ! -x "$LINT_BIN" ] \
     || [ tools/analyze/rules.cc -nt "$LINT_BIN" ] \
     || [ tools/analyze/lexer.cc -nt "$LINT_BIN" ] \
     || [ tools/analyze/main.cc -nt "$LINT_BIN" ]; then
    mkdir -p build-lint
    CXX_BIN="${CXX:-c++}"
    "$CXX_BIN" -std=c++20 -O1 -I tools \
      tools/analyze/lexer.cc tools/analyze/rules.cc tools/analyze/main.cc \
      -o "$LINT_BIN"
  fi
fi
if ! "$LINT_BIN" --root=.; then
  FAIL=1
fi

# ---- 4. panda_proto --------------------------------------------------
echo "== lint: panda_proto"
if [ -z "$PROTO_BIN" ] || [ ! -x "$PROTO_BIN" ]; then
  PROTO_BIN="build-lint/panda_proto"
  NEED_BUILD=0
  [ ! -x "$PROTO_BIN" ] && NEED_BUILD=1
  for tu in lexer.cc rules.cc symbols.cc protocol_spec.cc proto_rules.cc \
            proto_main.cc; do
    [ "tools/analyze/$tu" -nt "$PROTO_BIN" ] && NEED_BUILD=1
  done
  if [ "$NEED_BUILD" -ne 0 ]; then
    mkdir -p build-lint
    CXX_BIN="${CXX:-c++}"
    "$CXX_BIN" -std=c++20 -O1 -I tools \
      tools/analyze/lexer.cc tools/analyze/rules.cc \
      tools/analyze/symbols.cc tools/analyze/protocol_spec.cc \
      tools/analyze/proto_rules.cc tools/analyze/proto_main.cc \
      -o "$PROTO_BIN"
  fi
fi
if ! "$PROTO_BIN" --root=.; then
  FAIL=1
fi

if [ "$FAIL" -ne 0 ]; then
  echo "lint FAILED"
  exit 1
fi
echo "lint OK"
