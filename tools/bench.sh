#!/bin/sh
# Smoke bench + schema guard: runs the Figure 4 bench in --quick mode,
# writes the machine-readable outputs, and fails if the stable
# panda_bench JSON schema (docs/OBSERVABILITY.md, schema_version 1)
# drifts — downstream dashboards and the CI artifact step parse it.
#
#   tools/bench.sh [BUILD_DIR] [OUT_DIR]
#
# BUILD_DIR defaults to ./build (must already contain the bench
# binaries); OUT_DIR defaults to BUILD_DIR/bench-out. Writes
# BENCH_fig4_smoke.json and TRACE_fig4_smoke.json.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench-out}"
BIN="$BUILD_DIR/bench/bench_fig4_write_natural"

if [ ! -x "$BIN" ]; then
  echo "bench.sh: missing $BIN (build the repo first)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
JSON="$OUT_DIR/BENCH_fig4_smoke.json"
TRACE="$OUT_DIR/TRACE_fig4_smoke.json"

"$BIN" --quick --json_out="$JSON" --trace_out="$TRACE"

# --- schema drift check -------------------------------------------------
# Every key of schema_version 1 must be present, spelled exactly.
fail=0
for key in \
    '"schema_version":1' \
    '"kind":"panda_bench"' \
    '"bench":' \
    '"description":' \
    '"op":' \
    '"quick":' \
    '"reps":' \
    '"rows":[' \
    '"io_nodes":' \
    '"size_mb":' \
    '"elapsed_s":' \
    '"aggregate_Bps":' \
    '"per_ion_Bps":' \
    '"normalized":' \
    '"spans":'; do
  if ! grep -qF "$key" "$JSON"; then
    echo "bench.sh: SCHEMA DRIFT — missing $key in $JSON" >&2
    fail=1
  fi
done

# The trace artifact must be a Chrome trace_event JSON with per-rank
# tracks and complete events.
for key in '"traceEvents":[' '"thread_name"' '"ph":"X"' '"ts":' '"dur":'; do
  if ! grep -qF "$key" "$TRACE"; then
    echo "bench.sh: TRACE DRIFT — missing $key in $TRACE" >&2
    fail=1
  fi
done

[ "$fail" -eq 0 ] || exit 1
echo "bench.sh OK: $JSON $TRACE"
