#!/bin/sh
# Smoke bench + schema guard: runs the Figure 4 bench in --quick mode,
# writes the machine-readable outputs, and fails if the stable
# panda_bench JSON schema (docs/OBSERVABILITY.md, schema_version 5)
# drifts — downstream dashboards and the CI artifact step parse it.
# Then runs the codec ablation: the same figure with --codec=shuffle+rle
# on real compressible data must move fewer wire and disk bytes AND
# finish faster than codec=none (the compression pipeline's acceptance
# bar), or the script fails. Then runs the shard-store/backend bench
# (bench_shard_backend) and asserts its two acceptance bars: the
# advisor-chosen shard size beats per-sub-chunk objects by >= 2x
# elapsed on the object store, and posix sharded stays within 5% of
# the flat layout. Finally the rank-scheduler scale bar: the fig4
# workload at 1024 total ranks under --sched=fiber must complete
# (docs/SCHEDULER.md) and report its row at ranks=1024.
#
#   tools/bench.sh [BUILD_DIR] [OUT_DIR]
#
# BUILD_DIR defaults to ./build (must already contain the bench
# binaries); OUT_DIR defaults to BUILD_DIR/bench-out. Writes
# BENCH_fig4_smoke.json, TRACE_fig4_smoke.json, the ablation pair
# BENCH_fig4_codec_{none,shuffle_rle}.json, BENCH_shard_backend.json
# and BENCH_scale_ranks.json.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$BUILD_DIR/bench-out}"
BIN="$BUILD_DIR/bench/bench_fig4_write_natural"

if [ ! -x "$BIN" ]; then
  echo "bench.sh: missing $BIN (build the repo first)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
JSON="$OUT_DIR/BENCH_fig4_smoke.json"
TRACE="$OUT_DIR/TRACE_fig4_smoke.json"

"$BIN" --quick --json_out="$JSON" --trace_out="$TRACE"

# --- schema drift check -------------------------------------------------
# Every key of schema_version 5 must be present, spelled exactly.
fail=0
for key in \
    '"schema_version":5' \
    '"kind":"panda_bench"' \
    '"bench":' \
    '"description":' \
    '"op":' \
    '"codec":' \
    '"quick":' \
    '"reps":' \
    '"rows":[' \
    '"io_nodes":' \
    '"size_mb":' \
    '"elapsed_s":' \
    '"aggregate_Bps":' \
    '"per_ion_Bps":' \
    '"normalized":' \
    '"wire_bytes_sent":' \
    '"disk_bytes_written":' \
    '"codec_ratio":' \
    '"disk_ops":' \
    '"label":' \
    '"ranks":' \
    '"sched_backend":' \
    '"spans":' \
    '"metrics":' \
    '"counters":'; do
  if ! grep -qF "$key" "$JSON"; then
    echo "bench.sh: SCHEMA DRIFT — missing $key in $JSON" >&2
    fail=1
  fi
done

# The trace artifact must be a Chrome trace_event JSON with per-rank
# tracks and complete events.
for key in '"traceEvents":[' '"thread_name"' '"ph":"X"' '"ts":' '"dur":'; do
  if ! grep -qF "$key" "$TRACE"; then
    echo "bench.sh: TRACE DRIFT — missing $key in $TRACE" >&2
    fail=1
  fi
done

[ "$fail" -eq 0 ] || exit 1

# --- codec ablation ------------------------------------------------------
# Same figure, real compressible data, codec off vs on. The first row of
# each run is the same (io_nodes, size_mb) point; shuffle+rle must
# reduce wire bytes, disk bytes and elapsed against none.
NONE_JSON="$OUT_DIR/BENCH_fig4_codec_none.json"
CODED_JSON="$OUT_DIR/BENCH_fig4_codec_shuffle_rle.json"
"$BIN" --quick --codec=none --json_out="$NONE_JSON" > /dev/null
"$BIN" --quick --codec=shuffle+rle --json_out="$CODED_JSON" > /dev/null

first_field() {  # first_field FILE KEY -> first numeric value of "KEY":
  sed -n "s/.*\"$2\":\([0-9.eE+-]*\).*/\1/p" "$1" | head -n 1
}

for key in elapsed_s wire_bytes_sent disk_bytes_written; do
  none_v="$(first_field "$NONE_JSON" "$key")"
  coded_v="$(first_field "$CODED_JSON" "$key")"
  if [ -z "$none_v" ] || [ -z "$coded_v" ]; then
    echo "bench.sh: ABLATION — missing $key in ablation JSON" >&2
    fail=1
  elif ! awk -v a="$coded_v" -v b="$none_v" 'BEGIN{exit !(a < b)}'; then
    echo "bench.sh: ABLATION — $key not improved (none=$none_v, shuffle+rle=$coded_v)" >&2
    fail=1
  fi
done

[ "$fail" -eq 0 ] || exit 1

# --- shard store x backend ----------------------------------------------
# bench_shard_backend writes labeled rows (schema_version 4): the same
# write collective over {flat, sharded} x {posix, objectstore}. Two
# acceptance bars guard the shard subsystem:
#   1. object store: the advisor-chosen shard size beats the naive
#      one-object-per-sub-chunk mapping by >= 2x elapsed;
#   2. posix: the sharded layout stays within 5% of the flat baseline.
SHARD_BIN="$BUILD_DIR/bench/bench_shard_backend"
SHARD_JSON="$OUT_DIR/BENCH_shard_backend.json"
if [ ! -x "$SHARD_BIN" ]; then
  echo "bench.sh: missing $SHARD_BIN (build the repo first)" >&2
  exit 1
fi
"$SHARD_BIN" --quick --json_out="$SHARD_JSON"

row_elapsed() {  # row_elapsed FILE LABEL -> that row's "elapsed_s" value
  # `label` precedes the row's only nested object (`spans`), so after
  # splitting on '{' each row's scalars and label share one line.
  tr '{' '\n' < "$1" | grep -F "\"label\":\"$2\"" \
    | sed -n 's/.*"elapsed_s":\([0-9.eE+-]*\).*/\1/p' | head -n 1
}

flat_v="$(row_elapsed "$SHARD_JSON" "posix flat")"
sharded_v="$(row_elapsed "$SHARD_JSON" "posix sharded advisor")"
naive_v="$(row_elapsed "$SHARD_JSON" "object per-subchunk")"
advised_v="$(row_elapsed "$SHARD_JSON" "object advisor")"
for v in "$flat_v" "$sharded_v" "$naive_v" "$advised_v"; do
  if [ -z "$v" ]; then
    echo "bench.sh: SHARD — missing labeled row in $SHARD_JSON" >&2
    exit 1
  fi
done
if ! awk -v naive="$naive_v" -v adv="$advised_v" \
    'BEGIN{exit !(naive >= 2.0 * adv)}'; then
  echo "bench.sh: SHARD — advisor not >=2x vs per-subchunk objects" \
       "(per-subchunk=$naive_v, advisor=$advised_v)" >&2
  fail=1
fi
if ! awk -v flat="$flat_v" -v sh="$sharded_v" \
    'BEGIN{exit !(sh <= 1.05 * flat)}'; then
  echo "bench.sh: SHARD — posix sharded not within 5% of flat" \
       "(flat=$flat_v, sharded=$sharded_v)" >&2
  fail=1
fi

[ "$fail" -eq 0 ] || exit 1

# --- rank-scheduler scale bar --------------------------------------------
# The fig4 workload at 1024 total ranks must complete under
# --sched=fiber (docs/SCHEDULER.md). bench_scale_ranks records the
# backend that actually ran in every row (v5 sched_backend) — a build
# without fiber support falls back to the thread backend and says so,
# which this stage tolerates; what it does NOT tolerate is the 1024-rank
# point failing to finish or its row going missing.
SCALE_BIN="$BUILD_DIR/bench/bench_scale_ranks"
SCALE_JSON="$OUT_DIR/BENCH_scale_ranks.json"
if [ ! -x "$SCALE_BIN" ]; then
  echo "bench.sh: missing $SCALE_BIN (build the repo first)" >&2
  exit 1
fi
"$SCALE_BIN" --ranks=1024 --sched=fiber --json_out="$SCALE_JSON"
for key in '"ranks":1024' '"sched_backend":'; do
  if ! grep -qF "$key" "$SCALE_JSON"; then
    echo "bench.sh: SCALE — missing $key in $SCALE_JSON" >&2
    fail=1
  fi
done
scale_v="$(first_field "$SCALE_JSON" elapsed_s)"
if [ -z "$scale_v" ]; then
  echo "bench.sh: SCALE — missing elapsed_s in $SCALE_JSON" >&2
  fail=1
fi

[ "$fail" -eq 0 ] || exit 1
echo "bench.sh OK: $JSON $TRACE $NONE_JSON $CODED_JSON $SHARD_JSON $SCALE_JSON"
