// Quickstart: the smallest complete Panda program.
//
// Eight compute nodes hold a 64x64x64 double array as BLOCK,BLOCK,BLOCK
// over a 2x2x2 mesh; two i/o nodes store it in traditional order
// (BLOCK,*,*). We write it collectively, clobber memory, read it back
// collectively, and check the round trip — on real files under
// ./panda_quickstart_data/.
//
//   ./examples/quickstart [--dir=PATH]
#include <cstdio>
#include <cstring>

#include "panda/panda.h"
#include "util/options.h"

using namespace panda;

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string dir = opts.GetString("dir", "panda_quickstart_data");
  opts.CheckAllConsumed();

  const int kClients = 8;
  const int kServers = 2;
  const World world{kClients, kServers};
  Machine machine =
      Machine::WithPosixFs(kClients, kServers, Sp2Params::Nas(), dir);

  bool ok = true;
  machine.Run(
      // --- compute nodes (Panda clients) ---
      [&](Endpoint& ep, int client_index) {
        ArrayLayout memory("memory layout", {2, 2, 2});
        ArrayLayout disk("disk layout", {kServers});
        Array temperature("temperature", {64, 64, 64}, sizeof(double),
                          memory, {BLOCK, BLOCK, BLOCK},
                          disk, {BLOCK, NONE, NONE});
        temperature.BindClient(client_index);

        // Fill this node's block with values derived from coordinates.
        auto data = temperature.local_as<double>();
        const Region& cell = temperature.local_region();
        Index off = Index::Zeros(3);
        Shape ext = cell.extent();
        size_t n = 0;
        do {
          data[n++] = static_cast<double>((cell.lo()[0] + off[0]) * 1e6 +
                                          (cell.lo()[1] + off[1]) * 1e3 +
                                          (cell.lo()[2] + off[2]));
        } while (NextIndexRowMajor(ext, off));

        PandaClient client(ep, world, machine.params());
        client.WriteArray(temperature);

        // Clobber, then restore through a collective read.
        std::memset(temperature.local_data().data(), 0,
                    temperature.local_data().size());
        client.ReadArray(temperature);

        // Verify.
        off = Index::Zeros(3);
        n = 0;
        do {
          const double want =
              static_cast<double>((cell.lo()[0] + off[0]) * 1e6 +
                                  (cell.lo()[1] + off[1]) * 1e3 +
                                  (cell.lo()[2] + off[2]));
          if (data[n++] != want) ok = false;
        } while (NextIndexRowMajor(ext, off));

        if (client_index == 0) client.Shutdown();
      },
      // --- i/o nodes (Panda servers) ---
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params());
      });

  std::printf("quickstart: wrote and re-read a 2 MB array across %d compute "
              "nodes and %d i/o nodes\n",
              kClients, kServers);
  std::printf("  files: %s/ionode{0,1}/temperature.dat.{0,1}\n", dir.c_str());
  std::printf("  round trip: %s\n", ok ? "byte-exact" : "MISMATCH");
  return ok ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
