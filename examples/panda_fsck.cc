// panda_fsck: consistency checker for Panda data directories.
//
// Given the i/o-node directories and a group's schema file, verifies
// that every per-server data file exists with exactly the size the
// schemas dictate (timestep streams: timesteps x segment; checkpoints:
// one segment) — the check an operator runs before trusting a restart.
//
// With --verify_checksums, additionally re-reads every sub-chunk of
// every file and verifies it against its CRC32C sidecar (`F.crc`, see
// src/panda/integrity.h). Files without a sidecar (written with
// disk_checksums off, or by sequential tools) are reported as
// unverified, not failed.
//
// With --verify_journal, additionally replays every write-ahead
// journal record (`F.wal`, see src/panda/journal.h) against the plan
// and the data file: framing, commit completeness (modulo one torn
// trailing record — the legitimate signature of a crash mid-append),
// and data CRCs.
//
// With --verify_frames, additionally audits codec-encoded arrays: every
// frame-directory record (`F.fdx`, see src/codec/frame.h) is
// cross-checked against the plan and every sub-chunk slot is proven to
// decode back to its plan size (torn directory records fall back to the
// slot's self-describing header). Arrays written with codec=none store
// raw bytes and are skipped.
//
// With --verify_shards, additionally audits sharded layouts: every
// shard's self-describing table (`F.shard.N`, see src/store/) is
// cross-checked against the plan, every sub-chunk is proven to decode
// (torn tables fall back to the slots' frame headers and are counted as
// healed, not fatal), and decoded bytes are compared against the CRC
// sidecar when one exists.
//
// Groups written through the sharded store carry a
// `__panda.shard_bytes` attribute; fsck then expects `F.shard.N` files
// (each at least its data region plus table) instead of flat files,
// and the basic sweep sizes each shard from the recorded granularity.
//
// Groups written in degraded mode (after a server crash-stop) carry a
// `__panda.dead_servers` attribute; fsck honours it everywhere: dead
// servers' files are skipped as lost, survivors are expected to hold
// their own chunks plus the adopted ones appended past their original
// segment.
//
//   ./examples/panda_fsck --root=DIR --io_nodes=N --schema=FILE
//       [--verify_checksums] [--verify_journal] [--verify_frames]
//       [--verify_shards]
#include <cstdio>

#include "panda/panda.h"
#include "util/options.h"
#include "util/units.h"

using namespace panda;

namespace {

struct CheckResult {
  int checked = 0;
  int missing = 0;
  int wrong_size = 0;
};

void CheckFile(FileSystem& fs, const std::string& path,
               std::int64_t expected_bytes, bool framed, CheckResult& result) {
  ++result.checked;
  if (!fs.Exists(path)) {
    std::printf("  MISSING   %-40s (expected %s)\n", path.c_str(),
                FormatBytes(expected_bytes).c_str());
    ++result.missing;
    return;
  }
  const std::int64_t size = fs.Open(path, OpenMode::kRead)->Size();
  // Codec-encoded arrays legitimately end short: the file's final
  // sub-chunk may be stored as a frame smaller than its plan slot.
  // --verify_frames proves every slot decodes to its full plan size.
  const bool ok = framed ? (size > 0 && size <= expected_bytes)
                         : size == expected_bytes;
  if (!ok) {
    std::printf("  BAD SIZE  %-40s (%s, expected %s%s)\n", path.c_str(),
                FormatBytes(size).c_str(),
                framed ? "at most " : "",
                FormatBytes(expected_bytes).c_str());
    ++result.wrong_size;
    return;
  }
  std::printf("  ok        %-40s %s%s\n", path.c_str(),
              FormatBytes(size).c_str(), framed ? " (framed)" : "");
}

// Sharded layouts: one size check per shard file. A shard holds its
// data region plus a table of its records; codec-encoded slots may
// store fewer bytes than their plan extent, so the floor is what a
// fully raw shard needs and --verify_shards proves the contents.
void CheckShards(FileSystem& fs, const std::string& data_name,
                 const IoPlan& plan, const DegradedLayout& layout, int server,
                 std::int64_t num_segments, std::int64_t shard_bytes,
                 CheckResult& result) {
  const store::ShardLayout shards =
      BuildShardLayout(plan, layout, server, shard_bytes);
  for (std::int64_t seg = 0; seg < num_segments; ++seg) {
    for (std::int64_t local = 0; local < shards.shards_per_segment();
         ++local) {
      const store::ShardSpec& spec = shards.shard(local);
      const std::string path = store::ShardFileName(
          data_name, seg * shards.shards_per_segment() + local);
      const std::int64_t floor_bytes =
          store::ShardFileBytes(spec.data_bytes, spec.num_records);
      ++result.checked;
      if (!fs.Exists(path)) {
        std::printf("  MISSING   %-40s (expected >= %s)\n", path.c_str(),
                    FormatBytes(floor_bytes).c_str());
        ++result.missing;
        continue;
      }
      const std::int64_t size = fs.Open(path, OpenMode::kRead)->Size();
      if (size < floor_bytes) {
        std::printf("  BAD SIZE  %-40s (%s, expected at least %s)\n",
                    path.c_str(), FormatBytes(size).c_str(),
                    FormatBytes(floor_bytes).c_str());
        ++result.wrong_size;
        continue;
      }
      std::printf("  ok        %-40s %s (%lld records)\n", path.c_str(),
                  FormatBytes(size).c_str(),
                  static_cast<long long>(spec.num_records));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opts(argc, argv);
    const std::string root = opts.GetString("root", "panda_simulation_data");
    const int io_nodes = static_cast<int>(opts.GetInt("io_nodes", 2));
    const std::string schema_file =
        opts.GetString("schema", "simulation2.schema");
    const std::int64_t subchunk =
        opts.GetInt("subchunk_bytes", Sp2Params::Nas().subchunk_bytes);
    const bool verify_checksums = opts.GetBool("verify_checksums", false);
    const bool verify_journal = opts.GetBool("verify_journal", false);
    const bool verify_frames = opts.GetBool("verify_frames", false);
    const bool verify_shards = opts.GetBool("verify_shards", false);
    opts.CheckAllConsumed();

    std::vector<std::unique_ptr<PosixFileSystem>> fs;
    for (int s = 0; s < io_nodes; ++s) {
      fs.push_back(std::make_unique<PosixFileSystem>(
          root + "/ionode" + std::to_string(s)));
    }

    const GroupMeta meta = ReadGroupMeta(*fs[0], schema_file);
    std::printf("group '%s': %zu arrays, %lld timesteps, checkpoint %s\n",
                meta.group.c_str(), meta.arrays.size(),
                static_cast<long long>(meta.timesteps),
                meta.has_checkpoint ? "present" : "absent");

    const std::int64_t shard_bytes = ParseShardBytesAttr(meta.attributes);
    if (shard_bytes > 0) {
      std::printf(
          "group written through the sharded store (%s per shard); "
          "expecting F.shard.N files instead of flat segments\n",
          FormatBytes(shard_bytes).c_str());
    }
    const std::vector<int> dead = ParseDeadServersAttr(meta.attributes);
    if (!dead.empty()) {
      std::string who;
      for (const int s : dead) {
        if (!who.empty()) who += ", ";
        who += std::to_string(s);
      }
      std::printf(
          "group committed in degraded mode: io node(s) %s dead; their "
          "files are lost, survivors carry the adopted chunks\n",
          who.c_str());
    }

    CheckResult result;
    for (const ArrayMeta& array : meta.arrays) {
      const IoPlan plan(array, io_nodes, subchunk);
      const DegradedLayout layout = DegradedLayout::Compute(plan, dead);
      for (int s = 0; s < io_nodes; ++s) {
        if (!layout.alive[static_cast<size_t>(s)]) continue;  // lost disk
        const std::int64_t segment = layout.SegmentBytes(s);
        if (segment == 0) continue;  // server stores none of this array
        const bool framed = array.codec != CodecId::kNone;
        if (meta.timesteps > 0) {
          const std::string name =
              DataFileName(meta.group, array.name, Purpose::kTimestep, s);
          if (shard_bytes > 0) {
            CheckShards(*fs[static_cast<size_t>(s)], name, plan, layout, s,
                        meta.timesteps, shard_bytes, result);
          } else {
            CheckFile(*fs[static_cast<size_t>(s)], name,
                      meta.timesteps * segment, framed, result);
          }
        }
        if (meta.has_checkpoint) {
          const std::string name =
              DataFileName(meta.group, array.name, Purpose::kCheckpoint, s);
          if (shard_bytes > 0) {
            CheckShards(*fs[static_cast<size_t>(s)], name, plan, layout, s,
                        /*num_segments=*/1, shard_bytes, result);
          } else {
            CheckFile(*fs[static_cast<size_t>(s)], name, segment, framed,
                      result);
          }
        }
      }
    }
    std::printf("%d files checked: %d missing, %d with wrong sizes\n",
                result.checked, result.missing, result.wrong_size);

    bool checksums_clean = true;
    if (verify_checksums) {
      std::vector<FileSystem*> fs_ptrs;
      for (const auto& f : fs) fs_ptrs.push_back(f.get());
      std::string log;
      const IntegrityReport report =
          VerifyGroupChecksums(fs_ptrs, meta, subchunk, &log);
      if (!log.empty()) std::printf("%s", log.c_str());
      std::printf(
          "checksums: %lld files verified (%lld without sidecar), %lld "
          "sub-chunks checked, %lld crc mismatches, %lld framing "
          "mismatches\n",
          static_cast<long long>(report.files_checked),
          static_cast<long long>(report.files_without_sidecar),
          static_cast<long long>(report.subchunks_checked),
          static_cast<long long>(report.crc_mismatches),
          static_cast<long long>(report.framing_mismatches));
      checksums_clean = report.Clean();
    }

    bool journal_clean = true;
    if (verify_journal) {
      std::vector<FileSystem*> fs_ptrs;
      for (const auto& f : fs) fs_ptrs.push_back(f.get());
      std::string log;
      const JournalReport report =
          VerifyGroupJournal(fs_ptrs, meta, subchunk, &log);
      if (!log.empty()) std::printf("%s", log.c_str());
      std::printf(
          "journal: %lld files verified (%lld without journal), %lld "
          "records checked, %lld missing, %lld torn, %lld framing "
          "mismatches, %lld data mismatches, %lld gc'd, %lld epoch "
          "mismatches\n",
          static_cast<long long>(report.files_checked),
          static_cast<long long>(report.files_without_journal),
          static_cast<long long>(report.records_checked),
          static_cast<long long>(report.records_missing),
          static_cast<long long>(report.torn_records),
          static_cast<long long>(report.framing_mismatches),
          static_cast<long long>(report.data_mismatches),
          static_cast<long long>(report.records_gced),
          static_cast<long long>(report.epoch_mismatches));
      journal_clean = report.Clean();
    }

    bool frames_clean = true;
    if (verify_frames) {
      std::vector<FileSystem*> fs_ptrs;
      for (const auto& f : fs) fs_ptrs.push_back(f.get());
      std::string log;
      const FrameReport report =
          VerifyGroupFrames(fs_ptrs, meta, subchunk, &log);
      if (!log.empty()) std::printf("%s", log.c_str());
      std::printf(
          "frames: %lld files verified (%lld without directory), %lld "
          "sub-chunks checked (%lld encoded), %lld torn directory records, "
          "%lld framing mismatches, %lld decode failures\n",
          static_cast<long long>(report.files_checked),
          static_cast<long long>(report.files_without_directory),
          static_cast<long long>(report.subchunks_checked),
          static_cast<long long>(report.frames_encoded),
          static_cast<long long>(report.torn_records),
          static_cast<long long>(report.framing_mismatches),
          static_cast<long long>(report.decode_failures));
      frames_clean = report.Clean();
    }

    bool shards_clean = true;
    if (verify_shards) {
      std::vector<FileSystem*> fs_ptrs;
      for (const auto& f : fs) fs_ptrs.push_back(f.get());
      std::string log;
      const ShardReport report = VerifyGroupShards(fs_ptrs, meta, subchunk,
                                                   &log);
      if (!log.empty()) std::printf("%s", log.c_str());
      std::printf(
          "shards: %lld files checked (%lld missing, %lld short), %lld torn "
          "tables, %lld invalid entries, %lld sub-chunks checked (%lld "
          "healed), %lld decode failures, %lld crc mismatches, %lld framing "
          "mismatches\n",
          static_cast<long long>(report.files_checked),
          static_cast<long long>(report.files_missing),
          static_cast<long long>(report.size_mismatches),
          static_cast<long long>(report.tables_torn),
          static_cast<long long>(report.entries_invalid),
          static_cast<long long>(report.subchunks_checked),
          static_cast<long long>(report.healed_slots),
          static_cast<long long>(report.decode_failures),
          static_cast<long long>(report.crc_mismatches),
          static_cast<long long>(report.framing_mismatches));
      shards_clean = report.Clean();
    }
    return (result.missing + result.wrong_size) == 0 && checksums_clean &&
                   journal_clean && frames_clean && shards_clean
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "panda_fsck: %s\n", e.what());
    return 2;
  }
}
