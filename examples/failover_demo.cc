// Failover demo: kill one i/o node mid-write under a lossy wire.
//
// Four compute nodes stream two timesteps of a 128x128 double array to
// three i/o nodes, checkpoint, and restart — while the wire drops,
// duplicates and reorders messages, and i/o node 1 is crash-stopped a
// few sends into the first collective. The survivors detect the death
// via expired heartbeat leases, adopt the dead node's chunks (appended
// past their own file segments), and finish the write in degraded
// mode; every later collective runs on the two survivors. All reads
// are verified bit-exact against what was written.
//
// The output directory is real (PosixFileSystem), so the offline
// checker can audit the degraded group afterwards:
//
//   ./examples/failover_demo [--dir=PATH] [--backend=posix|objectstore]
//   ./examples/panda_fsck --root=PATH --io_nodes=3 --schema=demo.schema
//       --subchunk_bytes=8192 --verify_checksums --verify_journal
//
// fsck reads the `__panda.dead_servers` attribute from demo.schema,
// skips the dead node's stale files as lost, and verifies the
// survivors' files — adopted chunks included — against their CRC32C
// sidecars and write-ahead journals.
//
// --backend=objectstore reruns the same fault script against simulated
// i/o nodes fronting an object store (src/iosim/object_store.h): data
// moves through the sharded chunk store (src/store/) as whole-object
// PUT/GET shards, sized by AdviseShardSize, and the degraded group is
// audited in-process with VerifyGroupShards instead of offline fsck.
#include <cstdio>
#include <cstring>

#include "panda/panda.h"
#include "trace/export.h"
#include "util/options.h"
#include "util/units.h"

using namespace panda;

namespace {

// Row-major global offset of index `idx` in an array of shape `shape`.
std::int64_t OffsetOf(const Shape& shape, const Index& idx) {
  std::int64_t offset = 0;
  for (int d = 0; d < shape.rank(); ++d) {
    offset = offset * shape[d] + idx[d];
  }
  return offset;
}

// Coordinate-derived fill so every element's value is independent of
// which rank held it or which i/o node stored it.
void Fill(Array& array, double salt) {
  auto data = array.local_as<double>();
  const Region& cell = array.local_region();
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    data[n++] = salt * 1e6 + static_cast<double>(OffsetOf(array.shape(), g));
  } while (NextIndexRowMajor(ext, off));
}

std::int64_t Mismatches(Array& array, double salt) {
  auto data = array.local_as<double>();
  const Region& cell = array.local_region();
  Index off = Index::Zeros(cell.rank());
  Shape ext = cell.extent();
  size_t n = 0;
  std::int64_t bad = 0;
  do {
    Index g = cell.lo();
    for (int d = 0; d < cell.rank(); ++d) g[d] += off[d];
    const double want =
        salt * 1e6 + static_cast<double>(OffsetOf(array.shape(), g));
    if (data[n++] != want) ++bad;
  } while (NextIndexRowMajor(ext, off));
  return bad;
}

int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string dir = opts.GetString("dir", "panda_failover_data");
  // Observability outputs (docs/OBSERVABILITY.md): Chrome trace_event
  // JSON and merged metrics JSON of the whole faulty run.
  const std::string trace_out = opts.GetString("trace_out", "");
  const std::string metrics_out = opts.GetString("metrics_out", "");
  const std::string backend = opts.GetString("backend", "posix");
  opts.CheckAllConsumed();
  PANDA_REQUIRE(backend == "posix" || backend == "objectstore",
                "--backend must be posix or objectstore, got '%s'",
                backend.c_str());
  const bool object_store = backend == "objectstore";

  const int kClients = 4;
  const int kServers = 3;
  const World world{kClients, kServers};

  Sp2Params params = Sp2Params::Nas();
  params.subchunk_bytes = 8192;  // several piece rounds per chunk
  Machine machine =
      object_store
          ? Machine::SimulatedObjectStore(kClients, kServers, params,
                                          ObjectStoreModel{},
                                          /*store_data=*/true,
                                          /*timing_only=*/false)
          : Machine::WithPosixFs(kClients, kServers, params, dir);

  // A bounded adversary on every link: 5% of messages dropped, 5%
  // duplicated, 5% delivered out of order. The reliable-delivery layer
  // (sequence numbers + receiver-driven retransmission) hides all of it.
  LossSpec loss;
  loss.seed = 2026;
  loss.drop_prob = 0.05;
  loss.dup_prob = 0.05;
  loss.reorder_prob = 0.05;
  machine.SetLoss(loss);

  // Heartbeat leases: a peer that misses 3 beats at 10 ms is declared
  // dead, and every rank blocked on it unwinds with PeerDeadError.
  machine.SetHeartbeat(HeartbeatConfig{true, 1.0e-2, 3});

  // The fault: i/o node 1 crash-stops at its 4th send after arming —
  // mid-gather of its first chunk of timestep 0.
  machine.KillServerAfterSends(/*server_index=*/1, /*after_more_sends=*/3);

  if (!trace_out.empty() || !metrics_out.empty()) machine.EnableTrace();

  ServerOptions options;
  options.failover = true;        // degraded-mode re-planning armed
  options.disk_checksums = true;  // CRC32C sidecars (F.crc)
  options.journal = true;         // write-ahead chunk journal (F.wal)
  options.robustness = &machine.robustness();
  if (object_store) {
    // 128x128 doubles over 3 i/o nodes: size shards for whole-object
    // PUT round trips rather than the posix default flat layout.
    const std::int64_t segment_est = 128 * 128 * 8 / kServers;
    options.backend = store::StoreBackend::kObjectStore;
    options.shard_bytes = AdviseShardSize(store::StoreBackend::kObjectStore,
                                          segment_est, params.subchunk_bytes);
  }

  std::int64_t mismatches = 0;
  machine.Run(
      [&](Endpoint& ep, int client_index) {
        ArrayLayout memory("m", {2, 2});
        Array state("state", {128, 128}, sizeof(double), memory,
                    {BLOCK, BLOCK}, memory, {BLOCK, BLOCK});
        state.BindClient(client_index);
        PandaClient client(ep, world, machine.params());
        client.set_robustness(&machine.robustness());
        client.set_failover(true);
        ArrayGroup group("demo", "demo.schema");
        group.Include(&state);

        Fill(state, 1);
        group.Timestep(client);  // i/o node 1 dies inside this one
        Fill(state, 2);
        group.Timestep(client);  // degraded from the start
        Fill(state, 7);
        group.Checkpoint(client);

        Fill(state, 999);  // scribble, then restore from the checkpoint
        group.Restart(client);
        mismatches += Mismatches(state, 7);
        group.ReadTimestep(client, 0);
        mismatches += Mismatches(state, 1);
        group.ReadTimestep(client, 1);
        mismatches += Mismatches(state, 2);

        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params(), options);
      });

  const MachineReport report = Snapshot(machine);
  if (!trace_out.empty()) {
    PANDA_REQUIRE(trace::WriteTextFile(trace_out, MachineTraceJson(machine)),
                  "cannot write trace '%s'", trace_out.c_str());
    std::printf("# wrote %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    PANDA_REQUIRE(
        trace::WriteTextFile(metrics_out, trace::MetricsJson(report.metrics)),
        "cannot write metrics '%s'", metrics_out.c_str());
    std::printf("# wrote %s\n", metrics_out.c_str());
  }
  const GroupMeta meta = ReadGroupMeta(machine.server_fs(0), "demo.schema");
  const std::vector<int> dead = ParseDeadServersAttr(meta.attributes);
  std::string dead_csv;
  for (const int s : dead) {
    if (!dead_csv.empty()) dead_csv += ",";
    dead_csv += std::to_string(s);
  }

  std::printf("failover demo: %d compute nodes, %d i/o nodes, lossy wire\n",
              kClients, kServers);
  std::printf(
      "  wire faults injected: %lld drops, %lld dups, %lld reorders "
      "(all healed: %lld retransmits, %lld dups suppressed)\n",
      static_cast<long long>(report.transport.drops_injected),
      static_cast<long long>(report.transport.dups_injected),
      static_cast<long long>(report.transport.reorders_injected),
      static_cast<long long>(report.transport.retransmits),
      static_cast<long long>(report.transport.dups_suppressed));
  std::printf(
      "  crash-stop: %lld i/o node(s) killed, %lld peer(s) declared dead "
      "by heartbeat lease\n",
      static_cast<long long>(report.transport.ranks_killed),
      static_cast<long long>(report.transport.peers_declared_dead));
  std::printf(
      "  failover: %lld re-plan(s) committed, %lld chunk(s) adopted by "
      "survivors, %lld journal records written\n",
      static_cast<long long>(report.robustness.failovers_completed),
      static_cast<long long>(report.robustness.chunks_adopted),
      static_cast<long long>(report.robustness.journal_records_written));
  std::printf("  demo.schema records dead i/o node(s): {%s}\n",
              dead_csv.c_str());
  std::printf("  restart + 2 timestep reads: %s\n",
              mismatches == 0 ? "bit-exact" : "MISMATCH");

  bool shards_clean = true;
  if (object_store) {
    // The object store is simulated in-memory, so the shard audit runs
    // in-process instead of via offline fsck.
    std::vector<FileSystem*> fs_ptrs;
    for (int s = 0; s < kServers; ++s) fs_ptrs.push_back(&machine.server_fs(s));
    std::string log;
    const ShardReport shard_report =
        VerifyGroupShards(fs_ptrs, meta, params.subchunk_bytes, &log);
    if (!log.empty()) std::printf("%s", log.c_str());
    std::printf(
        "  shard audit (object store, %s shards): %lld shard files, %lld "
        "sub-chunks, %s\n",
        FormatBytes(ParseShardBytesAttr(meta.attributes)).c_str(),
        static_cast<long long>(shard_report.files_checked),
        static_cast<long long>(shard_report.subchunks_checked),
        shard_report.Clean() ? "clean" : "CORRUPT");
    shards_clean = shard_report.Clean() && shard_report.subchunks_checked > 0;
  } else {
    std::printf(
        "audit the degraded directory offline with:\n"
        "  ./examples/panda_fsck --root=%s --io_nodes=%d --schema=demo.schema "
        "--subchunk_bytes=%lld --verify_checksums --verify_journal\n",
        dir.c_str(), kServers,
        static_cast<long long>(params.subchunk_bytes));
  }

  const bool ok = mismatches == 0 && dead == std::vector<int>{1} &&
                  report.robustness.failovers_completed >= 1 &&
                  report.robustness.chunks_adopted > 0 &&
                  report.robustness.collectives_aborted == 0 &&
                  report.transport.ranks_killed == 1 && shards_clean;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
