// Figure 2 replica: a timestep simulation using Panda's high-level
// collective interface.
//
// Three arrays (temperature, pressure, density) are distributed over 8
// compute nodes; the simulation runs timesteps, outputs all three arrays
// with a single collective timestep() call each iteration, checkpoints
// halfway, then simulates a crash and restarts from the checkpoint.
//
//   ./examples/simulation_timestep [--dir=PATH] [--timesteps=N]
//       [--disk_checksums]
#include <cmath>
#include <cstdio>

#include "panda/panda.h"
#include "util/options.h"

using namespace panda;

namespace {

// A toy heat-diffusion step: every element relaxes toward the mean of
// itself and a constant source term. (The physics is irrelevant; the
// i/o pattern is the paper's.)
void ComputeNextTimestep(Array& a, int step) {
  auto data = a.local_as<double>();
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.5 * data[i] + 0.25 * std::sin(0.01 * step + 0.001 * i);
  }
}

double Checksum(const Array& a) {
  auto raw = a.local_data();
  const auto* d = reinterpret_cast<const double*>(raw.data());
  double sum = 0;
  for (size_t i = 0; i < raw.size() / sizeof(double); ++i) sum += d[i];
  return sum;
}

}  // namespace

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string dir = opts.GetString("dir", "panda_simulation_data");
  const int timesteps = static_cast<int>(opts.GetInt("timesteps", 10));
  // With --disk_checksums the i/o nodes also maintain CRC32C sidecar
  // files, which `panda_fsck --verify_checksums` can audit offline.
  const bool disk_checksums = opts.GetBool("disk_checksums", false);
  opts.CheckAllConsumed();

  const World world{8, 2};
  Machine machine = Machine::WithPosixFs(8, 2, Sp2Params::Nas(), dir);

  machine.Run(
      [&](Endpoint& ep, int client_index) {
        // --- Figure 2's declarations, verbatim in spirit ---
        ArrayLayout memory("memory layout", {4, 2});
        ArrayLayout disk("disk layout", {2});
        Array temperature("temperature", {64, 64, 16}, sizeof(double),
                          memory, {BLOCK, BLOCK, NONE},
                          disk, {BLOCK, NONE, NONE});
        Array pressure("pressure", {32, 32, 32}, sizeof(double),
                       memory, {BLOCK, BLOCK, NONE},
                       disk, {BLOCK, NONE, NONE});
        Array density("density", {32, 32, 32}, sizeof(double),
                      memory, {BLOCK, BLOCK, NONE},
                      disk, {BLOCK, NONE, NONE});
        for (Array* a : {&temperature, &pressure, &density}) {
          a->BindClient(client_index);
        }

        PandaClient client(ep, world, machine.params());
        ArrayGroup simulation("Sim2", "simulation2.schema");
        simulation.Include(&temperature);
        simulation.Include(&pressure);
        simulation.Include(&density);

        // --- Figure 2's main loop ---
        double checkpoint_checksum = 0;
        for (int i = 0; i < timesteps; ++i) {
          for (Array* a : {&temperature, &pressure, &density}) {
            ComputeNextTimestep(*a, i);
          }
          simulation.Timestep(client);  // one collective, three arrays
          if (i == timesteps / 2) {
            simulation.Checkpoint(client);
            checkpoint_checksum = Checksum(temperature);
          }
        }

        // --- crash & recover ---
        for (Array* a : {&temperature, &pressure, &density}) {
          std::fill(a->local_data().begin(), a->local_data().end(),
                    std::byte{0});
        }
        simulation.Restart(client);
        const bool recovered =
            Checksum(temperature) == checkpoint_checksum;

        if (client_index == 0) {
          std::printf("simulation: %d timesteps written (%lld recorded), "
                      "checkpoint restored %s\n",
                      timesteps,
                      static_cast<long long>(simulation.timesteps_written()),
                      recovered ? "exactly" : "WRONG");
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int server_index) {
        ServerOptions server_options;
        server_options.disk_checksums = disk_checksums;
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params(), server_options);
      });

  // The master server maintained the group's schema file; show it.
  const GroupMeta meta = ReadGroupMeta(machine.server_fs(0),
                                       "simulation2.schema");
  std::printf("schema file: group '%s', %lld timesteps, checkpoint at "
              "timestep %lld, %zu arrays:\n",
              meta.group.c_str(), static_cast<long long>(meta.timesteps),
              static_cast<long long>(meta.checkpoint_seq),
              meta.arrays.size());
  for (const ArrayMeta& a : meta.arrays) {
    std::printf("  %-12s %s elem=%lldB disk=%s\n", a.name.c_str(),
                a.memory.array_shape().ToString().c_str(),
                static_cast<long long>(a.elem_size),
                a.disk.ToString().c_str());
  }
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
