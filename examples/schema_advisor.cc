// Schema advisor: pick the on-disk schema before buying machine time.
//
// Given the application's in-memory decomposition and the machine, the
// advisor enumerates disk schemas, prices each with the analytic cost
// model, and ranks them — trading producer write bandwidth against
// consumer needs (traditional order for sequential post-processing).
//
//   ./examples/schema_advisor [--size_mb=N] [--io_nodes=N]
#include <cstdio>

#include "panda/panda.h"
#include "util/options.h"
#include "util/units.h"

using namespace panda;

namespace {

std::string SchemaLabel(const Schema& schema) {
  std::string out = "(";
  for (size_t d = 0; d < schema.dists().size(); ++d) {
    if (d > 0) out += ",";
    out += DistName(schema.dists()[d].kind);
  }
  out += ") over " + schema.mesh().dims().ToString();
  return out;
}

}  // namespace

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::int64_t size_mb = opts.GetInt("size_mb", 64);
  const int io_nodes = static_cast<int>(opts.GetInt("io_nodes", 4));
  opts.CheckAllConsumed();

  ArrayMeta meta;
  meta.name = "field";
  meta.elem_size = 4;
  meta.memory = Schema({size_mb, 512, 512}, Mesh(Shape{2, 2, 2}),
                       {BLOCK, BLOCK, BLOCK});
  meta.disk = meta.memory;
  const World world{8, io_nodes};
  const Sp2Params params = Sp2Params::Nas();

  std::printf("# Disk-schema advice: %lld MB array, 8 compute nodes "
              "(2x2x2), %d i/o nodes\n",
              static_cast<long long>(size_mb), io_nodes);
  std::printf("%-28s %-12s %-12s %-12s %-12s\n", "disk_schema", "write_s",
              "read_s", "objective_s", "traditional");
  for (const SchemaCandidate& cand :
       RankDiskSchemas(meta, world, params)) {
    std::printf("%-28s %-12.3f %-12.3f %-12.3f %-12s\n",
                SchemaLabel(cand.disk).c_str(), cand.write_cost.elapsed_s,
                cand.read_cost.elapsed_s, cand.objective_s,
                cand.traditional_order ? "yes" : "no");
  }

  AdvisorOptions consumable;
  consumable.require_traditional_order = true;
  const SchemaCandidate best =
      AdviseDiskSchema(meta, world, params, consumable);
  std::printf("\nBest consumable (traditional-order) schema: %s\n",
              SchemaLabel(best.disk).c_str());
  std::printf("Predicted write %.3f s, read %.3f s — the files concatenate "
              "to a single\nrow-major array for sequential consumers.\n",
              best.write_cost.elapsed_s, best.read_cost.elapsed_s);
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
