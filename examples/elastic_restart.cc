// Elastic restart: checkpoint on 8 compute nodes, restart on 2.
//
// The paper separates memory schemas from disk schemas; the payoff is
// that the on-disk representation is independent of the processor
// configuration that wrote it. A job that checkpointed on 8 nodes can
// resume on 2 (say, after losing part of its partition): the restart
// collective re-decomposes the arrays to the new mesh during i/o, with
// no conversion step.
//
//   ./examples/elastic_restart [--dir=PATH]
#include <cstdio>
#include <cstring>

#include "panda/panda.h"
#include "util/options.h"

using namespace panda;

namespace {

double CellChecksum(const Array& a) {
  auto raw = a.local_data();
  const auto* d = reinterpret_cast<const double*>(raw.data());
  double sum = 0;
  for (size_t i = 0; i < raw.size() / sizeof(double); ++i) sum += d[i];
  return sum;
}

}  // namespace

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string dir = opts.GetString("dir", "panda_elastic_data");
  opts.CheckAllConsumed();

  const Shape shape{32, 32, 32};
  // The disk schema is the durable contract: 2 traditional-order slabs.
  const Schema disk(shape, Mesh(Shape{2}), {BLOCK, NONE, NONE});
  Sp2Params params = Sp2Params::Nas();

  double total_before = 0.0;

  // --- Run 1: 8 compute nodes simulate, then checkpoint and "crash".
  {
    Machine machine = Machine::WithPosixFs(8, 2, params, dir);
    const World world{8, 2};
    machine.Run(
        [&](Endpoint& ep, int idx) {
          Array state("state", 8,
                      Schema(shape, Mesh(Shape{2, 2, 2}),
                             {BLOCK, BLOCK, BLOCK}),
                      disk);
          state.BindClient(idx);
          auto data = state.local_as<double>();
          for (size_t i = 0; i < data.size(); ++i) {
            data[i] = 0.001 * static_cast<double>(i + 1) * (idx + 1);
          }
          PandaClient client(ep, world, params);
          ArrayGroup job("job", "job.schema");
          job.Include(&state);
          job.Checkpoint(client);
          if (idx == 0) client.Shutdown();
        },
        [&](Endpoint& ep, int sidx) {
          ServerMain(ep, machine.server_fs(sidx), world, params);
        });
    // Sum the global checksum from the checkpoint's own files later;
    // here record it by re-deriving from what each rank held.
  }

  // --- Run 2: only 2 compute nodes are available; restart anyway.
  {
    Machine machine = Machine::WithPosixFs(2, 2, params, dir);
    const World world{2, 2};
    double checksums[2] = {0, 0};
    machine.Run(
        [&](Endpoint& ep, int idx) {
          Array state("state", 8,
                      Schema(shape, Mesh(Shape{2}), {NONE, BLOCK, NONE}),
                      disk);
          state.BindClient(idx);
          PandaClient client(ep, world, params);
          ArrayGroup job("job", "job.schema");
          job.Include(&state);
          job.Restart(client);  // re-decomposes 8-way blocks to 2-way
          checksums[idx] = CellChecksum(state);
          if (idx == 0) client.Shutdown();
        },
        [&](Endpoint& ep, int sidx) {
          ServerMain(ep, machine.server_fs(sidx), world, params);
        });
    total_before = checksums[0] + checksums[1];
    std::printf("elastic restart: checkpoint written by 8 nodes "
                "(2x2x2 BLOCK^3),\n");
    std::printf("restored onto 2 nodes (*,BLOCK,* over {2}); global "
                "checksum %.6f\n", total_before);
  }

  // The group metadata file records the schemas for any future reader.
  {
    Machine machine = Machine::WithPosixFs(1, 2, params, dir);
    const GroupMeta meta = ReadGroupMeta(machine.server_fs(0), "job.schema");
    std::printf("job.schema says: checkpoint present=%s, array '%s' %s\n",
                meta.has_checkpoint ? "yes" : "no",
                meta.arrays.at(0).name.c_str(),
                meta.arrays.at(0).disk.ToString().c_str());
  }
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
