// Out-of-core processing with Panda (the [Kotz95b] motivation).
//
// A dataset larger than the compute nodes' memory is produced and then
// analyzed slab by slab: the producer streams slabs to the i/o nodes as
// timestep segments; the analyzer re-reads one slab at a time, keeping
// only one slab in memory per node, and reduces a global statistic.
// Every byte still moves through server-directed collective i/o.
//
//   ./examples/out_of_core_scan [--dir=PATH] [--slabs=N]
#include <cmath>
#include <cstdio>

#include "panda/panda.h"
#include "util/options.h"
#include "util/units.h"

using namespace panda;

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string dir = opts.GetString("dir", "panda_ooc_data");
  const int slabs = static_cast<int>(opts.GetInt("slabs", 8));
  opts.CheckAllConsumed();

  // Each slab: 32x64x64 doubles = 1 MB. The "dataset" is `slabs` of
  // them — pretend node memory only fits one slab.
  const Shape slab_shape{32, 64, 64};
  const World world{4, 2};
  Machine machine = Machine::WithPosixFs(4, 2, Sp2Params::Nas(), dir);

  double global_sum = 0.0;
  double global_max = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        ArrayLayout memory("m", {2, 2});
        ArrayLayout disk("d", {2});
        Array slab("dataset", slab_shape, sizeof(double), memory,
                   {BLOCK, BLOCK, NONE}, disk, {BLOCK, NONE, NONE});
        slab.BindClient(idx);
        PandaClient client(ep, world, machine.params());
        ArrayGroup stream("ooc", "ooc.schema");
        stream.Include(&slab);

        // --- Producer pass: generate and stream out slab by slab ---
        for (int t = 0; t < slabs; ++t) {
          auto data = slab.local_as<double>();
          for (size_t i = 0; i < data.size(); ++i) {
            data[i] = std::sin(0.001 * static_cast<double>(i + 1) *
                               (t + 1) * (idx + 1));
          }
          stream.Timestep(client);  // slab t -> disk
        }

        // --- Analysis pass: re-read each slab, reduce locally ---
        double local_sum = 0.0;
        double local_max = -1.0;
        for (int t = 0; t < slabs; ++t) {
          stream.ReadTimestep(client, t);
          for (const double v : slab.local_as<double>()) {
            local_sum += v;
            local_max = std::max(local_max, std::abs(v));
          }
        }

        // Reduce across compute nodes with the messaging substrate.
        const Group clients = world.ClientGroup(ep.rank());
        Message partial;
        Encoder enc(partial.header);
        enc.Put<double>(local_sum);
        enc.Put<double>(local_max);
        if (idx != 0) {
          ep.Send(0, kTagApp, std::move(partial));
        } else {
          double sum = local_sum;
          double max = local_max;
          for (int src = 1; src < world.num_clients; ++src) {
            Message m = ep.Recv(src, kTagApp);
            Decoder dec(m.header);
            sum += dec.Get<double>();
            max = std::max(max, dec.Get<double>());
          }
          global_sum = sum;
          global_max = max;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, machine.params());
      });

  const std::int64_t total =
      static_cast<std::int64_t>(slabs) * slab_shape.Volume() * 8;
  std::printf("out-of-core scan: %s dataset processed in %d slabs of %s\n",
              FormatBytes(total).c_str(), slabs,
              FormatBytes(slab_shape.Volume() * 8).c_str());
  std::printf("  per-node resident set: one slab cell = %s\n",
              FormatBytes(slab_shape.Volume() * 8 / 4).c_str());
  std::printf("  global sum %.6f, global |max| %.6f\n", global_sum,
              global_max);
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
