// Driving the SP2 model directly: a miniature of the paper's evaluation
// plus the cost-model extension.
//
// Runs one write collective on the simulated NAS SP2 for a few
// configurations, and compares the measured virtual elapsed time with
// the analytic cost model's prediction (the paper's announced future
// work, implemented in src/panda/cost_model.*).
//
//   ./examples/sp2_experiment [--trace_out=FILE] [--metrics_out=FILE]
//       [--backend=posix|objectstore] [--sched=thread|fiber] [--ranks=N]
//
// --trace_out writes a Chrome trace_event JSON (Perfetto-loadable) of
// the largest configuration; --metrics_out writes that run's merged
// metrics registry as JSON (docs/OBSERVABILITY.md).
//
// --sched picks the rank scheduler backend (docs/SCHEDULER.md); the
// virtual-time columns are backend-identical by contract, so fiber is
// purely a wall-clock/footprint choice. --ranks=N replaces the paper
// sweep with one weak-scaled natural-chunking configuration at N total
// ranks (1 MB plane per compute node, one i/o node per 8 ranks) — with
// --sched=fiber this runs thousands of ranks on a handful of OS
// threads, e.g. --ranks=4096 --sched=fiber.
//
// --backend=objectstore reruns the sweep with the i/o nodes fronting a
// simulated object store (src/iosim/object_store.h): servers route
// data through the sharded chunk store, shard size from
// AdviseShardSize. The analytic cost model prices local disks only, so
// the prediction columns are suppressed for this backend.
#include <cstdio>

#include "panda/panda.h"
#include "trace/export.h"
#include "util/options.h"
#include "util/units.h"

using namespace panda;

namespace {

double MeasureWrite(const ArrayMeta& meta, const World& world,
                    const Sp2Params& params, bool object_store,
                    sched::Backend sched_backend,
                    const std::string& trace_out = "",
                    const std::string& metrics_out = "") {
  Machine machine =
      object_store
          ? Machine::SimulatedObjectStore(world.num_clients, world.num_servers,
                                          params, ObjectStoreModel{},
                                          /*store_data=*/false,
                                          /*timing_only=*/true)
          : Machine::Simulated(world.num_clients, world.num_servers, params,
                               /*store_data=*/false, /*timing_only=*/true);
  machine.SetSchedBackend(sched_backend);
  ServerOptions options;
  if (object_store) {
    const std::int64_t total_bytes =
        meta.memory.array_shape().Volume() * meta.elem_size;
    options.backend = store::StoreBackend::kObjectStore;
    options.shard_bytes =
        AdviseShardSize(store::StoreBackend::kObjectStore,
                        total_bytes / world.num_servers,
                        params.subchunk_bytes);
  }
  if (!trace_out.empty() || !metrics_out.empty()) machine.EnableTrace();
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, /*allocate=*/false);
        const double t = client.WriteArray(a);
        if (idx == 0) {
          elapsed = t;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params, options);
      });
  if (!trace_out.empty()) {
    PANDA_REQUIRE(trace::WriteTextFile(trace_out, MachineTraceJson(machine)),
                  "cannot write trace '%s'", trace_out.c_str());
    std::printf("# wrote %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const MachineReport report = Snapshot(machine);
    PANDA_REQUIRE(
        trace::WriteTextFile(metrics_out, trace::MetricsJson(report.metrics)),
        "cannot write metrics '%s'", metrics_out.c_str());
    std::printf("# wrote %s\n", metrics_out.c_str());
  }
  return elapsed;
}

}  // namespace

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string trace_out = opts.GetString("trace_out", "");
  const std::string metrics_out = opts.GetString("metrics_out", "");
  const std::string backend = opts.GetString("backend", "posix");
  sched::Backend sched_backend = sched::Backend::kThread;
  const std::string sched_name =
      opts.GetString("sched", sched::BackendName(sched_backend));
  const std::int64_t ranks = opts.GetInt("ranks", 0);
  opts.CheckAllConsumed();
  PANDA_REQUIRE(backend == "posix" || backend == "objectstore",
                "--backend must be posix or objectstore, got '%s'",
                backend.c_str());
  PANDA_REQUIRE(sched::BackendFromName(sched_name, sched_backend),
                "unknown --sched '%s' (try: thread, fiber)",
                sched_name.c_str());
  const bool object_store = backend == "objectstore";

  if (ranks > 0) {
    // Scale mode: one weak-scaled natural-chunking write at N total
    // ranks (the bench_scale_ranks shape). 1 MB plane per compute
    // node, one i/o node per 8 ranks.
    const int ion = ranks / 8 > 0 ? static_cast<int>(ranks / 8) : 1;
    const int clients = static_cast<int>(ranks) - ion;
    ArrayMeta meta;
    meta.name = "x";
    meta.elem_size = 4;
    meta.memory = Schema(Shape{clients, 512, 512}, Mesh(Shape{clients, 1, 1}),
                         {BLOCK, BLOCK, BLOCK});
    meta.disk = meta.memory;  // natural chunking
    const World world{clients, ion};
    std::printf("# Simulated SP2 at scale: %lld ranks (%d compute, %d i/o), "
                "--sched=%s\n",
                static_cast<long long>(ranks), clients, ion,
                sched::BackendName(sched_backend));
    const double measured =
        MeasureWrite(meta, world, Sp2Params::Nas(), object_store,
                     sched_backend, trace_out, metrics_out);
    std::printf("measured write: %.3f virtual seconds (%lld MB array)\n",
                measured, static_cast<long long>(clients));
    return 0;
  }

  if (object_store) {
    std::printf("# Simulated NAS SP2 + object store: measured write times "
                "(sharded store, AdviseShardSize)\n");
    std::printf("%-8s %-10s %-14s %-12s\n", "size_mb", "io_nodes", "schema",
                "measured_s");
  } else {
    std::printf("# Simulated NAS SP2: measured vs cost-model-predicted write "
                "times\n");
    std::printf("%-8s %-10s %-14s %-12s %-12s %-8s\n", "size_mb", "io_nodes",
                "schema", "measured_s", "predicted_s", "error");
  }

  const Sp2Params params = Sp2Params::Nas();
  for (const std::int64_t mb : {16, 64}) {
    for (const int ion : {2, 4}) {
      for (const bool traditional : {false, true}) {
        const Shape shape{mb, 512, 512};
        ArrayMeta meta;
        meta.name = "x";
        meta.elem_size = 4;
        meta.memory = Schema(shape, Mesh(Shape{2, 2, 2}),
                             {BLOCK, BLOCK, BLOCK});
        meta.disk = traditional
                        ? Schema(shape, Mesh(Shape{ion}),
                                 {BLOCK, NONE, NONE})
                        : meta.memory;
        const World world{8, ion};
        // Observability outputs cover the final (largest) configuration.
        const bool last = mb == 64 && ion == 4 && traditional;
        const double measured =
            MeasureWrite(meta, world, params, object_store, sched_backend,
                         last ? trace_out : "", last ? metrics_out : "");
        if (object_store) {
          // The analytic model prices local disks, not PUT round
          // trips: no prediction column for this backend.
          std::printf("%-8lld %-10d %-14s %-12.3f\n",
                      static_cast<long long>(mb), ion,
                      traditional ? "BLOCK,*,*" : "natural", measured);
          continue;
        }
        const CostEstimate predicted =
            PredictArrayIo(meta, IoOp::kWrite, world, params);
        std::printf("%-8lld %-10d %-14s %-12.3f %-12.3f %+.1f%%\n",
                    static_cast<long long>(mb), ion,
                    traditional ? "BLOCK,*,*" : "natural", measured,
                    predicted.elapsed_s,
                    100.0 * (predicted.elapsed_s - measured) / measured);
      }
    }
  }
  std::printf("\nThe cost model lets an application pick schemas and node\n"
              "counts before buying machine time — predictions track the\n"
              "full protocol simulation without running it.\n");
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
