// Driving the SP2 model directly: a miniature of the paper's evaluation
// plus the cost-model extension.
//
// Runs one write collective on the simulated NAS SP2 for a few
// configurations, and compares the measured virtual elapsed time with
// the analytic cost model's prediction (the paper's announced future
// work, implemented in src/panda/cost_model.*).
//
//   ./examples/sp2_experiment
#include <cstdio>

#include "panda/panda.h"
#include "util/options.h"
#include "util/units.h"

using namespace panda;

namespace {

double MeasureWrite(const ArrayMeta& meta, const World& world,
                    const Sp2Params& params) {
  Machine machine = Machine::Simulated(world.num_clients, world.num_servers,
                                       params, /*store_data=*/false,
                                       /*timing_only=*/true);
  double elapsed = 0.0;
  machine.Run(
      [&](Endpoint& ep, int idx) {
        PandaClient client(ep, world, params);
        Array a(meta.name, meta.elem_size, meta.memory, meta.disk);
        a.BindClient(idx, /*allocate=*/false);
        const double t = client.WriteArray(a);
        if (idx == 0) {
          elapsed = t;
          client.Shutdown();
        }
      },
      [&](Endpoint& ep, int sidx) {
        ServerMain(ep, machine.server_fs(sidx), world, params);
      });
  return elapsed;
}

}  // namespace

namespace { int Run(int, char**) {
  std::printf("# Simulated NAS SP2: measured vs cost-model-predicted write "
              "times\n");
  std::printf("%-8s %-10s %-14s %-12s %-12s %-8s\n", "size_mb", "io_nodes",
              "schema", "measured_s", "predicted_s", "error");

  const Sp2Params params = Sp2Params::Nas();
  for (const std::int64_t mb : {16, 64}) {
    for (const int ion : {2, 4}) {
      for (const bool traditional : {false, true}) {
        const Shape shape{mb, 512, 512};
        ArrayMeta meta;
        meta.name = "x";
        meta.elem_size = 4;
        meta.memory = Schema(shape, Mesh(Shape{2, 2, 2}),
                             {BLOCK, BLOCK, BLOCK});
        meta.disk = traditional
                        ? Schema(shape, Mesh(Shape{ion}),
                                 {BLOCK, NONE, NONE})
                        : meta.memory;
        const World world{8, ion};
        const double measured = MeasureWrite(meta, world, params);
        const CostEstimate predicted =
            PredictArrayIo(meta, IoOp::kWrite, world, params);
        std::printf("%-8lld %-10d %-14s %-12.3f %-12.3f %+.1f%%\n",
                    static_cast<long long>(mb), ion,
                    traditional ? "BLOCK,*,*" : "natural", measured,
                    predicted.elapsed_s,
                    100.0 * (predicted.elapsed_s - measured) / measured);
      }
    }
  }
  std::printf("\nThe cost model lets an application pick schemas and node\n"
              "counts before buying machine time — predictions track the\n"
              "full protocol simulation without running it.\n");
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
