// Schema migration: the paper's data-consumer scenario.
//
// A parallel producer writes an array with natural chunking (fast for
// the producer). Later the data must move to a sequential machine in
// traditional row-major order. With Panda this is a read with one
// schema and a write with another — the rearrangement happens inside
// the collective i/o — after which concatenating the per-server files
// yields the sequential file.
//
//   ./examples/schema_migration [--dir=PATH]
#include <cstdio>
#include <cstring>
#include <vector>

#include "panda/panda.h"
#include "util/options.h"

using namespace panda;

namespace { int Run(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string dir = opts.GetString("dir", "panda_migration_data");
  opts.CheckAllConsumed();

  const World world{8, 4};
  Machine machine = Machine::WithPosixFs(8, 4, Sp2Params::Nas(), dir);
  const Shape shape{32, 32, 32};

  machine.Run(
      [&](Endpoint& ep, int client_index) {
        PandaClient client(ep, world, machine.params());
        ArrayLayout memory("memory", {2, 2, 2});
        ArrayLayout disk_natural("natural", {2, 2, 2});
        ArrayLayout disk_traditional("traditional", {4});

        // 1. The producer's array: natural chunking on disk.
        Array chunked("field", shape, sizeof(float), memory,
                      {BLOCK, BLOCK, BLOCK}, disk_natural,
                      {BLOCK, BLOCK, BLOCK});
        chunked.BindClient(client_index);
        auto data = chunked.local_as<float>();
        const Region& cell = chunked.local_region();
        Index off = Index::Zeros(3);
        Shape ext = cell.extent();
        size_t n = 0;
        do {
          Index g = cell.lo();
          for (int d = 0; d < 3; ++d) g[d] += off[d];
          data[n++] = static_cast<float>(
              (g[0] * shape[1] + g[1]) * shape[2] + g[2]);
        } while (NextIndexRowMajor(ext, off));
        client.WriteArray(chunked);

        // 2. Migration: read back with the natural schema, write out
        // with a traditional-order schema. Same memory schema, so the
        // two handles share the client's data by rebinding.
        Array traditional("field_rowmajor", shape, sizeof(float), memory,
                          {BLOCK, BLOCK, BLOCK}, disk_traditional,
                          {BLOCK, NONE, NONE});
        traditional.BindClient(client_index);
        client.ReadArray(chunked);  // refresh from the chunked files
        std::memcpy(traditional.local_data().data(),
                    chunked.local_data().data(),
                    chunked.local_data().size());
        client.WriteArray(traditional);

        if (client_index == 0) client.Shutdown();
      },
      [&](Endpoint& ep, int server_index) {
        ServerMain(ep, machine.server_fs(server_index), world,
                   machine.params());
      });

  // 3. The sequential consumer: concatenate the per-server files.
  std::vector<std::byte> image;
  for (int s = 0; s < 4; ++s) {
    auto file = machine.server_fs(s).Open(
        "field_rowmajor.dat." + std::to_string(s), OpenMode::kRead);
    const std::int64_t size = file->Size();
    std::vector<std::byte> part(static_cast<size_t>(size));
    file->ReadAt(0, {part.data(), part.size()}, size);
    image.insert(image.end(), part.begin(), part.end());
  }

  // Verify the concatenation is the row-major array.
  bool ok = image.size() == static_cast<size_t>(shape.Volume()) * 4;
  const auto* f = reinterpret_cast<const float*>(image.data());
  for (std::int64_t i = 0; ok && i < shape.Volume(); ++i) {
    if (f[i] != static_cast<float>(i)) ok = false;
  }
  std::printf("migration: natural-chunked -> traditional order across 4 i/o "
              "nodes\n");
  std::printf("  concatenation of %s/ionode{0..3}/field_rowmajor.dat.* is "
              "row-major: %s\n",
              dir.c_str(), ok ? "yes (verified)" : "NO");
  return ok ? 0 : 1;
}
}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
